//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! value-tree serialization framework under serde's names: [`Serialize`]
//! converts a value into the self-describing [`Value`] tree and
//! [`Deserialize`] reads it back. The derive macros (re-exported from the
//! vendored `serde_derive`) follow serde's externally-tagged enum encoding,
//! and the vendored `serde_json` renders [`Value`] as JSON, so data files
//! stay interchangeable with real-serde output for the types this workspace
//! serializes.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the data model both traits target).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers are stored exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field or variant names).
    Map(Vec<(String, Value)>),
}

/// Shared `null` used as the fallback for absent map keys so `Option` fields
/// deserialize to `None`.
pub const NULL: Value = Value::Null;

impl Value {
    /// The map entries, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Look up `key` in serialized map entries, falling back to [`NULL`].
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map_or(&NULL, |(_, v)| v)
}

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(message: &str) -> Error {
        Error {
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                match value {
                    // Reject fractional and out-of-range numbers instead of
                    // saturating, matching real serde_json's strictness.
                    Value::Num(n)
                        if n.fract() == 0.0
                            && *n >= <$t>::MIN as f64
                            && *n <= <$t>::MAX as f64 =>
                    {
                        Ok(*n as $t)
                    }
                    _ => Err(Error::custom(concat!(
                        "expected in-range integer for ",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            present => T::from_value(present).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<String, V>, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<HashMap<String, V>, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrips_through_null() {
        let none: Option<u8> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::Num(3.0)).unwrap(), Some(3));
    }

    #[test]
    fn integer_deserialize_rejects_fractional_and_out_of_range() {
        assert!(u8::from_value(&Value::Num(3.5)).is_err());
        assert!(u8::from_value(&Value::Num(-1.0)).is_err());
        assert!(u8::from_value(&Value::Num(256.0)).is_err());
        assert!(usize::from_value(&Value::Num(-3.0)).is_err());
        assert_eq!(u8::from_value(&Value::Num(255.0)).unwrap(), 255);
        assert_eq!(i32::from_value(&Value::Num(-40.0)).unwrap(), -40);
        assert_eq!(f64::from_value(&Value::Num(2.945)).unwrap(), 2.945);
    }

    #[test]
    fn map_get_falls_back_to_null() {
        let entries = vec![("a".to_string(), Value::Bool(true))];
        assert_eq!(map_get(&entries, "a"), &Value::Bool(true));
        assert_eq!(map_get(&entries, "missing"), &Value::Null);
    }
}
