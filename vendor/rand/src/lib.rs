//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! small slice of the rand 0.8 API its crates actually use: [`RngCore`],
//! [`SeedableRng`] (with `seed_from_u64`), the [`Rng`] extension trait
//! (`gen_range`, `gen_bool`) and [`seq::SliceRandom`] (`choose`,
//! `choose_multiple`, `shuffle`). The API shapes match rand 0.8 so the
//! workspace can swap in the real crate without source changes once a
//! registry is available; the generated streams are deterministic but are
//! not bit-compatible with the real crate.

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded to a full seed with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128) - (start as i128) + 1;
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Uniform `f64` in `[0, 1)` built from the top 53 bits of a `u64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Extension methods for random value generation.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Random operations on slices.

    use super::{Rng, RngCore};

    /// Iterator over elements picked by [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        picked: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.picked.next()
        }
    }

    /// Random sampling and shuffling on slices (rand 0.8 API subset).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them if the
        /// slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            let picked: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                picked: picked.into_iter(),
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = Counter(3);
        let v: Vec<u32> = (0..10).collect();
        let mut picked: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 4);
    }
}
