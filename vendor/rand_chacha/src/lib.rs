//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher with 8 rounds as the workspace's
//! deterministic RNG. Only [`ChaCha8Rng`] is provided — the one generator the
//! workspace uses. Streams are deterministic per seed but not bit-compatible
//! with the real `rand_chacha` crate (which interposes rand's block-buffer
//! abstractions).

use rand::{RngCore, SeedableRng};

/// A deterministic RNG backed by the ChaCha block function with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state fed to the block function.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word of `block`; 16 means "refill needed".
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Run the 8-round block function and advance the 64-bit counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16: block counter and nonce, all zero at start.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn zero_key_block_matches_chacha_structure() {
        // The first block must not be all zeros or equal to the state: the
        // block function actually ran.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let first = rng.next_u32();
        assert_ne!(first, 0);
        assert_ne!(first, 0x6170_7865);
    }
}
