//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` crate's value-tree [`Serialize`] and
//! [`Deserialize`] traits for the plain (non-generic) structs and enums this
//! workspace defines. The item is parsed directly from the token stream —
//! the build environment has no registry access, so `syn`/`quote` are not
//! available — and the generated impls mirror serde's externally-tagged
//! data model so the JSON produced by `serde_json::to_string_pretty` looks
//! like real serde output.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed `struct` or `enum` item.
enum Item {
    /// A struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// An enum; each variant is `(name, payload)`.
    Enum {
        name: String,
        variants: Vec<(String, Payload)>,
    },
}

/// Payload of an enum variant.
enum Payload {
    /// `Variant`
    Unit,
    /// `Variant(T0, T1, ...)` with the given arity.
    Tuple(usize),
    /// `Variant { field0, field1, ... }`
    Struct(Vec<String>),
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let source = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    source.parse().expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let source = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    source.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in does not support generic type `{name}`");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected braced body for `{name}`, found {other:?}"),
    };

    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde derive stand-in supports struct/enum only, found `{other}`"),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parse `name: Type, ...` named fields, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Advance past a type expression up to (and including) the next top-level
/// comma. Commas nested inside `<...>` (e.g. `BTreeMap<String, f64>`) are
/// skipped by tracking angle-bracket depth; parenthesised/bracketed tokens
/// arrive as opaque groups so they need no tracking.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream) -> Vec<(String, Payload)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Payload::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Payload::Struct(parse_named_fields(g.stream()))
            }
            _ => Payload::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, payload));
    }
    variants
}

/// Number of comma-separated types in a tuple variant payload.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_type_until_comma(&tokens, &mut i);
        arity += 1;
    }
    arity
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{}])\n\
             }}\n\
         }}",
        entries.join(", ")
    )
}

fn serialize_enum(name: &str, variants: &[(String, Payload)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(variant, payload)| match payload {
            Payload::Unit => {
                format!("{name}::{variant} => ::serde::Value::Str(\"{variant}\".to_string()),")
            }
            Payload::Tuple(1) => format!(
                "{name}::{variant}(f0) => ::serde::Value::Map(vec![(\"{variant}\".to_string(), \
                 ::serde::Serialize::to_value(f0))]),"
            ),
            Payload::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let values: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{variant}({}) => ::serde::Value::Map(vec![(\"{variant}\".to_string(), \
                     ::serde::Value::Seq(vec![{}]))]),",
                    binders.join(", "),
                    values.join(", ")
                )
            }
            Payload::Struct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{variant} {{ {} }} => ::serde::Value::Map(vec![(\"{variant}\"\
                     .to_string(), ::serde::Value::Map(vec![{}]))]),",
                    fields.join(", "),
                    entries.join(", ")
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(map, \"{f}\"))?"))
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let map = value.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 Ok({name} {{ {} }})\n\
             }}\n\
         }}",
        inits.join(", ")
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Payload)]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for (variant, payload) in variants {
        match payload {
            Payload::Unit => {
                unit_arms.push(format!("\"{variant}\" => Ok({name}::{variant}),"));
            }
            Payload::Tuple(1) => tagged_arms.push(format!(
                "\"{variant}\" => Ok({name}::{variant}(::serde::Deserialize::from_value(payload)?)),"
            )),
            Payload::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{variant}\" => {{\n\
                         let items = payload.as_seq().ok_or_else(|| ::serde::Error::custom(\
                             \"expected sequence for variant {name}::{variant}\"))?;\n\
                         if items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\
                                 \"wrong tuple arity for variant {name}::{variant}\"));\n\
                         }}\n\
                         Ok({name}::{variant}({}))\n\
                     }}",
                    elems.join(", ")
                ));
            }
            Payload::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::map_get(map, \"{f}\"))?"
                        )
                    })
                    .collect();
                tagged_arms.push(format!(
                    "\"{variant}\" => {{\n\
                         let map = payload.as_map().ok_or_else(|| ::serde::Error::custom(\
                             \"expected map for variant {name}::{variant}\"))?;\n\
                         Ok({name}::{variant} {{ {} }})\n\
                     }}",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::Error::custom(&format!(\
                             \"unknown unit variant `{{other}}` for enum {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::Error::custom(&format!(\
                                 \"unknown variant `{{other}}` for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::custom(\"expected variant tag for enum {name}\")),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
