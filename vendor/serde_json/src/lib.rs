//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` crate's value tree as JSON and parses JSON
//! text back into it, exposing the two entry points the workspace uses:
//! [`to_string_pretty`] and [`from_str`] (plus [`to_string`] for parity).

use serde::{Deserialize, Serialize, Value};

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Error {
        Error::new(err.to_string())
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_items(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Map(entries) => write_items(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, val), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth);
            },
        ),
    }
}

fn write_items<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    let len = items.len();
    for (i, item) in items.enumerate() {
        newline_indent(out, indent, depth + 1);
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    newline_indent(out, indent, depth);
    out.push(brackets.1);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; mirror lossy-but-total behaviour.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let escape = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        Ok(match escape {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.parse_hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a low surrogate escape must follow.
                    if !self.eat_literal("\\u") {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code).ok_or_else(|| Error::new("invalid surrogate pair"))?
                } else {
                    char::from_u32(unit).ok_or_else(|| Error::new("invalid \\u escape"))?
                }
            }
            other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("ol\"ymp\nics".to_string())),
            ("year".to_string(), Value::Num(2004.0)),
            ("score".to_string(), Value::Num(2.945)),
            ("negative".to_string(), Value::Num(-3.0)),
            (
                "flags".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".to_string(), Value::Seq(vec![])),
        ]);

        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn from_value(v: &Value) -> Result<Raw, serde::Error> {
                Ok(Raw(v.clone()))
            }
        }

        for render in [
            to_string(&Raw(value.clone())),
            to_string_pretty(&Raw(value.clone())),
        ] {
            let text = render.expect("serializes");
            let back: Raw = from_str(&text).expect("parses");
            assert_eq!(back.0, value);
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let parsed: String = from_str(r#""aA😀b""#).expect("parses");
        assert_eq!(parsed, "aA\u{1F600}b");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec!["a".to_string(), "b".to_string()];
        let text = to_string_pretty(&v).expect("serializes");
        assert_eq!(text, "[\n  \"a\",\n  \"b\"\n]");
    }
}
