//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and method surface the workspace benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `measurement_time`, `bench_function` and [`Bencher::iter`]
//! — backed by a simple wall-clock timer instead of criterion's statistical
//! machinery. Benches compile with `harness = false` exactly as with the
//! real crate and print mean per-iteration times when run.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, Duration::from_secs(1), f);
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Set the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Finish the group (kept for API parity; all reporting is immediate).
    pub fn finish(self) {}
}

/// Timer handle passed to the closure of `bench_function`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    _sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Warm-up and calibration: one iteration, timed.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));

    // Fill the configured measurement budget. The iteration ceiling only
    // bounds bookkeeping for sub-microsecond routines, whose loop finishes
    // well inside any realistic budget anyway.
    let fit = (measurement_time.as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let iterations = fit.clamp(1, 10_000_000);

    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed / (bencher.iterations.max(1) as u32);
    println!("{id}: {mean:?}/iter over {iterations} iterations");
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's
/// `criterion_main!(group, ...)` form.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }
}
