//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: composable [`strategy::Strategy`] values (`prop_map`,
//! `prop_flat_map`, `prop_recursive`, `boxed`), [`strategy::Just`], ranges
//! and tuples as strategies, [`arbitrary::any`], [`collection::vec`],
//! [`string::string_regex`] (character-class patterns only), and the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros. Cases are generated from a per-test deterministic RNG; there is
//! no shrinking — a failing case panics with its values' debug rendering
//! via the assertion message instead.

pub mod test_runner {
    //! Test configuration and failure reporting.

    use rand::SeedableRng;

    /// The deterministic RNG driving all strategies.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure from an assertion message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Deterministic per-test RNG, seeded from the test's name.
    pub fn new_rng(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

pub mod strategy {
    //! Composable random-value strategies.

    use std::rc::Rc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `map_fn`.
        fn prop_map<U, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                source: self,
                map_fn,
            }
        }

        /// Generate an intermediate value, then generate from the strategy
        /// `flat_fn` builds out of it.
        fn prop_flat_map<S, F>(self, flat_fn: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap {
                source: self,
                flat_fn,
            }
        }

        /// Recursively grow values: `self` is the leaf strategy and `expand`
        /// wraps an inner strategy into one producing larger values, applied
        /// up to `depth` times. (`_desired_size` and `_expected_branch_size`
        /// are accepted for proptest API parity but unused.)
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let expanded = expand(current).boxed();
                // Two expanded arms to one leaf arm biases toward depth while
                // still letting every level bottom out early.
                current = Union::new(vec![leaf.clone(), expanded.clone(), expanded]).boxed();
            }
            current
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy applying a function to another strategy's values.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        map_fn: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map_fn)(self.source.generate(rng))
        }
    }

    /// Strategy built from another strategy's value.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        flat_fn: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.flat_fn)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among several strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one strategy"
            );
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` strategies for primitive types.

    use std::marker::PhantomData;

    use rand::{Rng, RngCore};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.gen_range(-1.0e6..1.0e6)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Strategy generating vectors of another strategy's values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    //! String strategies from (a subset of) regex patterns.

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A malformed or unsupported pattern.
    #[derive(Debug, Clone)]
    pub struct Error {
        message: String,
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    impl std::error::Error for Error {}

    fn err<T>(message: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            message: message.into(),
        })
    }

    /// Strategy over strings matching a character-class pattern.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        alphabet: Vec<char>,
        min_len: usize,
        max_len: usize,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.gen_range(self.min_len..=self.max_len);
            (0..len)
                .map(|_| self.alphabet[rng.gen_range(0..self.alphabet.len())])
                .collect()
        }
    }

    /// Build a strategy from a pattern of the form `[class]{m,n}` (also bare
    /// `[class]`, `[class]*` and `[class]+`). The class supports literals,
    /// ranges (`a-z`), leading negation (`^`), escapes, and Java-style
    /// `&&[^...]` / `&&[...]` intersection terms — enough for the printable
    /// cell-text patterns the workspace tests use.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        if chars.first() != Some(&'[') {
            return err("only [class]{m,n} patterns are supported");
        }
        let class_end = matching_bracket(&chars, 0)?;
        let alphabet = parse_class(&chars[1..class_end])?;
        if alphabet.is_empty() {
            return err("character class matches no characters");
        }
        let (min_len, max_len) = parse_quantifier(&chars[class_end + 1..])?;
        Ok(RegexGeneratorStrategy {
            alphabet,
            min_len,
            max_len,
        })
    }

    /// Index of the `]` closing the bracket at `open`, honouring escapes and
    /// nested classes.
    fn matching_bracket(chars: &[char], open: usize) -> Result<usize, Error> {
        let mut depth = 0usize;
        let mut i = open;
        while i < chars.len() {
            match chars[i] {
                '\\' => i += 1,
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(i);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        err("unbalanced `[` in pattern")
    }

    /// Parse the contents of a character class (without its outer brackets).
    fn parse_class(content: &[char]) -> Result<Vec<char>, Error> {
        // Split on top-level `&&` intersection operators.
        let mut terms: Vec<&[char]> = Vec::new();
        let mut start = 0usize;
        let mut i = 0usize;
        while i < content.len() {
            match content[i] {
                '\\' => i += 1,
                '[' => i = matching_bracket(content, i)?,
                '&' if content.get(i + 1) == Some(&'&') => {
                    terms.push(&content[start..i]);
                    i += 1;
                    start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        terms.push(&content[start..]);

        let mut alphabet = term_set(terms[0])?;
        for term in &terms[1..] {
            if term.first() == Some(&'[') {
                let inner = term_set(&term[1..term.len() - 1])?;
                alphabet.retain(|c| inner.contains(c));
            } else {
                let inner = term_set(term)?;
                alphabet.retain(|c| inner.contains(c));
            }
        }
        Ok(alphabet)
    }

    /// The set of characters one class term matches. A leading `^` negates
    /// against printable ASCII.
    fn term_set(term: &[char]) -> Result<Vec<char>, Error> {
        let (negated, body) = match term.first() {
            Some('^') => (true, &term[1..]),
            _ => (false, term),
        };
        let mut set = Vec::new();
        let mut i = 0usize;
        while i < body.len() {
            let c = if body[i] == '\\' {
                i += 1;
                match body.get(i) {
                    Some(&esc) => unescape(esc),
                    None => return err("dangling escape in class"),
                }
            } else {
                body[i]
            };
            if body.get(i + 1) == Some(&'-') && i + 2 < body.len() && body[i + 2] != ']' {
                let hi = if body[i + 2] == '\\' {
                    i += 1;
                    match body.get(i + 2) {
                        Some(&esc) => unescape(esc),
                        None => return err("dangling escape in range"),
                    }
                } else {
                    body[i + 2]
                };
                if c as u32 > hi as u32 {
                    return err("inverted character range");
                }
                for code in c as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        if negated {
            Ok((0x20u32..0x7F)
                .filter_map(char::from_u32)
                .filter(|c| !set.contains(c))
                .collect())
        } else {
            set.sort_unstable();
            set.dedup();
            Ok(set)
        }
    }

    fn unescape(escaped: char) -> char {
        match escaped {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    /// Parse the trailing quantifier: `{m,n}`, `{m}`, `*`, `+` or nothing.
    fn parse_quantifier(rest: &[char]) -> Result<(usize, usize), Error> {
        match rest.first() {
            None => Ok((1, 1)),
            Some('*') if rest.len() == 1 => Ok((0, 8)),
            Some('+') if rest.len() == 1 => Ok((1, 8)),
            Some('{') if rest.last() == Some(&'}') => {
                let body: String = rest[1..rest.len() - 1].iter().collect();
                match body.split_once(',') {
                    Some((min, max)) => {
                        let min = min.trim().parse().map_err(|_| Error {
                            message: "invalid quantifier minimum".to_string(),
                        })?;
                        let max = max.trim().parse().map_err(|_| Error {
                            message: "invalid quantifier maximum".to_string(),
                        })?;
                        if min > max {
                            return err("inverted quantifier range");
                        }
                        Ok((min, max))
                    }
                    None => {
                        let exact = body.trim().parse().map_err(|_| Error {
                            message: "invalid exact quantifier".to_string(),
                        })?;
                        Ok((exact, exact))
                    }
                }
            }
            _ => err("unsupported pattern suffix"),
        }
    }
}

pub mod prelude {
    //! The imports property tests conventionally glob in.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: an optional `#![proptest_config(...)]` header
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::new_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(failure) = outcome {
                    panic!("property failed on case {case}: {failure}");
                }
            }
        }
        $crate::__proptest_tests!($config; $($rest)*);
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert within a property body; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 1890f64..2020f64), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((1890.0..2020.0).contains(&b));
            let _: bool = flag;
        }

        #[test]
        fn oneof_and_map(value in prop_oneof![
            Just(1u32),
            (2u32..5).prop_map(|v| v * 10),
        ]) {
            prop_assert!(value == 1 || (20..50).contains(&value));
        }

        #[test]
        fn vectors_have_requested_sizes(items in crate::collection::vec(0u8..255, 3usize)) {
            prop_assert_eq!(items.len(), 3);
        }

        #[test]
        fn string_regex_respects_class_and_len(
            text in crate::string::string_regex("[ -~&&[^\"]]{0,12}").expect("valid regex")
        ) {
            prop_assert!(text.len() <= 12);
            prop_assert!(text.chars().all(|c| (' '..='~').contains(&c) && c != '"'));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::{Just, Strategy};
        let mut rng = crate::test_runner::new_rng("recursive");
        let strategy = Just(1u64).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        for _ in 0..100 {
            assert!(strategy.generate(&mut rng) >= 1);
        }
    }
}
