//! # wtq-runtime
//!
//! A minimal worker-pool batch runtime built from `std::thread` and
//! channels — no external dependencies. It exists so the serving path
//! (`wtq_core::Engine::explain_batch`), the trainer's candidate generation
//! and the study's deployment loop can all fan their per-question work out
//! over cores while keeping results **deterministic**: [`run_batch`] always
//! returns results in input order, regardless of how the operating system
//! schedules the workers.
//!
//! The model is scoped fan-out, not a resident thread pool: each batch
//! spawns its workers inside [`std::thread::scope`], which lets the work
//! closure borrow the caller's data (tables, catalogs, a shared `Engine`)
//! without `Arc`-wrapping everything, and guarantees every worker has
//! exited — and every panic has propagated — before the call returns.

use std::num::NonZeroUsize;
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// The default worker count: one per available hardware thread (1 when the
/// parallelism cannot be queried, e.g. in restricted sandboxes).
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `work` over every item of `items` on a pool of `workers` threads and
/// return the results **in input order**.
///
/// `work` receives `(input_index, item)` and must be pure with respect to
/// ordering: items are pulled from a shared queue, so the *execution* order
/// across workers is nondeterministic, but because each result is stitched
/// back into its input slot the returned `Vec` is identical to what a
/// sequential `items.map(work)` would produce (assuming `work(i, x)` depends
/// only on `(i, x)` and shared immutable state).
///
/// `workers` is clamped to `1..=items.len()`; with one worker (or one item)
/// the batch runs inline on the caller's thread, so single-threaded entry
/// points wrapping a 1-worker pool pay no thread-spawn cost. A panic in any
/// worker propagates to the caller after the remaining workers finish their
/// in-flight items.
pub fn run_batch<T, R, F>(workers: usize, items: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, total);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(index, item)| work(index, item))
            .collect();
    }

    // A shared pull queue balances uneven per-item cost (questions over a
    // 2000-row table next to questions over a 20-row one) better than static
    // chunking; the (index, result) channel restores input order at the end.
    let queue = Mutex::new(items.into_iter().enumerate());
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let queue = &queue;
            let work = &work;
            scope.spawn(move || loop {
                // Take the lock only to pop; `work` runs with the queue free.
                let next = queue.lock().expect("work queue poisoned").next();
                let Some((index, item)) = next else {
                    break;
                };
                if sender.send((index, work(index, item))).is_err() {
                    break;
                }
            });
        }
        drop(sender);
    });

    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    for (index, result) in receiver {
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every item produced a result"))
        .collect()
}

/// A reusable handle bundling a worker count, for callers that thread one
/// configured pool size through several batch calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// [`run_batch`] with this pool's worker count.
    pub fn run<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        run_batch(self.workers, items, work)
    }
}

impl Default for WorkerPool {
    /// One worker per available hardware thread.
    fn default() -> Self {
        WorkerPool::new(default_workers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 3, 8, 200] {
            let out = run_batch(workers, items.clone(), |index, item| {
                assert_eq!(index, item);
                item * 2
            });
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let out: Vec<usize> = run_batch(4, Vec::<usize>::new(), |_, item| item);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let base = [10usize, 20, 30];
        let counter = AtomicUsize::new(0);
        let out = run_batch(2, vec![0usize, 1, 2], |_, item| {
            counter.fetch_add(1, Ordering::Relaxed);
            base[item] + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Later items finish first; order must still be the input order.
        let out = run_batch(4, (0..16u64).collect(), |_, item| {
            if item < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            item
        });
        assert_eq!(out, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn pool_handle_clamps_and_runs() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(vec![1, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
        assert!(WorkerPool::default().workers() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = run_batch(2, vec![0, 1, 2, 3], |_, item| {
            if item == 2 {
                panic!("boom");
            }
            item
        });
    }
}
