//! # wtq-runtime
//!
//! A minimal worker-pool batch runtime built from `std::thread` and
//! channels — no external dependencies. It exists so the serving path
//! (`wtq_core::Engine::explain_batch`), the trainer's candidate generation
//! and the study's deployment loop can all fan their per-question work out
//! over cores while keeping results **deterministic**: [`run_batch`] always
//! returns results in input order, regardless of how the operating system
//! schedules the workers.
//!
//! The model is scoped fan-out, not a resident thread pool: each batch
//! spawns its workers inside [`std::thread::scope`], which lets the work
//! closure borrow the caller's data (tables, catalogs, a shared `Engine`)
//! without `Arc`-wrapping everything, and guarantees every worker has
//! exited — and every panic has propagated — before the call returns.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Typed failure of a checked batch run ([`try_run_batch`] /
/// [`run_batch_cancellable`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The batch's [`CancelToken`] fired before every item completed; the
    /// partial results are discarded.
    Cancelled,
    /// The job for input `index` panicked. The remaining workers stop pulling
    /// new items, the pool drains cleanly, and the first panic is reported
    /// here instead of unwinding through the caller.
    JobPanicked {
        /// Input index of the panicking item.
        index: usize,
        /// The panic payload, when it was a string (the common `panic!` case).
        message: String,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Cancelled => write!(f, "batch cancelled before completion"),
            BatchError::JobPanicked { index, message } => {
                write!(f, "batch job {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// A cloneable cancellation flag shared between a batch run and whoever may
/// need to stop it (e.g. a server draining in-flight work on shutdown).
/// Cancellation is cooperative: workers stop *pulling* new items once the
/// token fires, so in-flight jobs finish but queued ones never start.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fire the token. Idempotent; wakes nothing by itself — workers observe
    /// the flag before pulling their next item.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Render a panic payload for [`BatchError::JobPanicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The default worker count: one per available hardware thread (1 when the
/// parallelism cannot be queried, e.g. in restricted sandboxes).
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `work` over every item of `items` on a pool of `workers` threads and
/// return the results **in input order**.
///
/// `work` receives `(input_index, item)` and must be pure with respect to
/// ordering: items are pulled from a shared queue, so the *execution* order
/// across workers is nondeterministic, but because each result is stitched
/// back into its input slot the returned `Vec` is identical to what a
/// sequential `items.map(work)` would produce (assuming `work(i, x)` depends
/// only on `(i, x)` and shared immutable state).
///
/// `workers` is clamped to `1..=items.len()`; with one worker (or one item)
/// the batch runs inline on the caller's thread, so single-threaded entry
/// points wrapping a 1-worker pool pay no thread-spawn cost. A panic in any
/// worker propagates to the caller after the remaining workers finish their
/// in-flight items; callers that need the panic as a value instead use
/// [`try_run_batch`].
pub fn run_batch<T, R, F>(workers: usize, items: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    match try_run_batch(workers, items, work) {
        Ok(results) => results,
        Err(err) => panic!("{err}"),
    }
}

/// [`run_batch`] with typed failure: a panicking job surfaces as
/// [`BatchError::JobPanicked`] instead of unwinding through the caller. The
/// first panic wins; remaining workers stop pulling new items and the pool
/// drains cleanly (no poisoned queue, no half-joined threads).
pub fn try_run_batch<T, R, F>(workers: usize, items: Vec<T>, work: F) -> Result<Vec<R>, BatchError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_batch_cancellable(workers, items, &CancelToken::new(), work)
}

/// [`try_run_batch`] under a [`CancelToken`]: workers check the token before
/// pulling each item, so cancelling mid-batch stops queued work and returns
/// [`BatchError::Cancelled`] instead of the (partial) results. This is the
/// graceful-shutdown hook serving layers use to drain a pool without waiting
/// for a long batch to finish.
pub fn run_batch_cancellable<T, R, F>(
    workers: usize,
    items: Vec<T>,
    cancel: &CancelToken,
    work: F,
) -> Result<Vec<R>, BatchError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    let workers = workers.clamp(1, total);
    // The first failure wins; later workers observe it and stop pulling.
    // The flag keeps the per-item hot-path check lock-free; the mutex only
    // guards the error value itself.
    let failed = AtomicBool::new(false);
    let failure: Mutex<Option<BatchError>> = Mutex::new(None);
    let record_failure = |err: BatchError| {
        let mut slot = failure.lock().expect("failure slot poisoned");
        if slot.is_none() {
            *slot = Some(err);
        }
        failed.store(true, Ordering::Release);
    };

    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    if workers == 1 {
        for (index, item) in items.into_iter().enumerate() {
            if cancel.is_cancelled() {
                return Err(BatchError::Cancelled);
            }
            match catch_unwind(AssertUnwindSafe(|| work(index, item))) {
                Ok(result) => slots[index] = Some(result),
                Err(payload) => {
                    return Err(BatchError::JobPanicked {
                        index,
                        message: panic_message(payload),
                    })
                }
            }
        }
    } else {
        // A shared pull queue balances uneven per-item cost (questions over a
        // 2000-row table next to questions over a 20-row one) better than
        // static chunking; the (index, result) channel restores input order
        // at the end.
        let queue = Mutex::new(items.into_iter().enumerate());
        let (sender, receiver) = mpsc::channel::<(usize, R)>();
        thread::scope(|scope| {
            for _ in 0..workers {
                let sender = sender.clone();
                let queue = &queue;
                let work = &work;
                let failed = &failed;
                let record_failure = &record_failure;
                scope.spawn(move || loop {
                    if cancel.is_cancelled() || failed.load(Ordering::Acquire) {
                        break;
                    }
                    // Take the lock only to pop; `work` runs with the queue
                    // free.
                    let next = queue.lock().expect("work queue poisoned").next();
                    let Some((index, item)) = next else {
                        break;
                    };
                    match catch_unwind(AssertUnwindSafe(|| work(index, item))) {
                        Ok(result) => {
                            if sender.send((index, result)).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            record_failure(BatchError::JobPanicked {
                                index,
                                message: panic_message(payload),
                            });
                            break;
                        }
                    }
                });
            }
            drop(sender);
        });

        for (index, result) in receiver {
            slots[index] = Some(result);
        }
    }

    if let Some(err) = failure.into_inner().expect("failure slot poisoned") {
        return Err(err);
    }
    let mut results = Vec::with_capacity(total);
    for slot in slots {
        match slot {
            Some(result) => results.push(result),
            // No recorded failure but a missing result: the token fired
            // after some items had already completed.
            None => return Err(BatchError::Cancelled),
        }
    }
    Ok(results)
}

/// A reusable handle bundling a worker count, for callers that thread one
/// configured pool size through several batch calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// [`run_batch`] with this pool's worker count.
    pub fn run<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        run_batch(self.workers, items, work)
    }

    /// [`run_batch_cancellable`] with this pool's worker count.
    pub fn run_cancellable<T, R, F>(
        &self,
        items: Vec<T>,
        cancel: &CancelToken,
        work: F,
    ) -> Result<Vec<R>, BatchError>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        run_batch_cancellable(self.workers, items, cancel, work)
    }
}

impl Default for WorkerPool {
    /// One worker per available hardware thread.
    fn default() -> Self {
        WorkerPool::new(default_workers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 3, 8, 200] {
            let out = run_batch(workers, items.clone(), |index, item| {
                assert_eq!(index, item);
                item * 2
            });
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let out: Vec<usize> = run_batch(4, Vec::<usize>::new(), |_, item| item);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let base = [10usize, 20, 30];
        let counter = AtomicUsize::new(0);
        let out = run_batch(2, vec![0usize, 1, 2], |_, item| {
            counter.fetch_add(1, Ordering::Relaxed);
            base[item] + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Later items finish first; order must still be the input order.
        let out = run_batch(4, (0..16u64).collect(), |_, item| {
            if item < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            item
        });
        assert_eq!(out, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn pool_handle_clamps_and_runs() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(vec![1, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
        assert!(WorkerPool::default().workers() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = run_batch(2, vec![0, 1, 2, 3], |_, item| {
            if item == 2 {
                panic!("boom");
            }
            item
        });
    }

    #[test]
    fn panicking_job_is_a_typed_error_not_a_poisoned_channel() {
        for workers in [1, 2, 4] {
            let err = try_run_batch(workers, (0..16).collect::<Vec<i32>>(), |_, item| {
                if item == 5 {
                    panic!("job exploded on {item}");
                }
                item * 2
            })
            .expect_err("the panicking job must surface as an error");
            match err {
                BatchError::JobPanicked { index, message } => {
                    assert_eq!(index, 5);
                    assert!(message.contains("job exploded on 5"), "{message}");
                }
                other => panic!("expected JobPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn pool_survives_a_panicking_batch_and_runs_the_next_one() {
        // A panic in one batch leaves nothing poisoned behind: the very next
        // batch over the same closure environment runs to completion.
        let base = [1usize, 2, 3];
        let err = try_run_batch(2, vec![0usize, 1, 2], |_, item| {
            if item == 1 {
                panic!("transient");
            }
            base[item]
        });
        assert!(matches!(err, Err(BatchError::JobPanicked { index: 1, .. })));
        let ok = try_run_batch(2, vec![0usize, 1, 2], |_, item| base[item]);
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn cancel_token_stops_queued_work() {
        let cancel = CancelToken::new();
        cancel.cancel();
        // Already-cancelled token: no item runs at all.
        let ran = AtomicUsize::new(0);
        let err = run_batch_cancellable(2, (0..64).collect::<Vec<i32>>(), &cancel, |_, item| {
            ran.fetch_add(1, Ordering::Relaxed);
            item
        });
        assert_eq!(err, Err(BatchError::Cancelled));
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cancel_mid_batch_reports_cancelled() {
        let cancel = CancelToken::new();
        let trigger = cancel.clone();
        let err =
            run_batch_cancellable(2, (0..256).collect::<Vec<i32>>(), &cancel, |index, item| {
                if index == 0 {
                    // The first job fires the token; every other in-flight job
                    // waits for it, so no worker can drain the queue before the
                    // cancellation is visible and queued items must not start.
                    trigger.cancel();
                } else {
                    while !trigger.is_cancelled() {
                        std::thread::yield_now();
                    }
                }
                item
            });
        assert_eq!(err, Err(BatchError::Cancelled));
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let cancel = CancelToken::new();
        let out = run_batch_cancellable(3, (0..10u32).collect(), &cancel, |_, item| item + 1);
        assert_eq!(out.unwrap(), (1..11).collect::<Vec<u32>>());
        assert!(!cancel.is_cancelled());
    }
}
