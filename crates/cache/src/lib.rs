//! # wtq-cache
//!
//! A sharded, thread-safe, deduplicating answer cache: the qps multiplier
//! for serving repetitive question traffic over a fixed table catalog.
//! Question traffic over shared web tables is Zipfian — a handful of
//! `(table, question)` pairs dominates — so answering a hot question from
//! memory instead of re-running parse → evaluate → explain end to end
//! multiplies serving throughput by the hit rate's reciprocal complement.
//!
//! The cache is deliberately generic over its value type `V` (the engine
//! crate stores explained candidate lists; tests store integers) and knows
//! nothing about questions or tables beyond the opaque [`CacheKey`]:
//!
//! * **Keying** — `(table fingerprint, normalized question, top_k)`. The
//!   fingerprint must identify table *contents* (not just shape) and the
//!   question must be pre-normalized by the caller, with the same
//!   normalization the parser itself uses, so trivially-variant phrasings
//!   share an entry and keys cannot drift from parse-time tokenization.
//! * **Eviction** — per-shard LRU capacity bound plus an optional TTL.
//! * **Epoch invalidation** — every entry is stamped with its
//!   fingerprint's *epoch* at insert time; [`AnswerCache::invalidate`]
//!   bumps the epoch so a table reload drops stale answers lazily on next
//!   lookup (counted as `stale_drops`) without a stop-the-world sweep.
//! * **Single-flight collapse** — concurrent requests for the same key
//!   block on one leader's computation and all receive the same shared
//!   value ([`AnswerCache::begin`]), so a thundering herd on a hot
//!   question costs one engine run. A leader that fails (panics, or is
//!   rejected by admission control) abandons the flight and waiters retry
//!   — degrading to exactly the uncached behavior, never hanging.
//!
//! Every decision is counted ([`CacheStats`]) so serving layers can expose
//! hit rate, collapse effectiveness, evictions and resident bytes.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Key of one cached answer.
///
/// `question` must already be normalized (the cache compares bytes) and
/// `fingerprint` must capture table contents: two tables mapping to the
/// same fingerprint are assumed to answer every question identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content fingerprint of the table the question ran against.
    pub fingerprint: u64,
    /// The normalized question text.
    pub question: String,
    /// The resolved top-k the answer was computed for (a top-3 answer is
    /// not a top-7 answer).
    pub top_k: usize,
}

impl CacheKey {
    /// FNV-1a over the key's fields — used for shard selection so one hot
    /// table spreads across shards by question.
    fn shard_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut write = |bytes: &[u8]| {
            for &byte in bytes {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        write(&self.fingerprint.to_le_bytes());
        write(self.question.as_bytes());
        write(&(self.top_k as u64).to_le_bytes());
        hash
    }
}

/// Tuning knobs of an [`AnswerCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total entries retained across all shards before LRU eviction.
    pub capacity: usize,
    /// Entries older than this are dropped on lookup; `None` disables
    /// time-based expiry (epoch invalidation still applies).
    pub ttl: Option<Duration>,
    /// Shard count (clamped to at least 1). More shards means less lock
    /// contention between unrelated keys.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            ttl: None,
            shards: 8,
        }
    }
}

/// Serializable snapshot of a cache's counters and gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that found nothing usable (first sight, TTL-expired or
    /// stale-epoch entries included).
    pub misses: u64,
    /// Requests that blocked on another request's in-flight computation
    /// and received the leader's value without executing.
    pub collapsed_waiters: u64,
    /// Values inserted (leader computations that completed).
    pub insertions: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions_lru: u64,
    /// Entries dropped because they outlived the TTL.
    pub evictions_ttl: u64,
    /// Entries dropped because their fingerprint's epoch was bumped
    /// (table reload / explicit invalidation).
    pub stale_drops: u64,
    /// Entries currently resident (gauge).
    pub entries: u64,
    /// Approximate bytes of resident values (gauge; weights are supplied
    /// by the caller at insert time).
    pub bytes: u64,
    /// Configured total capacity.
    pub capacity: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    collapsed_waiters: AtomicU64,
    insertions: AtomicU64,
    evictions_lru: AtomicU64,
    evictions_ttl: AtomicU64,
    stale_drops: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

/// One resident entry: the shared value, its epoch stamp, its approximate
/// weight and its recency/age stamps.
struct Entry<V> {
    value: Arc<V>,
    epoch: u64,
    bytes: usize,
    created: Instant,
    last_used: u64,
}

/// One shard: the entry map plus an eviction-ordered recency index. Use
/// stamps come from the cache-wide monotonic clock, so they are unique and
/// `by_recency.iter().next()` is always the least-recently-used key —
/// eviction is O(log n) instead of the previous full-shard min-scan, and a
/// safe ordered map avoids a linked list's unsafe bookkeeping.
struct Shard<V> {
    entries: HashMap<CacheKey, Entry<V>>,
    /// `last_used` stamp → key, mirrored with `entries` under the shard
    /// lock. The first entry is the eviction victim.
    by_recency: BTreeMap<u64, CacheKey>,
    capacity: usize,
}

impl<V> Shard<V> {
    /// Remove `key` from both maps, keeping the recency index in sync.
    fn remove(&mut self, key: &CacheKey) -> Option<Entry<V>> {
        let entry = self.entries.remove(key)?;
        self.by_recency.remove(&entry.last_used);
        Some(entry)
    }
}

/// State of one in-flight computation.
enum FlightState<V> {
    /// The leader is computing.
    Pending,
    /// The leader published a value; waiters take the `Arc` and leave.
    Done(Arc<V>),
    /// The leader gave up (panicked or was rejected); waiters retry.
    Abandoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// How [`AnswerCache::begin`] resolved a key.
pub enum Begin<'a, V> {
    /// A live entry answered directly.
    Hit(Arc<V>),
    /// Another request computed the value while this one waited.
    Collapsed(Arc<V>),
    /// This request leads the computation: run it, then
    /// [`FlightGuard::complete`] (or drop the guard to abandon).
    Lead(FlightGuard<'a, V>),
}

/// Leadership of one in-flight computation. Completing publishes the value
/// to the cache and to every collapsed waiter; dropping without completing
/// abandons the flight (waiters retry), so a panicking or rejected leader
/// can never strand them.
pub struct FlightGuard<'a, V> {
    cache: &'a AnswerCache<V>,
    key: CacheKey,
    flight: Arc<Flight<V>>,
    completed: bool,
}

impl<V> FlightGuard<'_, V> {
    /// The key this flight answers.
    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// Publish the computed value: insert it into the cache (stamped with
    /// the key's current epoch, weighted at `bytes`) and hand it to every
    /// waiter. Returns the shared value.
    pub fn complete(mut self, value: V, bytes: usize) -> Arc<V> {
        let shared = self.cache.insert(&self.key, value, bytes);
        self.publish(FlightState::Done(shared.clone()));
        self.completed = true;
        shared
    }

    fn publish(&self, state: FlightState<V>) {
        {
            let mut flights = self.cache.flights.lock().expect("flight map poisoned");
            flights.remove(&self.key);
        }
        let mut slot = self.flight.state.lock().expect("flight poisoned");
        *slot = state;
        drop(slot);
        self.flight.done.notify_all();
    }
}

impl<V> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        if !self.completed {
            self.publish(FlightState::Abandoned);
        }
    }
}

/// The sharded, thread-safe answer cache. See the crate docs for the
/// design; all methods take `&self` and are safe to call from any thread.
pub struct AnswerCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    flights: Mutex<HashMap<CacheKey, Arc<Flight<V>>>>,
    /// Current epoch per fingerprint (absent = 0). Bumping invalidates
    /// every entry stamped with an older epoch, lazily on lookup.
    epochs: Mutex<HashMap<u64, u64>>,
    ttl: Option<Duration>,
    /// Global LRU clock: monotonically increasing use stamps.
    clock: AtomicU64,
    counters: Counters,
    capacity: usize,
}

impl<V> AnswerCache<V> {
    /// A cache with the given configuration.
    pub fn new(config: CacheConfig) -> AnswerCache<V> {
        let shards = config.shards.max(1);
        let per_shard = (config.capacity / shards).max(1);
        AnswerCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        by_recency: BTreeMap::new(),
                        capacity: per_shard,
                    })
                })
                .collect(),
            flights: Mutex::new(HashMap::new()),
            epochs: Mutex::new(HashMap::new()),
            ttl: config.ttl,
            clock: AtomicU64::new(0),
            counters: Counters::default(),
            capacity: per_shard * shards,
        }
    }

    /// A cache with the default configuration, capped at `capacity` entries.
    pub fn with_capacity(capacity: usize) -> AnswerCache<V> {
        AnswerCache::new(CacheConfig {
            capacity,
            ..CacheConfig::default()
        })
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        let index = (key.shard_hash() % self.shards.len() as u64) as usize;
        &self.shards[index]
    }

    /// The current epoch of `fingerprint`.
    pub fn epoch(&self, fingerprint: u64) -> u64 {
        self.epochs
            .lock()
            .expect("epoch map poisoned")
            .get(&fingerprint)
            .copied()
            .unwrap_or(0)
    }

    /// Invalidate every cached answer for `fingerprint` by bumping its
    /// epoch. Stale entries are dropped lazily on their next lookup (and
    /// counted as `stale_drops`); in-flight computations that complete
    /// afterwards insert under the old epoch and are likewise dropped.
    pub fn invalidate(&self, fingerprint: u64) {
        let mut epochs = self.epochs.lock().expect("epoch map poisoned");
        *epochs.entry(fingerprint).or_insert(0) += 1;
    }

    /// Look `key` up without joining or starting a flight. Counts a hit or
    /// a miss; TTL-expired and stale-epoch entries are dropped here.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<V>> {
        self.lookup_inner(key, true)
    }

    /// Like [`AnswerCache::lookup`], but a miss is not counted — for
    /// pre-admission probes that will be followed by [`AnswerCache::begin`],
    /// which records the request's real outcome. A hit still counts (the
    /// probe resolved the request), and expired/stale entries are still
    /// dropped and counted as evictions.
    pub fn probe(&self, key: &CacheKey) -> Option<Arc<V>> {
        self.lookup_inner(key, false)
    }

    fn lookup_inner(&self, key: &CacheKey, count_miss: bool) -> Option<Arc<V>> {
        let epoch = self.epoch(key.fingerprint);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let drop_reason = match shard.entries.get(key) {
            None => None,
            Some(entry) if entry.epoch != epoch => Some(&self.counters.stale_drops),
            Some(entry) if self.expired(entry) => Some(&self.counters.evictions_ttl),
            Some(_) => {
                let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                let entry = shard.entries.get_mut(key).expect("entry just seen");
                let previous_stamp = std::mem::replace(&mut entry.last_used, stamp);
                let value = entry.value.clone();
                shard.by_recency.remove(&previous_stamp);
                shard.by_recency.insert(stamp, key.clone());
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
        };
        if let Some(counter) = drop_reason {
            let removed = shard.remove(key).expect("entry just seen");
            counter.fetch_add(1, Ordering::Relaxed);
            self.note_removed(&removed);
        }
        if count_miss {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Resolve `key` with single-flight collapse: a live entry answers
    /// directly ([`Begin::Hit`]); while another request computes the same
    /// key, block and receive its value ([`Begin::Collapsed`]); otherwise
    /// become the leader ([`Begin::Lead`]) — compute, then
    /// [`FlightGuard::complete`]. An abandoned flight (leader panicked or
    /// was rejected) makes waiters retry from the top.
    pub fn begin(&self, key: &CacheKey) -> Begin<'_, V> {
        loop {
            if let Some(value) = self.lookup(key) {
                return Begin::Hit(value);
            }
            let flight = {
                let mut flights = self.flights.lock().expect("flight map poisoned");
                match flights.get(key) {
                    Some(flight) => flight.clone(),
                    None => {
                        // A leader may have completed between our miss
                        // above and this lock: `complete()` inserts into
                        // the cache *before* removing its flight under
                        // this mutex, so if the flight is gone the entry
                        // is visible — re-check before leading a
                        // duplicate computation.
                        if let Some(value) = self.probe(key) {
                            return Begin::Hit(value);
                        }
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            done: Condvar::new(),
                        });
                        flights.insert(key.clone(), flight.clone());
                        return Begin::Lead(FlightGuard {
                            cache: self,
                            key: key.clone(),
                            flight,
                            completed: false,
                        });
                    }
                }
            };
            // Wait out the leader. The flight is removed from the map
            // before its state flips, so a fresh begin() can already start
            // the next flight while late waiters drain here.
            self.counters
                .collapsed_waiters
                .fetch_add(1, Ordering::Relaxed);
            let mut state = flight.state.lock().expect("flight poisoned");
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = flight.done.wait(state).expect("flight poisoned");
                    }
                    FlightState::Done(value) => return Begin::Collapsed(value.clone()),
                    FlightState::Abandoned => break,
                }
            }
            // Leader gave up: retry (possibly becoming the new leader).
        }
    }

    /// Insert `value` under `key` (stamped with the fingerprint's current
    /// epoch), evicting the shard's least-recently-used entry if the shard
    /// is full. Returns the shared value.
    pub fn insert(&self, key: &CacheKey, value: V, bytes: usize) -> Arc<V> {
        let epoch = self.epoch(key.fingerprint);
        let shared = Arc::new(value);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if let Some(previous) = shard.remove(key) {
            self.note_removed(&previous);
        }
        while shard.entries.len() >= shard.capacity {
            let oldest = shard
                .by_recency
                .iter()
                .next()
                .map(|(_, key)| key.clone())
                .expect("non-empty shard");
            let removed = shard.remove(&oldest).expect("oldest entry");
            self.counters.evictions_lru.fetch_add(1, Ordering::Relaxed);
            self.note_removed(&removed);
        }
        shard.entries.insert(
            key.clone(),
            Entry {
                value: shared.clone(),
                epoch,
                bytes,
                created: Instant::now(),
                last_used: stamp,
            },
        );
        shard.by_recency.insert(stamp, key.clone());
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        self.counters.entries.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        shared
    }

    fn expired(&self, entry: &Entry<V>) -> bool {
        match self.ttl {
            Some(ttl) => entry.created.elapsed() > ttl,
            None => false,
        }
    }

    fn note_removed(&self, entry: &Entry<V>) {
        self.counters.entries.fetch_sub(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_sub(entry.bytes as u64, Ordering::Relaxed);
    }

    /// Point-in-time counters and gauges.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            collapsed_waiters: self.counters.collapsed_waiters.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions_lru: self.counters.evictions_lru.load(Ordering::Relaxed),
            evictions_ttl: self.counters.evictions_ttl.load(Ordering::Relaxed),
            stale_drops: self.counters.stale_drops.load(Ordering::Relaxed),
            entries: self.counters.entries.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            capacity: self.capacity as u64,
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.counters.entries.load(Ordering::Relaxed) as usize
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn key(fingerprint: u64, question: &str) -> CacheKey {
        CacheKey {
            fingerprint,
            question: question.to_string(),
            top_k: 7,
        }
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn cache_is_send_sync() {
        assert_send_sync::<AnswerCache<Vec<String>>>();
        assert_send_sync::<CacheStats>();
    }

    #[test]
    fn lookup_insert_roundtrip_counts_hits_and_misses() {
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig::default());
        let k = key(1, "which city hosted in 2008");
        assert!(cache.lookup(&k).is_none());
        cache.insert(&k, 42, 100);
        assert_eq!(*cache.lookup(&k).expect("hit"), 42);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 100);
    }

    #[test]
    fn probe_counts_hits_but_not_misses() {
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig::default());
        let k = key(1, "which city hosted in 2008");
        assert!(cache.probe(&k).is_none());
        assert_eq!(cache.stats().misses, 0, "a probe miss is not counted");
        cache.insert(&k, 42, 100);
        assert_eq!(*cache.probe(&k).expect("hit"), 42);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1, "a probe hit resolved the request");
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn distinct_top_k_distinct_questions_and_fingerprints_do_not_alias() {
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig::default());
        cache.insert(&key(1, "q"), 1, 1);
        assert!(cache
            .lookup(&CacheKey {
                fingerprint: 1,
                question: "q".to_string(),
                top_k: 3,
            })
            .is_none());
        assert!(cache.lookup(&key(2, "q")).is_none());
        assert!(cache.lookup(&key(1, "q2")).is_none());
        assert_eq!(*cache.lookup(&key(1, "q")).expect("hit"), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        // One shard of capacity 2 makes eviction order observable.
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig {
            capacity: 2,
            ttl: None,
            shards: 1,
        });
        cache.insert(&key(1, "a"), 1, 10);
        cache.insert(&key(1, "b"), 2, 10);
        // Touch "a" so "b" is the LRU entry.
        assert!(cache.lookup(&key(1, "a")).is_some());
        cache.insert(&key(1, "c"), 3, 10);
        assert!(cache.lookup(&key(1, "b")).is_none(), "b was evicted");
        assert!(cache.lookup(&key(1, "a")).is_some());
        assert!(cache.lookup(&key(1, "c")).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions_lru, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, 20);
    }

    #[test]
    fn eviction_follows_recency_under_touch_and_overwrite_churn() {
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig {
            capacity: 4,
            ttl: None,
            shards: 1,
        });
        for (i, q) in ["a", "b", "c", "d"].iter().enumerate() {
            cache.insert(&key(1, q), i as u32, 1);
        }
        // Touch "a" and "b", refresh "c" by overwriting it: "d" is the LRU.
        assert!(cache.lookup(&key(1, "a")).is_some());
        assert!(cache.lookup(&key(1, "b")).is_some());
        cache.insert(&key(1, "c"), 9, 1);
        cache.insert(&key(1, "e"), 4, 1);
        assert!(cache.lookup(&key(1, "d")).is_none(), "d was the LRU entry");
        // The survivors were all just touched; "e" is now the LRU.
        assert!(cache.lookup(&key(1, "a")).is_some());
        assert!(cache.lookup(&key(1, "b")).is_some());
        assert_eq!(*cache.lookup(&key(1, "c")).expect("refreshed"), 9);
        cache.insert(&key(1, "f"), 5, 1);
        assert!(cache.lookup(&key(1, "e")).is_none(), "e was the LRU entry");
        let stats = cache.stats();
        assert_eq!(stats.evictions_lru, 2);
        assert_eq!(stats.entries, 4);
    }

    #[test]
    fn ttl_expires_entries_on_lookup() {
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig {
            capacity: 16,
            ttl: Some(Duration::from_millis(20)),
            shards: 1,
        });
        let k = key(1, "a");
        cache.insert(&k, 1, 5);
        assert!(cache.lookup(&k).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(cache.lookup(&k).is_none(), "entry outlived its TTL");
        let stats = cache.stats();
        assert_eq!(stats.evictions_ttl, 1);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn epoch_bump_invalidates_and_counts_stale_drops() {
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig::default());
        let k = key(7, "a");
        cache.insert(&k, 1, 5);
        assert!(cache.lookup(&k).is_some());
        cache.invalidate(7);
        assert!(cache.lookup(&k).is_none(), "stale epoch must not hit");
        assert_eq!(cache.stats().stale_drops, 1);
        // Re-inserting under the new epoch works.
        cache.insert(&k, 2, 5);
        assert_eq!(*cache.lookup(&k).expect("fresh entry"), 2);
        // Other fingerprints are unaffected.
        let other = key(8, "a");
        cache.insert(&other, 3, 5);
        cache.invalidate(7);
        assert!(cache.lookup(&other).is_some());
    }

    #[test]
    fn single_flight_collapses_concurrent_identical_requests() {
        let cache: Arc<AnswerCache<u32>> = Arc::new(AnswerCache::new(CacheConfig::default()));
        let executions = Arc::new(AtomicUsize::new(0));
        const THREADS: usize = 8;
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let cache = cache.clone();
            let executions = executions.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                match cache.begin(&key(1, "hot question")) {
                    Begin::Hit(value) | Begin::Collapsed(value) => *value,
                    Begin::Lead(guard) => {
                        // Slow leader: give every other thread time to pile
                        // onto the flight.
                        std::thread::sleep(Duration::from_millis(50));
                        executions.fetch_add(1, Ordering::SeqCst);
                        *guard.complete(99, 10)
                    }
                }
            }));
        }
        let results: Vec<u32> = handles
            .into_iter()
            .map(|handle| handle.join().expect("thread clean"))
            .collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1, "one execution");
        assert!(results.iter().all(|&v| v == 99), "all identical results");
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1);
        assert_eq!(
            stats.hits + stats.collapsed_waiters,
            (THREADS - 1) as u64,
            "everyone else was served without executing: {stats:?}"
        );
    }

    #[test]
    fn abandoned_flight_wakes_waiters_who_then_retry() {
        let cache: Arc<AnswerCache<u32>> = Arc::new(AnswerCache::new(CacheConfig::default()));
        let k = key(1, "q");
        // Leader abandons (simulating a panic or an admission rejection).
        let leader = match cache.begin(&k) {
            Begin::Lead(guard) => guard,
            _ => panic!("first begin must lead"),
        };
        let waiter = {
            let cache = cache.clone();
            let k = k.clone();
            std::thread::spawn(move || match cache.begin(&k) {
                Begin::Lead(guard) => *guard.complete(7, 1),
                Begin::Hit(v) | Begin::Collapsed(v) => *v,
            })
        };
        // Give the waiter time to join the flight, then abandon.
        std::thread::sleep(Duration::from_millis(30));
        drop(leader);
        assert_eq!(waiter.join().expect("waiter clean"), 7);
        assert_eq!(*cache.lookup(&k).expect("retried value cached"), 7);
    }

    #[test]
    fn insert_during_flight_is_visible_and_flight_leader_overwrites() {
        let cache: AnswerCache<u32> = AnswerCache::new(CacheConfig::default());
        let k = key(1, "q");
        let guard = match cache.begin(&k) {
            Begin::Lead(guard) => guard,
            _ => panic!("must lead"),
        };
        assert_eq!(guard.key(), &k);
        let shared = guard.complete(5, 2);
        assert_eq!(*shared, 5);
        match cache.begin(&k) {
            Begin::Hit(value) => assert_eq!(*value, 5),
            _ => panic!("completed flight must be a hit"),
        };
    }

    #[test]
    fn stats_serialize_and_roundtrip() {
        let cache: AnswerCache<u32> = AnswerCache::with_capacity(64);
        cache.insert(&key(1, "a"), 1, 11);
        let stats = cache.stats();
        let json = serde_json::to_string(&stats).expect("stats serialize");
        let back: CacheStats = serde_json::from_str(&json).expect("stats parse");
        assert_eq!(back, stats);
        assert!(json.contains("collapsed_waiters"));
        assert!(json.contains("stale_drops"));
        assert!(json.contains("bytes"));
    }
}
