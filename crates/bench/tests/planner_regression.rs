//! Planner performance regression gate: on the 2000-row bench table, the
//! cost-based cold path (`PlanMode::Auto` on a fresh engine — columnar
//! kernels, no index build) must never lose to the `ForceScan` reference on
//! any of the five operator workloads. This is the regression the planner
//! was built to close: the old `execute` built a full `TableIndex` per call
//! and ran 0.2–0.46× of scan on every workload at this size.
//!
//! Timing discipline: the two paths are measured interleaved (scan, cold,
//! scan, cold, …) and compared on medians across rounds, so one-off
//! scheduler hiccups cannot decide the verdict.

use std::time::{Duration, Instant};

use wtq_bench::exec::{bench_table, workloads};
use wtq_sql::{translate, PlanMode, SqlEngine};
use wtq_table::TableIndex;

const ROUNDS: usize = 7;

/// Mean µs per call over enough iterations to fill a small budget.
fn time_us<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(100));
    let budget = Duration::from_millis(10);
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 5_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

#[test]
fn cold_auto_never_loses_to_scan_on_any_operator() {
    let table = bench_table(2000);
    let index = TableIndex::new(&table);
    let mut covered = Vec::new();
    for (name, formula) in workloads(&table, &index) {
        let query = translate(&formula)
            .unwrap_or_else(|e| panic!("workload {name} must translate to SQL: {e}"));
        let engine = SqlEngine::new(&table);
        let mut scan_samples = Vec::with_capacity(ROUNDS);
        let mut cold_samples = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            scan_samples.push(time_us(|| {
                let _ = engine.execute(&query, PlanMode::ForceScan);
            }));
            // A fresh engine per call: nothing warm survives between runs.
            cold_samples.push(time_us(|| {
                let _ = SqlEngine::new(&table).execute(&query, PlanMode::Auto);
            }));
        }
        let scan_us = median(scan_samples);
        let cold_us = median(cold_samples);
        let speedup = scan_us / cold_us;
        assert!(
            speedup >= 1.0,
            "cold Auto regressed vs scan on {name}: scan {scan_us:.1} µs, \
             cold {cold_us:.1} µs ({speedup:.2}×)"
        );
        covered.push(name);
    }
    assert_eq!(
        covered,
        [
            "join",
            "compare",
            "superlative",
            "intersect",
            "project_aggregate"
        ],
        "the workload set changed; update the regression gate"
    );
}

#[test]
fn warm_auto_never_loses_to_scan_on_any_operator() {
    let table = bench_table(2000);
    let index = TableIndex::new(&table);
    let warm = SqlEngine::with_index(&table, &index);
    for (name, formula) in workloads(&table, &index) {
        let query = translate(&formula)
            .unwrap_or_else(|e| panic!("workload {name} must translate to SQL: {e}"));
        let mut scan_samples = Vec::with_capacity(ROUNDS);
        let mut warm_samples = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            scan_samples.push(time_us(|| {
                let _ = warm.execute(&query, PlanMode::ForceScan);
            }));
            warm_samples.push(time_us(|| {
                let _ = warm.execute(&query, PlanMode::Auto);
            }));
        }
        let scan_us = median(scan_samples);
        let warm_us = median(warm_samples);
        let speedup = scan_us / warm_us;
        assert!(
            speedup >= 1.0,
            "warm Auto regressed vs scan on {name}: scan {scan_us:.1} µs, \
             warm {warm_us:.1} µs ({speedup:.2}×)"
        );
    }
}
