//! Observability overhead regression gate: request tracing at the default
//! sampling rate (1 in 16) must keep at least 95% of the throughput of a
//! server with tracing disabled. The per-request cost of the layer is a
//! handful of monotonic-clock reads and relaxed counter increments plus,
//! on sampled requests, one ring push behind a mutex — this gate is what
//! keeps it that way.
//!
//! Timing discipline mirrors `parse_regression.rs`: the two servers are
//! measured interleaved (sampled, disabled, sampled, disabled, …) over the
//! same question workload and compared on medians across rounds, so
//! machine-load drift hits both variants alike.

use wtq_bench::obs::tracing_overhead;

/// The real gate runs in release (the dedicated CI step). Under a debug
/// `cargo test` the whole workspace's test binaries share the machine, so
/// a 5% throughput margin is noise — there the gate only rejects a
/// wholesale collapse.
#[cfg(not(debug_assertions))]
const GATE: f64 = 0.95;
#[cfg(debug_assertions)]
const GATE: f64 = 0.70;

#[test]
fn tracing_at_default_sampling_keeps_95_percent_of_throughput() {
    let overhead = tracing_overhead(256, 32, 2, 7);
    assert!(
        overhead.qps_disabled > 0.0 && overhead.qps_sampled > 0.0,
        "degenerate run: {overhead:?}"
    );
    assert!(
        overhead.ratio >= GATE,
        "tracing overhead regressed: {:.1} q/s sampled vs {:.1} q/s disabled \
         (ratio {:.3}, gate {GATE})",
        overhead.qps_sampled,
        overhead.qps_disabled,
        overhead.ratio
    );
}
