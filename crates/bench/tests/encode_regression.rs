//! Encode-path performance regression gate: on a cache hit, assembling
//! the framed response by splicing the cached candidate bytes must beat
//! re-rendering the explanation and re-serializing the envelope by at
//! least 2× — the margin the encode-once rework was built to hold. The
//! splice path only escapes the two echoed strings and copies bytes; if
//! it ever drops under 2× the rebuild path, the splicer has grown real
//! per-candidate work and the PR's premise is broken.
//!
//! Timing discipline mirrors `parse_regression.rs`: each question's two
//! paths are measured interleaved (rebuild, splice, rebuild, splice, …)
//! inside [`wtq_bench::encode::micro_case`], repeated over rounds, and
//! compared on the median per-question speedup, so one-off scheduler
//! hiccups cannot decide the verdict. Byte-identical output is asserted
//! on every round by `micro_case` itself.

use wtq_bench::encode::{median, micro_case};
use wtq_bench::exec::bench_table;
use wtq_bench::serve::question_workload;
use wtq_core::Engine;

const ROUNDS: usize = 7;
const QUESTIONS: usize = 4;
const REQUIRED_SPEEDUP: f64 = 2.0;

#[test]
fn hit_path_splice_is_at_least_twice_as_fast_as_rebuild() {
    let table = bench_table(256);
    let engine = Engine::new();
    engine.index_for(&table); // warm: only encode work should be timed
    let workload = question_workload(&table, QUESTIONS);
    assert_eq!(workload.len(), QUESTIONS);

    for body in &workload {
        let speedups: Vec<f64> = (0..ROUNDS)
            .map(|_| micro_case(&engine, &table, &body.question, 3).speedup)
            .collect();
        let speedup = median(speedups);
        assert!(
            speedup >= REQUIRED_SPEEDUP,
            "hit-path splice regressed vs rebuild-and-serialize on \
             {:?}: median speedup {speedup:.2}× < {REQUIRED_SPEEDUP}×",
            body.question
        );
    }
}
