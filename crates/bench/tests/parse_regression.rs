//! Parse-pipeline performance regression gate: on each of the five operator
//! workloads, the interned feature pipeline (`FeatureId` symbol table,
//! sorted sparse vectors, dense weights, reused scratch) must never lose to
//! the string-keyed reference (`wtq_parser::reference`) end to end. This is
//! the regression the interning rework was built to close: the old pipeline
//! allocated a `BTreeMap<String, f64>` per candidate and re-rendered every
//! feature name on every extraction.
//!
//! Timing discipline mirrors `planner_regression.rs`: the two pipelines are
//! measured interleaved (reference, interned, reference, interned, …) over
//! the same questions and warm evaluator session, and compared on medians
//! across rounds, so one-off scheduler hiccups cannot decide the verdict.

use std::time::{Duration, Instant};

use wtq_bench::parse::{family_questions, parse_table, parse_workloads};
use wtq_bench::EXPERIMENT_SEED;
use wtq_dcs::Evaluator;
use wtq_parser::reference::{parse_in_session_reference, ReferenceModel};
use wtq_parser::{ScratchSpace, SemanticParser};

const ROUNDS: usize = 7;

/// Mean µs per call over enough iterations to fill a small budget.
fn time_us<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(100));
    let budget = Duration::from_millis(10);
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 5_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

#[test]
fn interned_parse_never_loses_to_the_string_keyed_reference() {
    let table = parse_table();
    let parser = SemanticParser::with_prior();
    let reference = ReferenceModel::from_model(&parser.model);
    let mut covered = Vec::new();
    for (name, family) in parse_workloads() {
        let questions = family_questions(&table, family, 6, EXPERIMENT_SEED + covered.len() as u64);
        assert!(!questions.is_empty(), "no {name} questions generated");
        // One warm evaluator session shared by both pipelines: identical
        // candidate pools, identical denotation-cache state.
        let evaluator = Evaluator::new(&table);
        let mut scratch = ScratchSpace::new();
        for question in &questions {
            let _ = parser.parse_in_session_with(question, &evaluator, &mut scratch);
            let _ = parse_in_session_reference(&reference, &parser.config, question, &evaluator);
        }
        let mut reference_samples = Vec::with_capacity(ROUNDS);
        let mut interned_samples = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            reference_samples.push(time_us(|| {
                for question in &questions {
                    let _ = parse_in_session_reference(
                        &reference,
                        &parser.config,
                        question,
                        &evaluator,
                    );
                }
            }));
            interned_samples.push(time_us(|| {
                for question in &questions {
                    let _ = parser.parse_in_session_with(question, &evaluator, &mut scratch);
                }
            }));
        }
        let reference_us = median(reference_samples);
        let interned_us = median(interned_samples);
        let speedup = reference_us / interned_us;
        assert!(
            speedup >= 1.0,
            "interned pipeline regressed vs string-keyed reference on {name}: \
             reference {reference_us:.1} µs, interned {interned_us:.1} µs \
             ({speedup:.2}×)"
        );
        covered.push(name);
    }
    assert_eq!(
        covered,
        [
            "join",
            "compare",
            "superlative",
            "intersect",
            "project_aggregate"
        ],
        "the workload set changed; update the regression gate"
    );
}
