//! Answer-cache replay throughput: a Zipfian question trace through the
//! bare `Engine` vs a `CachedEngine`, plus the pure-hit lookup cost. The
//! ratio between the first two groups is what the deduplicating cache
//! buys under skewed request streams; the third is the cache's own
//! overhead floor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

use wtq_bench::cache::zipf_trace;
use wtq_bench::exec::bench_table;
use wtq_bench::serve::question_workload;
use wtq_cache::CacheConfig;
use wtq_core::{CachedEngine, Engine};

fn bench_cache_hit_rate(c: &mut Criterion) {
    let table = bench_table(512);
    let questions: Vec<String> = question_workload(&table, 16)
        .into_iter()
        .map(|body| body.question)
        .collect();
    let trace = zipf_trace(questions.len(), 64, 1.1);
    let engine = Arc::new(Engine::new());
    engine.index_for(&table);

    let mut group = c.benchmark_group("cache_hit_rate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("zipf_replay_uncached", |b| {
        b.iter(|| {
            for &index in &trace {
                let explained = engine.explain_question(&questions[index], &table, 3);
                assert!(!explained.is_empty());
            }
        })
    });

    group.bench_function("zipf_replay_cached", |b| {
        // A fresh cache per iteration: each replay pays its misses, so the
        // measurement matches the experiments section's cached_qps.
        b.iter(|| {
            let cached = CachedEngine::new(engine.clone(), CacheConfig::default());
            for &index in &trace {
                let answer = cached.explain_question(&questions[index], &table, 3);
                assert!(!answer.is_empty());
            }
        })
    });

    // Pure hit path: the cache pre-warmed, every lookup an Arc clone.
    let warm = CachedEngine::new(engine.clone(), CacheConfig::default());
    for question in &questions {
        let _ = warm.explain_question(question, &table, 3);
    }
    group.bench_function("zipf_replay_all_hits", |b| {
        b.iter(|| {
            for &index in &trace {
                let answer = warm.explain_question(&questions[index], &table, 3);
                assert!(!answer.is_empty());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache_hit_rate);
criterion_main!(benches);
