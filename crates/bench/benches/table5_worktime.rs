//! Table 5: work-time comparison of the two explanation modes.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

use wtq_bench::{environment, table5};
use wtq_study::WorkTimeModel;

fn bench_table5(c: &mut Criterion) {
    let env = environment(10, 6, 24);
    let [with, without] = table5(&env, 10);
    println!(
        "\nTable 5 (measured, minutes per 20-question session):\n\
         utterances + highlights: avg {:.1} median {:.1} min {:.1} max {:.1} (paper 16.2 / 16.6 / 6.45 / 22.5)\n\
         utterances only        : avg {:.1} median {:.1} min {:.1} max {:.1} (paper 24.7 / 20.7 / 17.5 / 35.4)\n\
         measured saving {:.0}% (paper 34%).",
        with.0, with.1, with.2, with.3,
        without.0, without.1, without.2, without.3,
        (1.0 - with.0 / without.0) * 100.0
    );

    let model = WorkTimeModel::default();
    let session: Vec<Vec<usize>> = (0..20).map(|i| vec![12 + (i % 8); 7]).collect();
    let mut group = c.benchmark_group("table5_worktime");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("session_simulation_with_highlights", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| model.session_minutes(&session, true, &mut rng))
    });
    group.bench_function("session_simulation_utterances_only", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| model.session_minutes(&session, false, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
