//! Table 4: user-study success rate under simulated users.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

use wtq_bench::{environment, raw_formula_control, table4};
use wtq_dcs::parse_formula;
use wtq_study::SimulatedUser;

fn bench_table4(c: &mut Criterion) {
    let env = environment(10, 6, 30);
    let t4 = table4(&env);
    let control = raw_formula_control(&env);
    println!(
        "\nTable 4 (measured): {} questions, {} explanations shown, success rate {:.1}% \
         (paper: 405 / 2,835 / 78.4%); raw-formula control {:.1}%.",
        t4.questions,
        t4.explanations,
        t4.success_rate * 100.0,
        control * 100.0
    );

    // Micro-benchmark: one simulated user decision over a 7-candidate list.
    let candidates: Vec<wtq_dcs::Formula> = [
        "max(R[Year].Country.Greece)",
        "min(R[Year].Country.Greece)",
        "R[Year].last(Country.Greece)",
        "count(Country.Greece)",
        "R[City].Country.Greece",
        "max(R[Year].Rows)",
        "sum(R[Year].Country.Greece)",
    ]
    .iter()
    .map(|t| parse_formula(t).expect("parses"))
    .collect();
    let gold = parse_formula("max(R[Year].Country.Greece)").expect("parses");
    let user = SimulatedUser::average();
    let mut group = c.benchmark_group("table4_user_success");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("single_user_decision_top7", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| user.choose(&candidates, Some(&gold), &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
