//! Table 7: per-question execution time of candidate generation, utterance
//! generation and highlight generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use wtq_bench::environment;
use wtq_parser::SemanticParser;
use wtq_provenance::Highlights;

fn bench_table7(c: &mut Criterion) {
    let env = environment(10, 6, 24);
    let parser = SemanticParser::with_prior();
    let example = &env.test_examples[0];
    let table = env.catalog.get(&example.table).expect("table exists");
    let candidates = parser.parse_top_k(&example.question, table, 7);

    let mut group = c.benchmark_group("table7_exec_times");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("candidate_generation_per_question", |b| {
        b.iter(|| parser.parse_top_k(&example.question, table, 7))
    });
    group.bench_function("utterance_generation_per_question", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|c| wtq_explain::utter(&c.formula))
                .collect::<Vec<String>>()
        })
    });
    group.bench_function("highlight_generation_per_question", |b| {
        b.iter(|| {
            candidates
                .iter()
                .filter_map(|c| Highlights::compute(&c.formula, table).ok())
                .count()
        })
    });
    group.finish();

    // Print the Table 7 row alongside the micro-benchmarks.
    let t7 = wtq_bench::table7(&env, 7);
    println!(
        "\nTable 7 (measured, {} questions): candidates {:.4}s, utterances {:.4}s, highlights {:.4}s per question\n\
         Paper: 1.22s / 0.22s / 1.36s — utterances remain the cheapest stage.",
        t7.questions, t7.candidate_generation, t7.utterance_generation, t7.highlight_generation
    );
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
