//! Network-serving throughput: questions/second through the `wtq-server`
//! front-end, driving N concurrent client connections against a loopback
//! server. The delta against `batch_throughput` (same engine, no network)
//! is the cost of the serving layer itself: framing, JSON envelopes,
//! admission control and per-connection threads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use wtq_bench::exec::bench_table;
use wtq_bench::serve::{loopback_server, question_workload, replay_workload};
use wtq_server::{Client, ServerConfig};

fn bench_server_throughput(c: &mut Criterion) {
    let table = bench_table(512);
    let workload = question_workload(&table, 16);
    let handle = loopback_server(table, ServerConfig::default());
    let addr = handle.local_addr();

    // Warm the engine's index cache once so every configuration measures
    // steady-state serving.
    {
        let mut client = Client::connect(addr).expect("warm-up connects");
        let first = &workload[0];
        let _ = client.explain(&first.question, &first.table, Some(1));
    }

    let mut group = c.benchmark_group("server_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for connections in [1usize, 2, 4] {
        group.bench_function(
            format!(
                "explain_{}_questions_{}_connections",
                workload.len(),
                connections
            ),
            |b| b.iter(|| replay_workload(addr, &workload, connections)),
        );
    }
    // One persistent pipelined connection: the per-request framing cost
    // without reconnect overhead.
    group.bench_function(
        format!(
            "explain_{}_questions_1_persistent_connection",
            workload.len()
        ),
        |b| {
            let mut client = Client::connect(addr).expect("persistent client connects");
            b.iter(|| {
                for request in &workload {
                    client
                        .explain(&request.question, &request.table, request.top_k)
                        .expect("request succeeds");
                }
            })
        },
    );
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
