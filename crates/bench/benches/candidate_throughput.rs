//! End-to-end candidate throughput: questions/second through the full
//! lexicon → candidate generation → feature extraction → scoring pipeline,
//! the serving-path number the ROADMAP's questions-per-second goal tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

use wtq_bench::EXPERIMENT_SEED;
use wtq_parser::SemanticParser;

fn bench_candidate_throughput(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED);
    let domains = wtq_dataset::all_domains();
    // A handful of (question, table) pairs across domains, so the measured
    // number reflects mixed question families rather than one lucky shape.
    let mut pairs = Vec::new();
    for (i, domain) in domains.iter().take(3).enumerate() {
        let table = wtq_dataset::generate_table(domain, i, &mut rng);
        let questions = wtq_dataset::generate_questions(&table, 4, &mut rng);
        for q in questions {
            pairs.push((q.question, table.clone()));
        }
    }
    let parser = SemanticParser::with_prior();

    let mut group = c.benchmark_group("candidate_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // Per-question end-to-end parse (one index build + linking + candidate
    // pool + scoring); divide the reported time by the pair count for the
    // per-question cost, or invert for questions/second.
    group.bench_function(format!("parse_{}_questions", pairs.len()), |b| {
        b.iter(|| {
            for (question, table) in &pairs {
                let _ = parser.parse(question, table);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_candidate_throughput);
criterion_main!(benches);
