//! End-to-end candidate throughput: questions/second through the full
//! lexicon → candidate generation → feature extraction → scoring pipeline,
//! the serving-path number the ROADMAP's questions-per-second goal tracks.
//!
//! Three cases: the historical per-question `parse` (fresh index per call,
//! tracked across PRs), the session path with interned features and a
//! reused scratch (the deployment configuration), and the string-keyed
//! reference pipeline on identical sessions — the interned-vs-reference
//! pair is the headline speedup of the feature-interning rework.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

use wtq_bench::EXPERIMENT_SEED;
use wtq_dcs::Evaluator;
use wtq_parser::reference::{parse_in_session_reference, ReferenceModel};
use wtq_parser::{ScratchSpace, SemanticParser};

fn bench_candidate_throughput(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED);
    let domains = wtq_dataset::all_domains();
    // A handful of (question, table) pairs across domains, so the measured
    // number reflects mixed question families rather than one lucky shape.
    let mut pairs = Vec::new();
    for (i, domain) in domains.iter().take(3).enumerate() {
        let table = wtq_dataset::generate_table(domain, i, &mut rng);
        let questions = wtq_dataset::generate_questions(&table, 4, &mut rng);
        for q in questions {
            pairs.push((q.question, table.clone()));
        }
    }
    let parser = SemanticParser::with_prior();

    let mut group = c.benchmark_group("candidate_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // Per-question end-to-end parse (one index build + linking + candidate
    // pool + scoring); divide the reported time by the pair count for the
    // per-question cost, or invert for questions/second.
    group.bench_function(format!("parse_{}_questions", pairs.len()), |b| {
        b.iter(|| {
            for (question, table) in &pairs {
                let _ = parser.parse(question, table);
            }
        })
    });
    // The session path (interned features, reused scratch) against the
    // string-keyed reference over identical warm evaluator sessions.
    let evaluators: Vec<Evaluator<'_>> = pairs
        .iter()
        .map(|(_, table)| Evaluator::new(table))
        .collect();
    let mut scratch = ScratchSpace::new();
    group.bench_function(format!("session_parse_{}_questions", pairs.len()), |b| {
        b.iter(|| {
            for ((question, _), evaluator) in pairs.iter().zip(&evaluators) {
                let _ = parser.parse_in_session_with(question, evaluator, &mut scratch);
            }
        })
    });
    let reference = ReferenceModel::from_model(&parser.model);
    group.bench_function(
        format!("reference_session_parse_{}_questions", pairs.len()),
        |b| {
            b.iter(|| {
                for ((question, _), evaluator) in pairs.iter().zip(&evaluators) {
                    let _ =
                        parse_in_session_reference(&reference, &parser.config, question, evaluator);
                }
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_candidate_throughput);
criterion_main!(benches);
