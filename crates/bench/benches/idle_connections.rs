//! Many-idle-connections scaling: the epoll reactor holds thousands of
//! open, mostly-idle sockets while a handful of active clients keep full
//! throughput — the workload shape of interactive table exploration at
//! production scale (most connected users are reading an explanation, not
//! asking). Under the old thread-per-connection model this bench would
//! need one stack per idle socket; under the reactor it needs one slab
//! entry and one epoll registration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::net::TcpStream;
use std::time::Duration;

use wtq_bench::exec::bench_table;
use wtq_bench::serve::{loopback_server, question_workload, replay_workload};
use wtq_server::{Client, ServerConfig};

/// Idle sockets to hold open (clamped by the fd limit at runtime).
const IDLE_TARGET: usize = 5000;
/// Active clients issuing requests alongside the idle herd.
const ACTIVE: usize = 8;

fn bench_idle_connections(c: &mut Criterion) {
    // Each loopback connection costs two fds in this process; raise the
    // limit and clamp exactly like the experiments report does.
    let (idle_count, _soft_limit) = wtq_bench::serve::clamp_idle_target(IDLE_TARGET);

    let table = bench_table(512);
    let workload = question_workload(&table, 16);
    let handle = loopback_server(table, ServerConfig::default());
    let addr = handle.local_addr();

    // The herd connects once, before measurement, and stays connected
    // through every iteration.
    let idle_conns: Vec<TcpStream> = (0..idle_count)
        .map(|_| TcpStream::connect(addr).expect("idle connection"))
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while handle.server_stats().open_connections < idle_conns.len() as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "reactors never registered the idle herd; stats: {:?}",
            handle.server_stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = handle.server_stats();
    println!(
        "holding {} idle connections on {} reactor + {} dispatch threads",
        stats.open_connections, stats.reactor_threads, stats.dispatch_threads
    );

    // Warm the engine's index cache so iterations measure serving.
    {
        let mut client = Client::connect(addr).expect("warm-up connects");
        let first = &workload[0];
        let _ = client.explain(&first.question, &first.table, Some(1));
    }

    let mut group = c.benchmark_group("idle_connections");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function(
        format!(
            "explain_{}_questions_{}_active_over_{}_idle",
            workload.len(),
            ACTIVE,
            idle_conns.len()
        ),
        |b| b.iter(|| replay_workload(addr, &workload, ACTIVE)),
    );
    group.finish();

    // The herd must have survived the whole run.
    let stats = handle.server_stats();
    assert!(
        stats.open_connections >= idle_conns.len() as u64,
        "idle connections dropped during the bench: {stats:?}"
    );
    drop(idle_conns);
    handle.shutdown();
}

criterion_group!(benches, bench_idle_connections);
criterion_main!(benches);
