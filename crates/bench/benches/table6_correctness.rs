//! Table 6: parser / user / hybrid correctness and the top-7 bound.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use wtq_bench::{environment, k_sweep, table6};
use wtq_parser::SemanticParser;
use wtq_study::{DeploymentExperiment, SimulatedUser};

fn bench_table6(c: &mut Criterion) {
    let env = environment(10, 6, 30);
    let t6 = table6(&env);
    let d = &t6.deployment;
    println!(
        "\nTable 6 (measured over {} questions): parser {:.1}%, users {:.1}%, hybrid {:.1}%, bound {:.1}%, MRR {:.3}\n\
         (paper: 37.1% / 44.6% / 48.7% / 56.0%); χ² users vs parser {:.2} (sig@0.01: {}).",
        d.questions,
        d.parser_correctness * 100.0,
        d.user_correctness * 100.0,
        d.hybrid_correctness * 100.0,
        d.bound * 100.0,
        d.mrr,
        t6.user_vs_parser.0,
        t6.user_vs_parser.1
    );
    for (k, coverage) in k_sweep(&env, &[7, 14]) {
        println!("bound at k = {k:>2}: {:.1}%", coverage * 100.0);
    }

    // Micro-benchmark: one full deployment question (parse + user choice).
    let parser = SemanticParser::with_prior();
    let experiment = DeploymentExperiment::default();
    let user = SimulatedUser::average();
    let single = vec![env.test_examples[0].clone()];
    let mut group = c.benchmark_group("table6_correctness");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("deployment_single_question", |b| {
        b.iter(|| experiment.run(&parser, &single, &env.catalog, &user, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
