//! Table 10 / Table 2 ablation: evaluation, provenance and SQL translation
//! cost for every lambda DCS operator family on the paper's sample tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use wtq_dcs::{eval, parse_formula};
use wtq_provenance::provenance;
use wtq_sql::{execute, translate};
use wtq_table::samples;

fn bench_operators(c: &mut Criterion) {
    let olympics = samples::olympics();
    let cases = [
        ("column_records", "City.Athens"),
        ("column_values", "R[Year].City.Athens"),
        ("prev", "R[Year].Prev.City.Athens"),
        ("aggregation", "sum(R[Year].City.Athens)"),
        (
            "difference",
            "sub(R[Year].City.London, R[Year].City.Beijing)",
        ),
        ("intersection", "(City.London and Country.UK)"),
        ("superlative", "argmax(Rows, Year)"),
        ("most_common", "most_common((Athens or London), City)"),
        (
            "compare_values",
            "compare_max((London or Beijing), Year, City)",
        ),
    ];
    let mut group = c.benchmark_group("operator_matrix");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for (name, text) in cases {
        let formula = parse_formula(text).expect("operator formula parses");
        group.bench_function(format!("eval/{name}"), |b| {
            b.iter(|| eval(&formula, &olympics))
        });
        group.bench_function(format!("provenance/{name}"), |b| {
            b.iter(|| provenance(&formula, &olympics))
        });
        if let Ok(sql) = translate(&formula) {
            group.bench_function(format!("sql/{name}"), |b| {
                b.iter(|| execute(&sql, &olympics))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
