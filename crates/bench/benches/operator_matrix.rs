//! Table 10 / Table 2 ablation: evaluation, provenance and SQL translation
//! cost for every lambda DCS operator family on the paper's sample tables,
//! plus the `exec_layer` group comparing the indexed execution layer against
//! the scan reference on a scaled synthetic table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

use wtq_bench::exec::{bench_table, workloads};
use wtq_dcs::{eval, eval_reference, parse_formula, Evaluator};
use wtq_provenance::provenance;
use wtq_sql::{translate, PlanMode, SqlEngine};
use wtq_table::{samples, TableIndex};

fn bench_operators(c: &mut Criterion) {
    let olympics = samples::olympics();
    let cases = [
        ("column_records", "City.Athens"),
        ("column_values", "R[Year].City.Athens"),
        ("prev", "R[Year].Prev.City.Athens"),
        ("aggregation", "sum(R[Year].City.Athens)"),
        (
            "difference",
            "sub(R[Year].City.London, R[Year].City.Beijing)",
        ),
        ("intersection", "(City.London and Country.UK)"),
        ("superlative", "argmax(Rows, Year)"),
        ("most_common", "most_common((Athens or London), City)"),
        (
            "compare_values",
            "compare_max((London or Beijing), Year, City)",
        ),
    ];
    let mut group = c.benchmark_group("operator_matrix");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for (name, text) in cases {
        let formula = parse_formula(text).expect("operator formula parses");
        group.bench_function(format!("eval/{name}"), |b| {
            b.iter(|| eval(&formula, &olympics))
        });
        group.bench_function(format!("provenance/{name}"), |b| {
            b.iter(|| provenance(&formula, &olympics))
        });
        if let Ok(sql) = translate(&formula) {
            group.bench_function(format!("sql/{name}"), |b| {
                b.iter(|| SqlEngine::new(&olympics).execute(&sql, PlanMode::Auto))
            });
        }
    }
    group.finish();
}

/// Indexed execution layer vs the scan reference on a 2 000-row table:
/// `scan` is the pre-index semantics, `indexed` a session sharing one
/// prebuilt index (cold cache per call), `warm` a single reused session.
/// For SQL: `sql_scan` is `ForceScan`, `sql_cold` a fresh cost-based
/// engine per call (columnar kernels, no index), `sql_warm` the reused
/// cost-based engine holding the shared index.
fn bench_exec_layer(c: &mut Criterion) {
    let table = bench_table(2000);
    let index = Arc::new(TableIndex::new(&table));
    let warm = Evaluator::with_index(&table, index.clone());
    let mut group = c.benchmark_group("exec_layer");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    for (name, formula) in workloads(&table, &index) {
        group.bench_function(format!("scan/{name}"), |b| {
            b.iter(|| eval_reference(&formula, &table))
        });
        group.bench_function(format!("indexed/{name}"), |b| {
            b.iter(|| {
                let session = Evaluator::with_index(&table, index.clone());
                session.eval(&formula)
            })
        });
        group.bench_function(format!("warm/{name}"), |b| b.iter(|| warm.eval(&formula)));
        if let Ok(query) = translate(&formula) {
            let warm_engine = SqlEngine::with_index(&table, &index);
            group.bench_function(format!("sql_scan/{name}"), |b| {
                b.iter(|| warm_engine.execute(&query, PlanMode::ForceScan))
            });
            group.bench_function(format!("sql_cold/{name}"), |b| {
                b.iter(|| SqlEngine::new(&table).execute(&query, PlanMode::Auto))
            });
            group.bench_function(format!("sql_warm/{name}"), |b| {
                b.iter(|| warm_engine.execute(&query, PlanMode::Auto))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_operators, bench_exec_layer);
criterion_main!(benches);
