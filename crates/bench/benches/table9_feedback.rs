//! Table 9: retraining the parser on user-procured annotations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use wtq_bench::{environment, table9};
use wtq_parser::{SemanticParser, TrainConfig, TrainExample, Trainer};

fn bench_table9(c: &mut Criterion) {
    let env = environment(12, 6, 24);
    let rows = table9(&env, 40, 1);
    println!("\nTable 9 (measured): train ex. / annotations / correctness / MRR");
    let analogues = [
        "paper 1,650 / 1,650 -> 49.8% / 0.586",
        "paper 1,650 / 0 -> 41.8% / 0.499",
        "paper 11,000 / 1,650 -> 51.6% / 0.600",
        "paper 11,000 / 0 -> 49.5% / 0.570",
    ];
    for (row, analogue) in rows.iter().zip(analogues) {
        println!(
            "{:>5} / {:>4} / {:>5.1}% / {:.3}   ({analogue})",
            row.train_examples,
            row.annotations,
            row.correctness * 100.0,
            row.mrr
        );
    }

    // Micro-benchmark: one AdaGrad step on a single annotated example.
    let example = &env.train_examples[0];
    let train_example = TrainExample::weak(
        example.question.clone(),
        example.table.clone(),
        example.answer.clone(),
    )
    .with_annotations(vec![example.gold.clone()]);
    let mut group = c.benchmark_group("table9_feedback");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("adagrad_step_single_example", |b| {
        b.iter(|| {
            let mut parser = SemanticParser::with_prior();
            let mut trainer = Trainer::new(TrainConfig::default());
            trainer.train_on_example(&mut parser, &train_example, &env.catalog)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table9);
criterion_main!(benches);
