//! Hit-path response assembly: splicing cached candidate bytes into the
//! framed envelope vs re-rendering the explanation and re-serializing it.
//! The ratio between the two groups is what the encode-once serving path
//! buys per cache hit; `served_zipf_replay` in the `experiments --section
//! encode` report shows the same delta end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

use wtq_bench::exec::bench_table;
use wtq_bench::serve::question_workload;
use wtq_core::{CachedCandidates, Engine};
use wtq_server::wire::{self, encode_frame_into, spliced_frame_head};
use wtq_server::{ResponseBody, ResponseEnvelope, WireExplanation, PROTOCOL_VERSION};

fn bench_encode_path(c: &mut Criterion) {
    let table = bench_table(512);
    let body = &question_workload(&table, 1)[0];
    let engine = Engine::new();
    engine.index_for(&table);
    let cached = CachedCandidates::new(engine.explain_question(&body.question, &table, 3), &table);
    let bytes = Arc::clone(cached.body());
    let table_name = table.name().to_string();

    let mut group = c.benchmark_group("encode_path");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    let mut rebuild_buf: Vec<u8> = Vec::new();
    group.bench_function("rebuild_and_serialize", |b| {
        b.iter(|| {
            let envelope = ResponseEnvelope {
                v: PROTOCOL_VERSION,
                id: 42,
                body: ResponseBody::Explanation(WireExplanation::from_candidates(
                    &body.question,
                    &table_name,
                    cached.candidates(),
                    &table,
                )),
            };
            let json = serde_json::to_string(&envelope).unwrap();
            rebuild_buf.clear();
            encode_frame_into(json.as_bytes(), &mut rebuild_buf).unwrap();
        })
    });

    let mut splice_buf: Vec<u8> = Vec::new();
    group.bench_function("splice_cached_bytes", |b| {
        b.iter(|| {
            assert!(spliced_frame_head(
                &mut splice_buf,
                42,
                &body.question,
                &table_name,
                bytes.len()
            ));
            splice_buf.extend_from_slice(&bytes);
            splice_buf.extend_from_slice(wire::SPLICE_ENVELOPE_TAIL);
        })
    });

    group.finish();
}

criterion_group!(benches, bench_encode_path);
criterion_main!(benches);
