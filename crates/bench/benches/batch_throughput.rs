//! Batch-serving throughput: questions/second through the shared
//! `wtq_core::Engine` at growing worker-pool sizes, on the 2000-row bench
//! table. This is the scaling curve the ROADMAP's "as fast as the hardware
//! allows" goal tracks: the acceptance bar is > 1.5× questions/sec at 4
//! workers vs 1 worker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use wtq_bench::exec::{batch_environment, bench_table, PARALLEL_WORKER_COUNTS};

fn bench_batch_throughput(c: &mut Criterion) {
    let table = bench_table(2000);
    let (engine, catalog, requests) = batch_environment(&table, 16);

    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for workers in PARALLEL_WORKER_COUNTS {
        // One iteration explains all requests; divide the reported time by
        // the request count for seconds/question, or invert for
        // questions/second at this pool size.
        group.bench_function(
            format!("explain_{}_questions_{}_workers", requests.len(), workers),
            |b| b.iter(|| engine.explain_batch_with(workers, &catalog, &requests)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
