//! Serving-layer measurements: a loopback `wtq-server` driven by blocking
//! clients, reporting end-to-end request latency percentiles.
//!
//! Shared by the `server_throughput` Criterion bench and the `experiments`
//! binary's `--section serve`, which folds the report into
//! `BENCH_exec.json` as the `serving` section.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use wtq_core::Engine;
use wtq_server::{Client, ExplainBody, Server, ServerConfig, ServerHandle};
use wtq_table::{Catalog, Table};

use crate::exec::bench_table;
use crate::EXPERIMENT_SEED;

/// Latency percentiles of a loopback serving run (milliseconds).
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    /// Rows of the served benchmark table.
    pub rows: usize,
    /// Total requests sent across all connections.
    pub questions: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// End-to-end requests/second across the whole run (connect + frame +
    /// parse + explain + respond).
    pub qps: f64,
    /// Mean per-request latency, ms.
    pub mean_ms: f64,
    /// Median per-request latency, ms.
    pub p50_ms: f64,
    /// 90th-percentile latency, ms.
    pub p90_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Worst observed latency, ms.
    pub max_ms: f64,
    /// Requests rejected by backpressure during the run (0 unless the
    /// in-flight bound is set below the connection count).
    pub rejected: u64,
    /// Answer-cache hits observed by the server during the run (the
    /// default config serves with the deduplicating cache enabled).
    pub cache_hits: u64,
    /// Answer-cache misses observed by the server during the run.
    pub cache_misses: u64,
    /// Concurrent identical requests that reused an in-flight leader's
    /// execution instead of re-executing (single-flight collapse).
    pub cache_collapsed_waiters: u64,
}

/// Boot a loopback server over `table` (plus the engine defaults), ready
/// for `connections` clients.
pub fn loopback_server(table: Table, config: ServerConfig) -> ServerHandle {
    let engine = Arc::new(Engine::new());
    let catalog: Arc<Catalog> = Arc::new([table].into_iter().collect());
    Server::bind("127.0.0.1:0", engine, catalog, config).expect("bind loopback server")
}

/// A deterministic question workload over `table`.
pub fn question_workload(table: &Table, questions: usize) -> Vec<ExplainBody> {
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED + 3);
    wtq_dataset::generate_questions(table, questions, &mut rng)
        .into_iter()
        .map(|question| ExplainBody {
            question: question.question,
            table: table.name().to_string(),
            top_k: Some(3),
        })
        .collect()
}

/// Replay `workload` through `connections` concurrent framed clients
/// against `addr` (round-robin split); returns the completed requests'
/// latencies and the number of backpressure rejections. Only a server-side
/// `Overloaded` rejection counts as rejected — any other failure (broken
/// connection, unknown table, internal error) panics, so a sick bench run
/// fails loudly instead of skewing the report.
pub fn replay_workload(
    addr: SocketAddr,
    workload: &[ExplainBody],
    connections: usize,
) -> (Vec<Duration>, u64) {
    let connections = connections.clamp(1, workload.len().max(1));
    let mut latencies: Vec<Duration> = Vec::with_capacity(workload.len());
    let mut rejected = 0u64;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for connection in 0..connections {
            let slice: Vec<&ExplainBody> = workload
                .iter()
                .skip(connection)
                .step_by(connections)
                .collect();
            workers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                let mut latencies = Vec::with_capacity(slice.len());
                let mut rejected = 0u64;
                for request in slice {
                    let start = Instant::now();
                    match client.explain(&request.question, &request.table, request.top_k) {
                        Ok(_) => latencies.push(start.elapsed()),
                        Err(wtq_server::ClientError::Server(err))
                            if err.code == wtq_server::ErrorCode::Overloaded =>
                        {
                            rejected += 1;
                        }
                        Err(err) => panic!("bench request failed: {err}"),
                    }
                }
                (latencies, rejected)
            }));
        }
        for worker in workers {
            let (worker_latencies, worker_rejected) = worker.join().expect("bench worker clean");
            latencies.extend(worker_latencies);
            rejected += worker_rejected;
        }
    });
    (latencies, rejected)
}

/// Replay a fixed question workload through `connections` concurrent
/// clients against a loopback server on a `rows`-row table, and report
/// latency percentiles.
pub fn serving_report(rows: usize, questions: usize, connections: usize) -> ServingReport {
    let table = bench_table(rows);
    let workload = question_workload(&table, questions);
    let handle = loopback_server(table, ServerConfig::default());
    let addr = handle.local_addr();

    // Warm the index cache so percentiles measure serving, not the one-off
    // index build.
    {
        let mut client = Client::connect(addr).expect("warm-up client connects");
        let first = workload.first().expect("non-empty workload");
        let _ = client.explain(&first.question, &first.table, Some(1));
    }

    let connections = connections.clamp(1, workload.len());
    let started = Instant::now();
    let (latencies, rejected) = replay_workload(addr, &workload, connections);
    let elapsed = started.elapsed().as_secs_f64();
    let cache = {
        let mut client = Client::connect(addr).expect("stats client connects");
        client
            .stats()
            .expect("stats request succeeds")
            .engine
            .answer_cache
    };
    handle.shutdown();
    let mut latencies_ms: Vec<f64> = latencies
        .iter()
        .map(|latency| latency.as_secs_f64() * 1e3)
        .collect();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let served = latencies_ms.len();
    let mean_ms = latencies_ms.iter().sum::<f64>() / served.max(1) as f64;
    ServingReport {
        rows,
        questions: workload.len(),
        connections,
        qps: served as f64 / elapsed.max(1e-9),
        mean_ms,
        p50_ms: percentile(&latencies_ms, 0.50),
        p90_ms: percentile(&latencies_ms, 0.90),
        p99_ms: percentile(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        rejected,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_collapsed_waiters: cache.collapsed_waiters,
    }
}

/// Connection-scaling measurement: many idle sockets held open while a few
/// active clients run the workload (milliseconds / requests-per-second).
#[derive(Debug, Clone, Serialize)]
pub struct IdleConnectionsReport {
    /// Idle connections requested by the caller.
    pub requested_idle: usize,
    /// Idle connections actually held open concurrently (clamped by the
    /// process fd limit — raised toward the hard limit first).
    pub idle_connections: usize,
    /// Active (request-issuing) connections alongside the idle ones.
    pub active_connections: usize,
    /// Requests sent across the active connections.
    pub questions: usize,
    /// Requests/second with every idle connection still open.
    pub qps: f64,
    /// Median per-request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// The server's own open-connections gauge at peak — the proof the
    /// reactor really held them all.
    pub server_open_connections: u64,
    /// Reactor (event-loop) threads that carried every socket.
    pub reactor_threads: u64,
    /// Dispatch worker threads — with idle connections in the thousands,
    /// `reactor_threads + dispatch_threads` ≪ connections is the point.
    pub dispatch_threads: u64,
    /// The soft fd limit in effect during the run.
    pub nofile_soft_limit: u64,
}

/// Raise the process fd limit toward what `target` loopback connections
/// need (two fds each in-process, plus headroom for the server's own
/// machinery) and clamp the target to what the limit actually allows.
/// Returns `(clamped_target, soft_limit_in_effect)`.
pub fn clamp_idle_target(target: usize) -> (usize, u64) {
    let wanted_fds = (target * 2 + 512) as u64;
    let soft_limit = wtq_net::raise_nofile_limit(wanted_fds)
        .or_else(|_| wtq_net::nofile_limit().map(|(soft, _)| soft))
        .unwrap_or(1024);
    let clamped = target.min((soft_limit.saturating_sub(512) / 2) as usize);
    (clamped, soft_limit)
}

/// Hold `idle_target` idle connections open against a loopback server on a
/// `rows`-row table while `active` clients replay a `questions`-request
/// workload; report throughput and the server's connection gauges. The
/// idle count is clamped to what the process fd limit allows (see
/// [`clamp_idle_target`]).
pub fn idle_connections_report(
    idle_target: usize,
    active: usize,
    questions: usize,
    rows: usize,
) -> IdleConnectionsReport {
    let (idle, soft_limit) = clamp_idle_target(idle_target);

    let table = bench_table(rows);
    let workload = question_workload(&table, questions);
    let handle = loopback_server(table, ServerConfig::default());
    let addr = handle.local_addr();

    // Open the idle herd and wait until the reactors have registered all
    // of them — open_connections is the reactor-side gauge, so reaching
    // the target proves ownership, not just a deep accept backlog.
    let mut idle_conns: Vec<std::net::TcpStream> = Vec::with_capacity(idle);
    for _ in 0..idle {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => idle_conns.push(stream),
            Err(_) => break, // fd pressure after all; report what we held
        }
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.server_stats().open_connections < idle_conns.len() as u64
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Warm the index cache, then measure with the herd still connected.
    {
        let mut client = Client::connect(addr).expect("warm-up client connects");
        let first = workload.first().expect("non-empty workload");
        let _ = client.explain(&first.question, &first.table, Some(1));
    }
    let started = Instant::now();
    let (latencies, _rejected) = replay_workload(addr, &workload, active.max(1));
    let elapsed = started.elapsed().as_secs_f64();
    let stats = handle.server_stats();

    let mut latencies_ms: Vec<f64> = latencies
        .iter()
        .map(|latency| latency.as_secs_f64() * 1e3)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let report = IdleConnectionsReport {
        requested_idle: idle_target,
        idle_connections: idle_conns.len(),
        active_connections: active.max(1),
        questions: workload.len(),
        qps: latencies_ms.len() as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        server_open_connections: stats.open_connections,
        reactor_threads: stats.reactor_threads,
        dispatch_threads: stats.dispatch_threads,
        nofile_soft_limit: soft_limit,
    };
    drop(idle_conns);
    handle.shutdown();
    report
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], quantile: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * quantile).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.50), 2.0);
        assert_eq!(percentile(&sorted, 0.90), 4.0);
        assert_eq!(percentile(&sorted, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn idle_connections_report_holds_the_herd_open() {
        // Small herd for debug-mode CI; the real scaling run (5000 idle)
        // is the idle_connections bench / experiments --section serve.
        let report = idle_connections_report(64, 2, 4, 48);
        assert_eq!(report.requested_idle, 64);
        assert!(report.idle_connections > 0);
        assert!(
            report.server_open_connections >= report.idle_connections as u64,
            "{report:?}"
        );
        assert!(report.qps > 0.0);
        // The thread counts are fixed by config, independent of the herd
        // size (the ≪-connections comparison is meaningful at the bench's
        // 5000-idle scale, not at this CI-sized 64).
        assert!(report.reactor_threads >= 1 && report.dispatch_threads >= 1);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("server_open_connections"));
    }

    #[test]
    fn serving_report_measures_a_small_loopback_run() {
        // Small enough for debug-mode CI.
        let report = serving_report(48, 4, 2);
        assert_eq!(report.rows, 48);
        assert_eq!(report.questions, 4);
        assert_eq!(report.connections, 2);
        assert_eq!(report.rejected, 0);
        assert!(report.qps > 0.0);
        assert!(report.p50_ms > 0.0);
        assert!(report.p50_ms <= report.p90_ms);
        assert!(report.p90_ms <= report.p99_ms);
        assert!(report.p99_ms <= report.max_ms);
        // The default server config serves through the answer cache, so
        // every request registered as a lookup.
        assert!(report.cache_hits + report.cache_misses >= report.questions as u64);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("p99_ms"));
        assert!(json.contains("cache_hits"));
    }
}
