//! Caching-layer measurements: Zipfian question replay through the
//! deduplicating answer cache (`wtq-cache` via [`CachedEngine`]).
//!
//! Shared by the `cache_hit_rate` Criterion bench and the `experiments`
//! binary's `--section cache`, which folds the report into
//! `BENCH_exec.json` as the `caching` section. The workload is the
//! paper's deployment shape: a fixed pool of questions over one table,
//! replayed with Zipf-distributed popularity (real question streams are
//! heavily skewed — a few phrasings dominate), at skews s ∈ {0.8, 1.1,
//! 1.4}. Each skew is replayed twice — once through the bare [`Engine`]
//! and once through a fresh [`CachedEngine`] — so the qps ratio isolates
//! what the answer cache buys end to end.

use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use wtq_cache::CacheConfig;
use wtq_core::{CachedEngine, Engine};
use wtq_server::{Client, ServerConfig};
use wtq_table::Table;

use crate::exec::bench_table;
use crate::serve::{loopback_server, question_workload, replay_workload};
use crate::EXPERIMENT_SEED;

/// The Zipf skews the caching section replays, ascending. s = 1.1 is the
/// headline number (web request streams cluster around slightly-super-1
/// skew); 0.8 is the pessimistic flat-ish tail, 1.4 the optimistic one.
pub const CACHE_SKEWS: [f64; 3] = [0.8, 1.1, 1.4];

/// An inverse-CDF Zipf sampler over ranks `0..n` with weight
/// `1 / (rank + 1)^skew`.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Precompute the normalized cumulative weights for `n` ranks.
    pub fn new(n: usize, skew: f64) -> Zipf {
        assert!(n > 0, "empty Zipf support");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(skew);
            cumulative.push(total);
        }
        for weight in &mut cumulative {
            *weight /= total;
        }
        Zipf { cumulative }
    }

    /// Sample one rank by binary search on the cumulative distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cumulative
            .partition_point(|&weight| weight <= u)
            .min(self.cumulative.len() - 1)
    }
}

/// A deterministic Zipf-distributed replay trace: `requests` indices into
/// a pool of `pool` questions.
pub fn zipf_trace(pool: usize, requests: usize, skew: f64) -> Vec<usize> {
    let zipf = Zipf::new(pool, skew);
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED + 4);
    (0..requests).map(|_| zipf.sample(&mut rng)).collect()
}

/// One skew's in-process replay: bare engine vs cached engine.
#[derive(Debug, Clone, Serialize)]
pub struct CachingSkewCase {
    /// Zipf skew parameter s.
    pub skew: f64,
    /// Requests replayed (same trace for both variants).
    pub requests: usize,
    /// Distinct questions the trace actually touched.
    pub distinct_questions: usize,
    /// Cache hits / lookups over the cached replay.
    pub hit_rate: f64,
    /// Questions/second through the bare engine.
    pub uncached_qps: f64,
    /// Questions/second through a fresh [`CachedEngine`] (misses included).
    pub cached_qps: f64,
    /// `cached_qps / uncached_qps`.
    pub speedup: f64,
}

/// The served-over-TCP variant: the same Zipfian trace replayed through
/// loopback `wtq-server` instances with the answer cache off and on.
#[derive(Debug, Clone, Serialize)]
pub struct ServedCachingCase {
    /// Zipf skew parameter s.
    pub skew: f64,
    /// Requests replayed per variant.
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Questions/second against a server with `cache_capacity = 0`.
    pub uncached_qps: f64,
    /// Questions/second against a server with the default cache.
    pub cached_qps: f64,
    /// `cached_qps / uncached_qps`.
    pub speedup: f64,
    /// Hit rate reported by the cached server's own stats endpoint.
    pub hit_rate: f64,
    /// Single-flight collapses reported by the cached server (waiters that
    /// reused a concurrent leader's execution instead of re-executing).
    pub collapsed_waiters: u64,
}

/// The full caching report (the `caching` section of `BENCH_exec.json`).
#[derive(Debug, Clone, Serialize)]
pub struct CachingReport {
    /// Rows of the benchmark table the questions run over.
    pub rows: usize,
    /// Size of the question pool the Zipf trace draws from.
    pub question_pool: usize,
    /// In-process replays, one per skew in [`CACHE_SKEWS`].
    pub skews: Vec<CachingSkewCase>,
    /// The served-over-TCP replay at the headline skew (s = 1.1).
    pub served: ServedCachingCase,
}

fn distinct(trace: &[usize]) -> usize {
    let mut seen: Vec<usize> = trace.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Replay `trace` over `questions` once through the bare engine and once
/// through a fresh cached engine, both warm-indexed.
fn skew_case(
    engine: &Arc<Engine>,
    table: &Table,
    questions: &[String],
    requests: usize,
    skew: f64,
    top_k: usize,
) -> CachingSkewCase {
    let trace = zipf_trace(questions.len(), requests, skew);

    let start = Instant::now();
    for &index in &trace {
        let explained = engine.explain_question(&questions[index], table, top_k);
        assert!(!explained.is_empty(), "bench question parses");
    }
    let uncached_qps = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let cached = CachedEngine::new(engine.clone(), CacheConfig::default());
    let start = Instant::now();
    for &index in &trace {
        let answer = cached.explain_question(&questions[index], table, top_k);
        assert!(!answer.is_empty(), "cached bench question parses");
    }
    let cached_qps = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let stats = cached.cache_stats();
    let lookups = (stats.hits + stats.misses).max(1);
    CachingSkewCase {
        skew,
        requests: trace.len(),
        distinct_questions: distinct(&trace),
        hit_rate: stats.hits as f64 / lookups as f64,
        uncached_qps,
        cached_qps,
        speedup: cached_qps / uncached_qps.max(1e-9),
    }
}

/// Replay the headline-skew trace against two loopback servers — answer
/// cache disabled vs default — through `connections` concurrent clients.
fn served_case(
    table: &Table,
    pool: usize,
    requests: usize,
    skew: f64,
    connections: usize,
) -> ServedCachingCase {
    let workload = question_workload(table, pool);
    let trace = zipf_trace(workload.len(), requests, skew);
    let replay: Vec<wtq_server::ExplainBody> =
        trace.iter().map(|&index| workload[index].clone()).collect();

    let mut qps = [0.0f64; 2];
    let mut hit_rate = 0.0;
    let mut collapsed_waiters = 0;
    for (slot, cache_capacity) in [(0, 0), (1, ServerConfig::default().cache_capacity)] {
        let config = ServerConfig {
            cache_capacity,
            ..ServerConfig::default()
        };
        let handle = loopback_server(table.clone(), config);
        let addr = handle.local_addr();
        // Warm the index cache so both variants measure steady-state serving.
        {
            let mut client = Client::connect(addr).expect("warm-up client connects");
            let first = &workload[0];
            let _ = client.explain(&first.question, &first.table, Some(1));
        }
        let start = Instant::now();
        let (latencies, rejected) = replay_workload(addr, &replay, connections);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(rejected, 0, "cache bench must not hit backpressure");
        qps[slot] = latencies.len() as f64 / elapsed.max(1e-9);
        if cache_capacity > 0 {
            let mut client = Client::connect(addr).expect("stats client connects");
            let stats = client.stats().expect("stats request succeeds");
            let cache = stats.engine.answer_cache;
            let lookups = (cache.hits + cache.misses).max(1);
            hit_rate = cache.hits as f64 / lookups as f64;
            collapsed_waiters = cache.collapsed_waiters;
        }
        handle.shutdown();
    }

    ServedCachingCase {
        skew,
        requests: replay.len(),
        connections,
        uncached_qps: qps[0],
        cached_qps: qps[1],
        speedup: qps[1] / qps[0].max(1e-9),
        hit_rate,
        collapsed_waiters,
    }
}

/// Run the full caching comparison: Zipf replays of `requests` questions
/// drawn from a `pool`-question workload over a `rows`-row table, at each
/// of [`CACHE_SKEWS`] in process plus the served variant at s = 1.1
/// through `connections` clients.
pub fn caching_report(
    rows: usize,
    pool: usize,
    requests: usize,
    connections: usize,
) -> CachingReport {
    let table = bench_table(rows);
    let questions: Vec<String> = question_workload(&table, pool)
        .into_iter()
        .map(|body| body.question)
        .collect();
    let top_k = 3;

    let engine = Arc::new(Engine::new());
    engine.index_for(&table); // warm once; both variants share the index

    let skews = CACHE_SKEWS
        .iter()
        .map(|&skew| skew_case(&engine, &table, &questions, requests, skew, top_k))
        .collect();
    let served = served_case(&table, pool, requests, 1.1, connections);

    CachingReport {
        rows,
        question_pool: questions.len(),
        skews,
        served,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let zipf = Zipf::new(16, 1.1);
        let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED);
        let mut counts = [0usize; 16];
        for _ in 0..4000 {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 16);
            counts[rank] += 1;
        }
        // Rank 0 dominates the tail and the ordering is roughly monotone.
        assert!(counts[0] > counts[8] && counts[0] > counts[15]);
        assert!(counts[0] as f64 > 4000.0 / 16.0 * 2.0, "{counts:?}");
    }

    #[test]
    fn zipf_trace_is_deterministic() {
        assert_eq!(zipf_trace(8, 32, 1.1), zipf_trace(8, 32, 1.1));
        assert_ne!(zipf_trace(8, 64, 0.8), zipf_trace(8, 64, 1.4));
    }

    #[test]
    fn caching_report_measures_all_skews() {
        // Tiny sizes: this runs in debug CI. The real numbers come from
        // `experiments --section cache` in release mode.
        let report = caching_report(48, 6, 18, 2);
        assert_eq!(report.question_pool, 6);
        assert_eq!(report.skews.len(), CACHE_SKEWS.len());
        for (case, skew) in report.skews.iter().zip(CACHE_SKEWS) {
            assert_eq!(case.skew, skew);
            assert_eq!(case.requests, 18);
            assert!(case.distinct_questions <= 6);
            assert!(case.hit_rate > 0.0 && case.hit_rate < 1.0, "{case:?}");
            assert!(case.uncached_qps > 0.0 && case.cached_qps > 0.0);
        }
        // A replay longer than the pool must repeat questions, so the
        // cached server observed real hits.
        assert!(report.served.hit_rate > 0.0, "{:?}", report.served);
        assert!(report.served.uncached_qps > 0.0 && report.served.cached_qps > 0.0);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("hit_rate") && json.contains("collapsed_waiters"));
    }
}
