//! Encode-path measurements: what the encode-once serving path buys on a
//! cache hit, micro and served.
//!
//! Shared by the `experiments` binary's `--section encode` (folded into
//! `BENCH_exec.json` as the `encode` section) and the `encode_regression`
//! gate. Two vantage points:
//!
//! * **micro** — assembling the framed response for an already-cached
//!   answer, interleaved: the splice path (envelope head written by the
//!   hand-rolled escaper into a reused buffer, cached candidate bytes and
//!   static tail appended) against the rebuild path (re-render the
//!   [`WireExplanation`] from the cached candidates, `serde_json` the
//!   envelope, frame it). Identical output bytes — asserted — so the
//!   ratio isolates pure encode work.
//! * **served** — the headline Zipfian replay (s = 1.1, the `cache`
//!   section's deployment shape) against two loopback servers that differ
//!   only in [`ServerConfig::encode_once`], so the qps delta is what the
//!   splice path is worth end to end with the cache hot.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use wtq_core::{CachedCandidates, Engine};
use wtq_server::wire::{self, encode_frame_into, spliced_frame_head};
use wtq_server::{
    Client, ResponseBody, ResponseEnvelope, ServerConfig, WireExplanation, PROTOCOL_VERSION,
};
use wtq_table::Table;

use crate::cache::zipf_trace;
use crate::exec::{bench_table, interleaved_us};
use crate::serve::{loopback_server, question_workload, replay_workload};

/// One question's hit-path encode timings, µs per assembled frame.
#[derive(Debug, Clone, Serialize)]
pub struct EncodeMicroCase {
    /// The question whose cached answer is being encoded.
    pub question: String,
    /// Cached candidates in the answer.
    pub candidates: usize,
    /// Assembled frame size, bytes.
    pub frame_bytes: usize,
    /// Rebuild path: re-render the explanation + `serde_json` + frame, µs.
    pub rebuild_us: f64,
    /// Splice path: escape the echoes, append cached bytes + tail, µs.
    pub splice_us: f64,
    /// `rebuild_us / splice_us`.
    pub speedup: f64,
}

/// The served A/B: one Zipfian replay against `encode_once` off vs on.
#[derive(Debug, Clone, Serialize)]
pub struct ServedEncodeCase {
    /// Zipf skew parameter s.
    pub skew: f64,
    /// Requests replayed per variant.
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Questions/second with `encode_once: false` (rebuild every hit).
    pub rebuild_qps: f64,
    /// Questions/second with `encode_once: true` (splice cached bytes).
    pub spliced_qps: f64,
    /// `spliced_qps / rebuild_qps`.
    pub speedup: f64,
    /// Answer-cache hit rate of the spliced variant (both variants replay
    /// the same trace, so it describes the rebuild variant equally).
    pub hit_rate: f64,
}

/// The full encode report (the `encode` section of `BENCH_exec.json`).
#[derive(Debug, Clone, Serialize)]
pub struct EncodeReport {
    /// Rows of the benchmark table the questions run over.
    pub rows: usize,
    /// Size of the question pool the served trace draws from.
    pub question_pool: usize,
    /// Per-question micro timings, hit-path encode only.
    pub micro: Vec<EncodeMicroCase>,
    /// Median of the micro speedups — the `encode_regression` gate's
    /// number.
    pub median_micro_speedup: f64,
    /// The served Zipfian A/B at s = 1.1.
    pub served: ServedEncodeCase,
}

/// Median of a non-empty sample set.
pub fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    samples[samples.len() / 2]
}

/// Time both hit-path encodings of one cached answer, interleaved, and
/// assert they produce the same bytes.
pub fn micro_case(engine: &Engine, table: &Table, question: &str, top_k: usize) -> EncodeMicroCase {
    let explained = engine.explain_question(question, table, top_k);
    assert!(!explained.is_empty(), "bench question parses");
    let cached = CachedCandidates::new(explained, table);
    let body = Arc::clone(cached.body());
    let table_name = table.name().to_string();
    let id = 42u64;

    // Reused buffers on both sides: the splice path gets the same pooled
    // reuse it enjoys in the server, and the rebuild path is not penalized
    // for allocation it could also amortize.
    let mut rebuild_buf: Vec<u8> = Vec::new();
    let mut splice_buf: Vec<u8> = Vec::new();
    let timings = interleaved_us(&mut [
        &mut || {
            let envelope = ResponseEnvelope {
                v: PROTOCOL_VERSION,
                id,
                body: ResponseBody::Explanation(WireExplanation::from_candidates(
                    question,
                    &table_name,
                    cached.candidates(),
                    table,
                )),
            };
            let json = serde_json::to_string(&envelope).expect("envelope serializes");
            rebuild_buf.clear();
            encode_frame_into(json.as_bytes(), &mut rebuild_buf).expect("frame fits");
        },
        &mut || {
            assert!(spliced_frame_head(
                &mut splice_buf,
                id,
                question,
                &table_name,
                body.len()
            ));
            splice_buf.extend_from_slice(&body);
            splice_buf.extend_from_slice(wire::SPLICE_ENVELOPE_TAIL);
        },
    ]);
    assert_eq!(
        rebuild_buf, splice_buf,
        "spliced and rebuilt frames must be byte-identical for {question:?}"
    );

    let (rebuild_us, splice_us) = (timings[0], timings[1]);
    EncodeMicroCase {
        question: question.to_string(),
        candidates: cached.candidates().len(),
        frame_bytes: splice_buf.len(),
        rebuild_us,
        splice_us,
        speedup: rebuild_us / splice_us.max(1e-9),
    }
}

/// Replay the headline-skew trace against two loopback servers differing
/// only in `encode_once`, both with the default answer cache.
fn served_case(
    table: &Table,
    pool: usize,
    requests: usize,
    skew: f64,
    connections: usize,
) -> ServedEncodeCase {
    let workload = question_workload(table, pool);
    let trace = zipf_trace(workload.len(), requests, skew);
    let replay: Vec<wtq_server::ExplainBody> =
        trace.iter().map(|&index| workload[index].clone()).collect();

    let mut qps = [0.0f64; 2];
    let mut hit_rate = 0.0;
    for (slot, encode_once) in [(0, false), (1, true)] {
        let config = ServerConfig {
            encode_once,
            ..ServerConfig::default()
        };
        let handle = loopback_server(table.clone(), config);
        let addr = handle.local_addr();
        // Warm the index cache so both variants measure steady-state serving.
        {
            let mut client = Client::connect(addr).expect("warm-up client connects");
            let first = &workload[0];
            let _ = client.explain(&first.question, &first.table, Some(1));
        }
        let start = Instant::now();
        let (latencies, rejected) = replay_workload(addr, &replay, connections);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(rejected, 0, "encode bench must not hit backpressure");
        qps[slot] = latencies.len() as f64 / elapsed.max(1e-9);
        if encode_once {
            let mut client = Client::connect(addr).expect("stats client connects");
            let stats = client.stats().expect("stats request succeeds");
            let cache = stats.engine.answer_cache;
            let lookups = (cache.hits + cache.misses).max(1);
            hit_rate = cache.hits as f64 / lookups as f64;
        }
        handle.shutdown();
    }

    ServedEncodeCase {
        skew,
        requests: replay.len(),
        connections,
        rebuild_qps: qps[0],
        spliced_qps: qps[1],
        speedup: qps[1] / qps[0].max(1e-9),
        hit_rate,
    }
}

/// Run the full encode comparison: micro hit-path timings over
/// `micro_questions` of the pool, plus the served Zipfian A/B at s = 1.1
/// (`requests` requests over `connections` clients).
pub fn encode_report(
    rows: usize,
    pool: usize,
    micro_questions: usize,
    requests: usize,
    connections: usize,
) -> EncodeReport {
    let table = bench_table(rows);
    let workload = question_workload(&table, pool);
    let engine = Engine::new();
    engine.index_for(&table); // warm: the micro loop measures encode, not indexing

    let micro: Vec<EncodeMicroCase> = workload
        .iter()
        .take(micro_questions)
        .map(|body| micro_case(&engine, &table, &body.question, 3))
        .collect();
    let median_micro_speedup = median(micro.iter().map(|case| case.speedup).collect());
    let served = served_case(&table, pool, requests, 1.1, connections);

    EncodeReport {
        rows,
        question_pool: workload.len(),
        micro,
        median_micro_speedup,
        served,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_case_measures_identical_bytes() {
        let table = bench_table(48);
        let engine = Engine::new();
        engine.index_for(&table);
        let workload = question_workload(&table, 3);
        let case = micro_case(&engine, &table, &workload[0].question, 2);
        assert!(case.candidates > 0);
        assert!(case.frame_bytes > 0);
        assert!(case.rebuild_us > 0.0 && case.splice_us > 0.0);
    }

    #[test]
    fn encode_report_covers_micro_and_served() {
        // Tiny sizes: this runs in debug CI. The real numbers come from
        // `experiments --section encode` in release mode.
        let report = encode_report(48, 6, 2, 18, 2);
        assert_eq!(report.micro.len(), 2);
        assert!(report.median_micro_speedup > 0.0);
        assert_eq!(report.served.skew, 1.1);
        assert!(report.served.rebuild_qps > 0.0 && report.served.spliced_qps > 0.0);
        assert!(report.served.hit_rate > 0.0, "{:?}", report.served);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("median_micro_speedup") && json.contains("spliced_qps"));
    }
}
