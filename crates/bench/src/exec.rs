//! Execution-layer micro-benchmarks: indexed engines vs the scan reference.
//!
//! Shared by the `exec_layer` Criterion bench group and the `experiments`
//! binary's `--exec-json` flag, which writes the report to `BENCH_exec.json`
//! so CI and the README can track the numbers. Workloads are
//! join/compare/superlative-heavy — the shapes that dominate candidate
//! generation — executed three ways:
//!
//! * **scan** — the pre-index reference semantics (`wtq_dcs::eval_reference`
//!   / `PlanMode::ForceScan`),
//! * **cold** — no pre-built state per call: a fresh DCS session over a
//!   shared [`TableIndex`], and for SQL a fresh [`wtq_sql::SqlEngine`] in
//!   `Auto` mode (cost-based: columnar kernels, no index build),
//! * **warm** — reused state across calls: a warm DCS session (adds the
//!   cross-candidate denotation cache) and an `Auto`-mode engine holding
//!   the shared index (the deployment configuration).
//!
//! The SQL section also shares one [`wtq_sql::PlannerCounters`] set across
//! the engines it constructs and snapshots it after its workloads, so the
//! report records which physical plans the cost model picked and how its
//! selectivity estimates tracked reality.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use wtq_core::{Engine, ExplainRequest};
use wtq_dcs::{AggregateOp, CompareOp, Evaluator, Formula, SuperlativeOp};
use wtq_parser::SemanticParser;
use wtq_sql::{PlanMode, SqlEngine};
use wtq_table::{Catalog, Table, TableIndex, Value};

use crate::EXPERIMENT_SEED;

/// One workload's timings, microseconds per execution.
#[derive(Debug, Clone, Serialize)]
pub struct ExecCase {
    /// Workload name (e.g. `join`, `compare`, `superlative`).
    pub name: String,
    /// Scan reference, µs per execution.
    pub scan_us: f64,
    /// Cold execution per call (fresh session / cold cost-based engine), µs.
    pub indexed_cold_us: f64,
    /// Warm execution (reused session / warm cost-based engine), µs.
    pub indexed_warm_us: f64,
    /// `scan_us / indexed_cold_us`.
    pub speedup_cold: f64,
    /// `scan_us / indexed_warm_us`.
    pub speedup_warm: f64,
}

/// Batch-serving throughput at one worker-pool size.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelCase {
    /// Worker threads in the pool.
    pub workers: usize,
    /// End-to-end explained questions per second through
    /// `Engine::explain_batch` (parse + utterance + SQL + highlights).
    pub qps: f64,
    /// `qps / qps_at_1_worker` — the scaling factor the ROADMAP's
    /// throughput goal tracks.
    pub speedup_vs_serial: f64,
}

/// The full execution-layer report (serialized to `BENCH_exec.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ExecReport {
    /// Rows of the synthetic benchmark table.
    pub rows: usize,
    /// Columns of the synthetic benchmark table.
    pub columns: usize,
    /// One-off index build cost, µs.
    pub index_build_us: f64,
    /// Lambda DCS operator workloads.
    pub dcs: Vec<ExecCase>,
    /// SQL engine workloads (cost-based planner vs scan path).
    pub sql: Vec<ExecCase>,
    /// Planner decisions taken while timing the SQL workloads (scan vs
    /// index vs columnar kernel, estimated vs actual matching rows).
    pub planner: wtq_sql::PlannerStats,
    /// End-to-end questions/second through lexicon → candidates → scoring.
    pub candidate_throughput_qps: f64,
    /// Mean per-question parse time backing the throughput number, µs.
    pub candidate_parse_us: f64,
    /// Denotation-cache hits/misses observed while generating one question's
    /// candidate pool.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Batch-serving throughput on the bench table at growing worker-pool
    /// sizes (1, 2, 4, 8) through the shared `Engine`.
    pub parallel: Vec<ParallelCase>,
    /// Loopback network-serving latency percentiles (`experiments
    /// --section serve`); absent when the serving section was not run.
    pub serving: Option<crate::serve::ServingReport>,
    /// Connection-scaling proof: thousands of idle sockets held open by
    /// the epoll reactor while a handful of active clients keep full
    /// throughput (`experiments --section serve`).
    pub idle_serving: Option<crate::serve::IdleConnectionsReport>,
    /// Answer-cache effectiveness on Zipfian question replays
    /// (`experiments --section cache`); absent when that section was not
    /// run.
    pub caching: Option<crate::cache::CachingReport>,
    /// Encode-once hit-path timings and the served `encode_once` A/B
    /// (`experiments --section encode`); absent when that section was not
    /// run.
    pub encode: Option<crate::encode::EncodeReport>,
    /// Parse-pipeline stage breakdown and interned-vs-string-keyed feature
    /// comparison (`experiments --section parse`); absent when that section
    /// was not run.
    pub parsing: Option<crate::parse::ParsingReport>,
    /// `/metrics`-scraped latency percentiles and tracing overhead
    /// (`experiments --section obs`); absent when that section was not run.
    pub observability: Option<crate::obs::ObsReport>,
}

/// Time `f` repeatedly within a small budget; mean µs per call.
pub(crate) fn time_us<F: FnMut()>(mut f: F) -> f64 {
    // One warm-up call calibrates the iteration count.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(100));
    let budget = Duration::from_millis(40);
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 20_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// Interleaved timing rounds per workload. Each round times every variant
/// back to back and the per-variant medians are reported, so machine-load
/// drift hits all variants alike instead of whichever was measured last.
const MEASURE_ROUNDS: usize = 5;

pub(crate) fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Median µs per call for each variant, sampled in interleaved rounds.
pub(crate) fn interleaved_us(fns: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut samples = vec![Vec::with_capacity(MEASURE_ROUNDS); fns.len()];
    for _ in 0..MEASURE_ROUNDS {
        for (slot, f) in samples.iter_mut().zip(fns.iter_mut()) {
            slot.push(time_us(&mut **f));
        }
    }
    samples.into_iter().map(median).collect()
}

/// The synthetic benchmark table: the first dataset domain scaled to `rows`.
pub fn bench_table(rows: usize) -> Table {
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED);
    let domain = &wtq_dataset::all_domains()[0];
    wtq_dataset::tablegen::generate_table_with_rows(domain, 0, rows, &mut rng)
}

/// The join/compare/superlative-heavy workloads over `table`, derived from
/// its index metadata (most frequent category value, median numeric value).
pub fn workloads(table: &Table, index: &TableIndex) -> Vec<(String, Formula)> {
    let text_col = *index.text_columns().first().expect("a text column");
    let num_col = *index.numeric_columns().first().expect("a numeric column");
    let text_name = table.column_name(text_col).to_string();
    let num_name = table.column_name(num_col).to_string();
    // Most frequent value of the text column (deterministic tie-break).
    let mut entries: Vec<(&Value, usize)> = index
        .column(text_col)
        .entries()
        .map(|(value, records)| (value, records.len()))
        .collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let frequent = entries[0].0.clone();
    // Median numeric value.
    let numeric = index.column(num_col).numeric_entries();
    let median = numeric[numeric.len() / 2].0;

    let join = Formula::Join {
        column: text_name.clone(),
        values: Box::new(Formula::Const(frequent.clone())),
    };
    let compare = Formula::CompareJoin {
        column: num_name.clone(),
        op: CompareOp::Geq,
        value: Box::new(Formula::Const(Value::Num(median))),
    };
    vec![
        ("join".to_string(), join.clone()),
        ("compare".to_string(), compare.clone()),
        (
            "superlative".to_string(),
            Formula::SuperlativeRecords {
                op: SuperlativeOp::Argmax,
                records: Box::new(Formula::AllRecords),
                column: num_name.clone(),
            },
        ),
        (
            "intersect".to_string(),
            Formula::Intersect(Box::new(join.clone()), Box::new(compare)),
        ),
        (
            "project_aggregate".to_string(),
            Formula::aggregate(
                AggregateOp::Max,
                Formula::ColumnValues {
                    column: num_name,
                    records: Box::new(join),
                },
            ),
        ),
    ]
}

/// Run the full execution-layer comparison on a `rows`-row table, measuring
/// candidate throughput over `questions` generated questions.
pub fn exec_report(rows: usize, questions: usize) -> ExecReport {
    let table = bench_table(rows);
    let build_start = Instant::now();
    let index = Arc::new(TableIndex::new(&table));
    let index_build_us = build_start.elapsed().as_secs_f64() * 1e6;

    let warm = Evaluator::with_index(&table, index.clone());
    let mut dcs = Vec::new();
    for (name, formula) in workloads(&table, &index) {
        let timings = interleaved_us(&mut [
            &mut || {
                let _ = wtq_dcs::eval_reference(&formula, &table);
            },
            &mut || {
                let session = Evaluator::with_index(&table, index.clone());
                let _ = session.eval(&formula);
            },
            &mut || {
                let _ = warm.eval(&formula);
            },
        ]);
        let (scan_us, indexed_cold_us, indexed_warm_us) = (timings[0], timings[1], timings[2]);
        dcs.push(ExecCase {
            name,
            scan_us,
            indexed_cold_us,
            indexed_warm_us,
            speedup_cold: scan_us / indexed_cold_us,
            speedup_warm: scan_us / indexed_warm_us,
        });
    }

    let mut sql = Vec::new();
    // One shared counter set across every engine this section constructs, so
    // the report isolates exactly the decisions taken by its own workloads.
    let planner_counters = Arc::new(wtq_sql::PlannerCounters::new());
    let warm_engine =
        SqlEngine::with_index(&table, &index).with_counters(Arc::clone(&planner_counters));
    for (name, formula) in workloads(&table, &index) {
        let Ok(query) = wtq_sql::translate(&formula) else {
            continue;
        };
        let timings = interleaved_us(&mut [
            &mut || {
                let _ = warm_engine.execute(&query, PlanMode::ForceScan);
            },
            &mut || {
                let _ = SqlEngine::new(&table)
                    .with_counters(Arc::clone(&planner_counters))
                    .execute(&query, PlanMode::Auto);
            },
            &mut || {
                let _ = warm_engine.execute(&query, PlanMode::Auto);
            },
        ]);
        let (scan_us, indexed_cold_us, indexed_warm_us) = (timings[0], timings[1], timings[2]);
        sql.push(ExecCase {
            name,
            scan_us,
            indexed_cold_us,
            indexed_warm_us,
            speedup_cold: scan_us / indexed_cold_us,
            speedup_warm: scan_us / indexed_warm_us,
        });
    }
    let planner = planner_counters.snapshot();

    // End-to-end candidate throughput on a regular-size generated table with
    // generated questions (lexicon → candidates → scoring).
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED + 1);
    let domain = &wtq_dataset::all_domains()[0];
    let qa_table = wtq_dataset::generate_table(domain, 1, &mut rng);
    let questions = wtq_dataset::generate_questions(&qa_table, questions, &mut rng);
    let parser = SemanticParser::with_prior();
    let candidate_parse_us = time_us(|| {
        for question in &questions {
            let _ = parser.parse(&question.question, &qa_table);
        }
    }) / questions.len().max(1) as f64;
    let candidate_throughput_qps = 1e6 / candidate_parse_us;

    // Cache effectiveness over one question's candidate pool.
    let session = Evaluator::new(&qa_table);
    if let Some(question) = questions.first() {
        let analysis = wtq_parser::analyze_question(&question.question, &qa_table);
        let _ = wtq_parser::generate_candidates_with(
            &analysis,
            &session,
            &wtq_parser::CandidateConfig::default(),
        );
    }
    let (cache_hits, cache_misses) = session.cache_stats();

    let parallel = parallel_cases(&table, (questions.len() * 2).max(8));

    ExecReport {
        rows,
        columns: table.num_columns(),
        index_build_us,
        dcs,
        sql,
        planner,
        candidate_throughput_qps,
        candidate_parse_us,
        cache_hits,
        cache_misses,
        parallel,
        serving: None,
        idle_serving: None,
        caching: None,
        encode: None,
        parsing: None,
        observability: None,
    }
}

/// Worker counts measured by the parallel section (and the
/// `batch_throughput` Criterion bench).
pub const PARALLEL_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Build the shared-`Engine` batch environment for `table`: a one-table
/// catalog, a warm engine and `num_questions` generated requests.
pub fn batch_environment(
    table: &Table,
    num_questions: usize,
) -> (Engine, Catalog, Vec<ExplainRequest>) {
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED + 2);
    let questions = wtq_dataset::generate_questions(table, num_questions, &mut rng);
    let requests: Vec<ExplainRequest> = questions
        .iter()
        .map(|question| ExplainRequest::new(question.question.clone(), table.name()))
        .collect();
    let catalog: Catalog = [table.clone()].into_iter().collect();
    let engine = Engine::new();
    // Warm the index cache so every worker count measures pure serving.
    engine.index_for(catalog.get(table.name()).expect("table inserted"));
    (engine, catalog, requests)
}

/// Measure `Engine::explain_batch` throughput over `num_questions` generated
/// questions on `table` at each of [`PARALLEL_WORKER_COUNTS`].
fn parallel_cases(table: &Table, num_questions: usize) -> Vec<ParallelCase> {
    let (engine, catalog, requests) = batch_environment(table, num_questions);
    let mut cases: Vec<ParallelCase> = Vec::new();
    for workers in PARALLEL_WORKER_COUNTS {
        // Best of two runs smooths scheduler noise without a full
        // Criterion-style sampling loop (this runs inside `experiments`).
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let start = Instant::now();
            let explanations = engine.explain_batch_with(workers, &catalog, &requests);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(explanations.len(), requests.len());
            best = best.min(elapsed);
        }
        let qps = requests.len() as f64 / best.max(1e-9);
        let speedup_vs_serial = cases.first().map(|c| qps / c.qps).unwrap_or(1.0);
        cases.push(ParallelCase {
            workers,
            qps,
            speedup_vs_serial,
        });
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_workloads_and_sane_numbers() {
        // Small table and question count: this runs in debug CI too.
        let report = exec_report(64, 2);
        assert_eq!(report.rows, 64);
        assert_eq!(report.dcs.len(), 5);
        assert!(!report.sql.is_empty());
        assert!(report.index_build_us > 0.0);
        assert!(report.candidate_throughput_qps > 0.0);
        for case in report.dcs.iter().chain(&report.sql) {
            assert!(case.scan_us > 0.0, "{}", case.name);
            assert!(case.indexed_cold_us > 0.0, "{}", case.name);
            assert!(case.indexed_warm_us > 0.0, "{}", case.name);
        }
        // The parallel section covers every worker count with sane numbers.
        assert_eq!(report.parallel.len(), PARALLEL_WORKER_COUNTS.len());
        for (case, workers) in report.parallel.iter().zip(PARALLEL_WORKER_COUNTS) {
            assert_eq!(case.workers, workers);
            assert!(case.qps > 0.0);
            assert!(case.speedup_vs_serial > 0.0);
        }
        assert!((report.parallel[0].speedup_vs_serial - 1.0).abs() < 1e-12);
        // The SQL section exercised the planner: every workload was planned
        // (never a row-scan fallback) on both the cold kernel path and the
        // warm index-or-kernel path.
        assert!(report.planner.kernel_chosen > 0);
        assert!(report.planner.index_chosen + report.planner.kernel_chosen > 0);
        assert!(report.planner.actual_rows > 0);
        // The report serializes.
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("candidate_throughput_qps"));
        assert!(json.contains("planner"));
        assert!(json.contains("parallel"));
    }
}
