//! # wtq-bench
//!
//! Shared experiment drivers used by both the Criterion benches and the
//! `experiments` binary. Every table and figure of the paper's evaluation
//! (§7) maps to one function here; the binary prints the paper-vs-measured
//! comparison and the benches time the underlying components.

pub mod cache;
pub mod encode;
pub mod exec;
pub mod obs;
pub mod parse;
pub mod serve;

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wtq_dataset::dataset::{Dataset, DatasetConfig};
use wtq_dataset::Split;
use wtq_parser::{generate_candidates, CandidateConfig, SemanticParser, TrainConfig, TrainExample};
use wtq_provenance::Highlights;
use wtq_study::deploy::{study_examples_from, StudyExample};
use wtq_study::{
    chi_square_2x2, collect_annotations, DeploymentExperiment, DeploymentResult, ExplanationMode,
    FeedbackExperiment, FeedbackResult, SimulatedUser, WorkTimeModel,
};
use wtq_table::Catalog;

/// Seed used by every experiment so reported numbers are reproducible.
pub const EXPERIMENT_SEED: u64 = 20190416;

/// A generated benchmark environment: dataset, catalog and split examples.
pub struct Environment {
    /// The synthetic dataset.
    pub dataset: Dataset,
    /// Catalog of its tables.
    pub catalog: Catalog,
    /// Held-out study examples (test split).
    pub test_examples: Vec<StudyExample>,
    /// Training-split study examples (for annotation collection).
    pub train_examples: Vec<StudyExample>,
}

/// Build the standard experiment environment.
pub fn environment(
    num_tables: usize,
    questions_per_table: usize,
    test_limit: usize,
) -> Environment {
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED);
    let dataset = Dataset::generate(
        &DatasetConfig {
            num_tables,
            questions_per_table,
            test_fraction: 0.25,
        },
        &mut rng,
    );
    let catalog = dataset.catalog();
    let test_examples = study_examples_from(&dataset, Split::Test, test_limit, &mut rng);
    let train_examples = study_examples_from(&dataset, Split::Train, test_limit * 2, &mut rng);
    Environment {
        dataset,
        catalog,
        test_examples,
        train_examples,
    }
}

/// Table 4: user-study success rate (questions, explanations shown, success).
pub struct Table4Result {
    /// Distinct questions shown.
    pub questions: usize,
    /// Candidate explanations shown in total.
    pub explanations: usize,
    /// Fraction of questions answered successfully (correct pick or correct
    /// None).
    pub success_rate: f64,
}

/// Run the Table 4 experiment.
pub fn table4(env: &Environment) -> Table4Result {
    let parser = SemanticParser::with_prior();
    let experiment = DeploymentExperiment::default();
    let result = experiment.run(
        &parser,
        &env.test_examples,
        &env.catalog,
        &SimulatedUser::average(),
        EXPERIMENT_SEED,
    );
    Table4Result {
        questions: result.questions,
        explanations: result.explanations_shown,
        success_rate: result.user_success_rate,
    }
}

/// Table 5: work time in minutes per 20-question session for the two
/// explanation modes `(with highlights, utterances only)`, as
/// `(avg, median, min, max)` tuples.
pub fn table5(env: &Environment, workers_per_group: usize) -> [(f64, f64, f64, f64); 2] {
    let parser = SemanticParser::with_prior();
    let model = WorkTimeModel::default();
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED + 5);
    // Utterance word counts of the top-7 candidates of 20 questions.
    let questions: Vec<Vec<usize>> = env
        .test_examples
        .iter()
        .take(20)
        .map(|example| {
            let table = env.catalog.get(&example.table).expect("table exists");
            parser
                .parse_top_k(&example.question, table, 7)
                .iter()
                .map(|c| wtq_explain::utter(&c.formula).split_whitespace().count())
                .collect()
        })
        .collect();
    let mut results = [(0.0, 0.0, 0.0, 0.0); 2];
    for (index, with_highlights) in [(0usize, true), (1usize, false)] {
        let sessions: Vec<f64> = (0..workers_per_group)
            .map(|_| model.session_minutes(&questions, with_highlights, &mut rng))
            .collect();
        let avg = wtq_study::metrics::mean(&sessions);
        let median = wtq_study::metrics::median(&sessions);
        let min = sessions.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sessions.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        results[index] = (avg, median, min, max);
    }
    results
}

/// Table 6: deployment correctness plus χ² significance of the user and
/// hybrid improvements over the parser.
pub struct Table6Result {
    /// The deployment result (parser / user / hybrid / bound correctness).
    pub deployment: DeploymentResult,
    /// χ² statistic and significance of users vs parser.
    pub user_vs_parser: (f64, bool),
    /// χ² statistic and significance of hybrid vs parser.
    pub hybrid_vs_parser: (f64, bool),
}

/// Run the Table 6 experiment.
pub fn table6(env: &Environment) -> Table6Result {
    let parser = SemanticParser::with_prior();
    let experiment = DeploymentExperiment::default();
    let deployment = experiment.run(
        &parser,
        &env.test_examples,
        &env.catalog,
        &SimulatedUser::average(),
        EXPERIMENT_SEED + 6,
    );
    let n = deployment.questions;
    let user_vs_parser = chi_square_2x2(
        deployment.user_correct_count,
        n,
        deployment.parser_correct_count,
        n,
    );
    let hybrid_vs_parser = chi_square_2x2(
        deployment.hybrid_correct_count,
        n,
        deployment.parser_correct_count,
        n,
    );
    Table6Result {
        deployment,
        user_vs_parser,
        hybrid_vs_parser,
    }
}

/// The §7.2 k-sweep: coverage of the correct query within the top-k.
pub fn k_sweep(env: &Environment, ks: &[usize]) -> Vec<(usize, f64)> {
    let parser = SemanticParser::with_prior();
    DeploymentExperiment::coverage_sweep(&parser, &env.test_examples, &env.catalog, ks)
}

/// Table 7: average per-question execution time (seconds) of candidate
/// generation, utterance generation and highlight generation.
pub struct Table7Result {
    /// Questions measured.
    pub questions: usize,
    /// Average seconds to generate candidates for a question.
    pub candidate_generation: f64,
    /// Average seconds to generate the top-k utterances.
    pub utterance_generation: f64,
    /// Average seconds to generate the top-k highlights.
    pub highlight_generation: f64,
}

/// Run the Table 7 measurement over the environment's test questions.
pub fn table7(env: &Environment, top_k: usize) -> Table7Result {
    let parser = SemanticParser::with_prior();
    let mut candidate_time = 0.0;
    let mut utterance_time = 0.0;
    let mut highlight_time = 0.0;
    let mut questions = 0usize;
    for example in &env.test_examples {
        let Some(table) = env.catalog.get(&example.table) else {
            continue;
        };
        questions += 1;
        let start = Instant::now();
        let candidates = parser.parse_top_k(&example.question, table, top_k);
        candidate_time += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let _utterances: Vec<String> = candidates
            .iter()
            .map(|c| wtq_explain::utter(&c.formula))
            .collect();
        utterance_time += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let _highlights: Vec<_> = candidates
            .iter()
            .filter_map(|c| Highlights::compute(&c.formula, table).ok())
            .collect();
        highlight_time += start.elapsed().as_secs_f64();
    }
    let n = questions.max(1) as f64;
    Table7Result {
        questions,
        candidate_generation: candidate_time / n,
        utterance_generation: utterance_time / n,
        highlight_generation: highlight_time / n,
    }
}

/// Table 9: feedback retraining at two training-set scales, with and without
/// annotations. Returns rows `(train_examples, annotations, correctness, mrr)`.
pub fn table9(env: &Environment, annotated_budget: usize, epochs: usize) -> Vec<FeedbackResult> {
    let parser = SemanticParser::with_prior();
    let user = SimulatedUser::average();
    let annotated_pool: Vec<StudyExample> = env
        .train_examples
        .iter()
        .take(annotated_budget)
        .cloned()
        .collect();
    let annotated = collect_annotations(
        &parser,
        &annotated_pool,
        &env.catalog,
        7,
        3,
        2,
        &user,
        EXPERIMENT_SEED + 9,
    );
    // Development set: the held-out test examples.
    let dev: Vec<(TrainExample, wtq_dcs::Formula)> = env
        .test_examples
        .iter()
        .map(|e| {
            (
                TrainExample::weak(e.question.clone(), e.table.clone(), e.answer.clone()),
                e.gold.clone(),
            )
        })
        .collect();
    let experiment = FeedbackExperiment {
        train_config: TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
        top_k: 7,
    };

    // Scenario 1: train on the annotated examples only, with vs without
    // annotations.
    let with_small = experiment.train_and_evaluate(&annotated, &dev, &env.catalog, true);
    let without_small = experiment.train_and_evaluate(&annotated, &dev, &env.catalog, false);

    // Scenario 2: the full training pool, with the annotated subset keeping
    // its annotations vs pure weak supervision.
    let full: Vec<(TrainExample, wtq_dcs::Formula)> = env
        .train_examples
        .iter()
        .map(|e| {
            let annotated_match = annotated
                .iter()
                .find(|(a, _)| a.question == e.question && a.table == e.table);
            let example = match annotated_match {
                Some((a, _)) => a.clone(),
                None => TrainExample::weak(e.question.clone(), e.table.clone(), e.answer.clone()),
            };
            (example, e.gold.clone())
        })
        .collect();
    let with_full = experiment.train_and_evaluate(&full, &dev, &env.catalog, true);
    let without_full = experiment.train_and_evaluate(&full, &dev, &env.catalog, false);

    vec![with_small, without_small, with_full, without_full]
}

/// The no-explanation control of Table 4's discussion: success rate when the
/// user only sees raw lambda DCS.
pub fn raw_formula_control(env: &Environment) -> f64 {
    let parser = SemanticParser::with_prior();
    let experiment = DeploymentExperiment::default();
    experiment
        .run(
            &parser,
            &env.test_examples,
            &env.catalog,
            &SimulatedUser::with_mode(ExplanationMode::RawFormulas),
            EXPERIMENT_SEED + 4,
        )
        .user_success_rate
}

/// Time one candidate-generation call (used by the Criterion benches).
pub fn bench_candidate_generation(env: &Environment) -> usize {
    let example = &env.test_examples[0];
    let table = env.catalog.get(&example.table).expect("table exists");
    let analysis = wtq_parser::analyze_question(&example.question, table);
    generate_candidates(&analysis, table, &CandidateConfig::default()).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> Environment {
        environment(8, 5, 20)
    }

    #[test]
    fn environment_has_disjoint_splits_and_enough_questions() {
        let env = tiny_env();
        assert!(env.test_examples.len() >= 8);
        assert!(env.train_examples.len() >= 8);
        assert!(env.dataset.tables.len() == 8);
    }

    #[test]
    fn table4_and_table6_report_consistent_shapes() {
        let env = tiny_env();
        let t4 = table4(&env);
        assert_eq!(t4.questions, env.test_examples.len());
        assert!(t4.explanations >= t4.questions);
        assert!(t4.success_rate > 0.4);

        let t6 = table6(&env);
        assert!(t6.deployment.hybrid_correctness >= t6.deployment.parser_correctness - 1e-9);
        assert!(t6.deployment.bound >= t6.deployment.hybrid_correctness - 1e-9);

        let control = raw_formula_control(&env);
        assert!(control < t4.success_rate);
    }

    #[test]
    fn table5_shows_the_highlight_saving() {
        let env = tiny_env();
        let [with, without] = table5(&env, 6);
        assert!(
            with.0 < without.0,
            "avg with highlights {} >= without {}",
            with.0,
            without.0
        );
        assert!(with.2 <= with.3);
    }

    #[test]
    fn table7_orders_utterances_fastest() {
        let env = tiny_env();
        let t7 = table7(&env, 7);
        assert_eq!(t7.questions, env.test_examples.len());
        assert!(t7.utterance_generation < t7.candidate_generation);
        assert!(t7.candidate_generation > 0.0);
        assert!(t7.highlight_generation > 0.0);
    }

    #[test]
    fn k_sweep_is_monotone() {
        let env = tiny_env();
        let sweep = k_sweep(&env, &[1, 7, 14]);
        assert!(sweep[1].1 >= sweep[0].1);
        assert!(sweep[2].1 >= sweep[1].1);
    }
}
