//! Regenerate every table and figure of the paper's evaluation (§7) on the
//! synthetic substrate and print a paper-vs-measured report.
//!
//! Usage:
//!
//! ```text
//! cargo run -p wtq-bench --bin experiments --release [-- --section <name>]
//! ```
//!
//! Sections: `table4`, `table5`, `table6`, `ksweep`, `table7`, `table9`,
//! `figures`, `gallery`, `operators`, `examples`, `exec`, `parse`,
//! `serve`, `cache`, `encode`, `obs`. With no argument every section is
//! produced.
//!
//! `--exec-json [path]` additionally writes the execution-layer report
//! (indexed vs scan timings, candidate throughput, cache statistics, and —
//! when the `parse` / `serve` / `cache` / `obs` sections ran — the
//! parse-stage breakdown under `parsing`, the loopback serving latency
//! percentiles under `serving`, the Zipfian answer-cache replay under
//! `caching` and the `/metrics`-scraped percentiles plus tracing overhead
//! under `observability`) as machine-readable JSON — `BENCH_exec.json` by
//! default.

use wtq_bench::{
    environment, k_sweep, raw_formula_control, table4, table5, table6, table7, table9,
};
use wtq_core::ExplanationPipeline;
use wtq_dcs::parse_formula;
use wtq_explain::{derivation, utter};
use wtq_provenance::{render, Highlights};
use wtq_sql::translate;
use wtq_table::samples;

fn wanted(section: &str) -> bool {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--section") {
        Some(index) => args.get(index + 1).map(|s| s == section).unwrap_or(true),
        None => true,
    }
}

/// The `--exec-json [path]` flag: `Some(path)` when JSON output is wanted.
fn exec_json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let index = args.iter().position(|a| a == "--exec-json")?;
    Some(
        args.get(index + 1)
            .filter(|next| !next.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_exec.json".to_string()),
    )
}

fn heading(title: &str) {
    println!("\n## {title}\n");
}

fn main() {
    println!("# Experiment report — Explaining Queries over Web Tables to Non-Experts");
    println!(
        "\nSynthetic substrate (see DESIGN.md); all numbers deterministic for the fixed seed."
    );

    // A moderately sized environment keeps the full run under a minute in
    // release mode while leaving enough test questions for stable numbers.
    let env = environment(20, 10, 80);
    println!(
        "\nEnvironment: {} tables, {} examples ({} test questions used).",
        env.dataset.tables.len(),
        env.dataset.examples.len(),
        env.test_examples.len()
    );

    if wanted("table4") {
        heading("Table 4 — user-study success rate");
        let t4 = table4(&env);
        let control = raw_formula_control(&env);
        println!("| metric | paper | measured |");
        println!("|---|---|---|");
        println!("| distinct questions | 405 | {} |", t4.questions);
        println!("| explanations shown | 2,835 | {} |", t4.explanations);
        println!("| success rate | 78.4% | {:.1}% |", t4.success_rate * 100.0);
        println!(
            "| success rate without explanations (raw lambda DCS) | \"failed\" | {:.1}% |",
            control * 100.0
        );
    }

    if wanted("table5") {
        heading("Table 5 — work time (minutes per 20-question session)");
        let [with, without] = table5(&env, 10);
        println!(
            "| method | paper avg | measured avg | paper median | measured median | min | max |"
        );
        println!("|---|---|---|---|---|---|---|");
        println!(
            "| utterances + highlights | 16.2 | {:.1} | 16.6 | {:.1} | {:.1} | {:.1} |",
            with.0, with.1, with.2, with.3
        );
        println!(
            "| utterances only | 24.7 | {:.1} | 20.7 | {:.1} | {:.1} | {:.1} |",
            without.0, without.1, without.2, without.3
        );
        println!(
            "\nMeasured saving: {:.0}% of average work time (paper: 34%).",
            (1.0 - with.0 / without.0) * 100.0
        );
    }

    if wanted("table6") {
        heading("Table 6 — correctness at deployment (top-7)");
        let t6 = table6(&env);
        let d = &t6.deployment;
        println!("| scenario | paper | measured |");
        println!("|---|---|---|");
        println!(
            "| parser (top-1) | 37.1% | {:.1}% |",
            d.parser_correctness * 100.0
        );
        println!("| users | 44.6% | {:.1}% |", d.user_correctness * 100.0);
        println!("| hybrid | 48.7% | {:.1}% |", d.hybrid_correctness * 100.0);
        println!("| bound (top-7) | 56.0% | {:.1}% |", d.bound * 100.0);
        println!("| MRR | — | {:.3} |", d.mrr);
        println!(
            "\nχ² users vs parser: {:.2} (significant at 0.01: {}); hybrid vs parser: {:.2} ({}).",
            t6.user_vs_parser.0, t6.user_vs_parser.1, t6.hybrid_vs_parser.0, t6.hybrid_vs_parser.1
        );
    }

    if wanted("ksweep") {
        heading("§7.2 — correctness bound as a function of k");
        println!("| k | measured bound |");
        println!("|---|---|");
        for (k, coverage) in k_sweep(&env, &[1, 3, 7, 14]) {
            println!("| {k} | {:.1}% |", coverage * 100.0);
        }
        println!(
            "\nPaper: moving from k = 7 to k = 14 recovered only ~5% of the remaining failures."
        );
    }

    if wanted("table7") {
        heading("Table 7 — average execution time per question (seconds)");
        let t7 = table7(&env, 7);
        println!("| stage | paper | measured |");
        println!("|---|---|---|");
        println!(
            "| candidate generation | 1.22 | {:.4} |",
            t7.candidate_generation
        );
        println!(
            "| utterance generation | 0.22 | {:.4} |",
            t7.utterance_generation
        );
        println!(
            "| highlight generation | 1.36 | {:.4} |",
            t7.highlight_generation
        );
        println!(
            "\nAbsolute times differ (different hardware and parser); the ordering —\nutterances an order of magnitude cheaper than candidate/highlight generation — is preserved."
        );
    }

    if wanted("table9") {
        heading("Table 9 — effect of user feedback on retraining");
        let rows = table9(&env, 60, 2);
        println!("| train ex. | annotations | correctness | MRR | paper analogue |");
        println!("|---|---|---|---|---|");
        let analogues = [
            "1,650 train / 1,650 annotations → 49.8% / 0.586",
            "1,650 train / 0 annotations → 41.8% / 0.499",
            "11,000 train / 1,650 annotations → 51.6% / 0.600",
            "11,000 train / 0 annotations → 49.5% / 0.570",
        ];
        for (row, analogue) in rows.iter().zip(analogues) {
            println!(
                "| {} | {} | {:.1}% | {:.3} | {} |",
                row.train_examples,
                row.annotations,
                row.correctness * 100.0,
                row.mrr,
                analogue
            );
        }
    }

    if wanted("figures") {
        heading("Figures 1, 3, 6, 8 — running examples");
        let pipeline = ExplanationPipeline::new();
        let olympics = samples::olympics();
        let question = "Greece held its last Olympics in what year?";
        println!("Figure 1 question: {question}");
        let explained = pipeline.explain_question(question, &olympics, 1);
        if let Some(top) = explained.first() {
            println!("top candidate : {}", top.formula);
            println!("utterance     : {}", top.utterance);
            println!("answer        : {}", top.answer);
            println!("{}", top.render_highlights(&olympics, false));
        }
        let figure1 = parse_formula("max(R[Year].Country.Greece)").expect("parses");
        println!(
            "Figure 3 derivation tree:\n{}",
            derivation(&figure1).render_tree()
        );
        let medals = samples::medals();
        let figure6 = parse_formula("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)").unwrap();
        let highlights = Highlights::compute(&figure6, &medals).unwrap();
        println!("Figure 6 — {}", utter(&figure6));
        println!("{}", render::render_text(&medals, &highlights));
    }

    if wanted("gallery") {
        heading("Figures 11–22 — operator highlight gallery");
        let cases: Vec<(&str, &str, wtq_table::Table)> = vec![
            ("Figure 11 simple join", "Name.Jule", samples::yachts()),
            ("Figure 12 comparison", "Games.(> 4)", samples::squad()),
            (
                "Figure 13 reverse join",
                "R[Year].City.Athens",
                samples::olympics(),
            ),
            (
                "Figure 14 previous",
                "R[City].Prev.City.London",
                samples::olympics(),
            ),
            (
                "Figure 15 next",
                "R[City].R[Prev].City.Athens",
                samples::olympics(),
            ),
            (
                "Figure 16 aggregation",
                "count(City.Athens)",
                samples::olympics(),
            ),
            (
                "Figure 17 difference (values)",
                "sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)",
                samples::medals(),
            ),
            (
                "Figure 18 difference (occurrences)",
                "sub(count(Town.Matsuyama), count(Town.Imabari))",
                samples::temples(),
            ),
            (
                "Figure 19 union",
                "R[City].(Country.China or Country.Greece)",
                samples::olympics(),
            ),
            (
                "Figure 20 intersection",
                "R[City].(Country.UK and Year.2012)",
                samples::olympics(),
            ),
            (
                "Figure 21 superlative (values)",
                "compare_max((London or Beijing), Year, City)",
                samples::olympics(),
            ),
            (
                "Figure 22 superlative (occurrences)",
                "most_common(R[Lake].Rows, Lake)",
                samples::shipwrecks(),
            ),
        ];
        for (name, formula_text, table) in cases {
            let formula = parse_formula(formula_text).expect("gallery formula parses");
            let highlights = Highlights::compute(&formula, &table).expect("evaluates");
            println!("### {name}\n");
            println!("utterance: {}\n", utter(&formula));
            println!("{}", render::render_text(&table, &highlights));
        }
        println!("{}", render::TEXT_LEGEND);
    }

    if wanted("operators") {
        heading("Table 10 — lambda DCS operators, SQL translation and provenance sizes");
        let table = samples::olympics();
        println!("| operator | lambda DCS | SQL | |P_O| / |P_E| / |P_C| |");
        println!("|---|---|---|---|");
        for (name, text) in [
            ("Column Records", "City.Athens"),
            ("Column Values", "R[Year].City.Athens"),
            ("Preceding Records", "R[Year].Prev.City.Athens"),
            ("Following Records", "R[Year].R[Prev].City.Athens"),
            ("Aggregation", "sum(R[Year].City.Athens)"),
            (
                "Difference of Values",
                "sub(R[Year].City.London, R[Year].City.Beijing)",
            ),
            (
                "Difference of Occurrences",
                "sub(count(City.Athens), count(City.London))",
            ),
            ("Union of Values", "(Country.China or Country.Greece)"),
            ("Intersection of Records", "(City.London and Country.UK)"),
            ("Records with Highest Value", "argmax(Rows, Year)"),
            ("Value in Last Record", "R[Year].last(City.Athens)"),
            (
                "Value with Most Appearances",
                "most_common((Athens or London), City)",
            ),
            (
                "Comparing Values",
                "compare_max((London or Beijing), Year, City)",
            ),
        ] {
            let formula = parse_formula(text).expect("operator formula parses");
            let sql = translate(&formula)
                .map(|q| q.to_sql())
                .unwrap_or_else(|_| "—".to_string());
            let chain = wtq_provenance::provenance(&formula, &table).expect("provenance");
            println!(
                "| {name} | `{text}` | `{sql}` | {} / {} / {} |",
                chain.output.len(),
                chain.execution.len(),
                chain.columns.len()
            );
        }
    }

    let json_path = exec_json_path();
    let mut exec_report = None;
    if wanted("exec") || json_path.is_some() {
        heading("Execution layer — indexed engines vs scan reference");
        let report = wtq_bench::exec::exec_report(2000, 12);
        println!(
            "{} rows × {} columns; index build: {:.0} µs\n",
            report.rows, report.columns, report.index_build_us
        );
        println!("| workload | scan µs | indexed µs | warm µs | speedup (cold) | speedup (warm) |");
        println!("|---|---|---|---|---|---|");
        for case in report.dcs.iter() {
            println!(
                "| dcs/{} | {:.1} | {:.1} | {:.1} | {:.1}× | {:.1}× |",
                case.name,
                case.scan_us,
                case.indexed_cold_us,
                case.indexed_warm_us,
                case.speedup_cold,
                case.speedup_warm
            );
        }
        for case in report.sql.iter() {
            println!(
                "| sql/{} | {:.1} | {:.1} | {:.1} | {:.1}× | {:.1}× |",
                case.name,
                case.scan_us,
                case.indexed_cold_us,
                case.indexed_warm_us,
                case.speedup_cold,
                case.speedup_warm
            );
        }
        println!(
            "\nPlanner decisions over the SQL workloads (Auto mode): \
             {} columnar-kernel / {} index / {} row-scan; \
             estimated {} vs actual {} matching rows.",
            report.planner.kernel_chosen,
            report.planner.index_chosen,
            report.planner.scan_chosen,
            report.planner.estimated_rows,
            report.planner.actual_rows
        );
        println!(
            "\nCandidate throughput: {:.0} questions/s ({:.0} µs/question); \
             denotation cache {} hits / {} misses over one pool.",
            report.candidate_throughput_qps,
            report.candidate_parse_us,
            report.cache_hits,
            report.cache_misses
        );
        println!(
            "\nBatch serving over a shared Engine ({}-row table, explain incl. highlights):\n",
            report.rows
        );
        println!("| workers | questions/s | speedup vs 1 worker |");
        println!("|---|---|---|");
        for case in report.parallel.iter() {
            println!(
                "| {} | {:.1} | {:.2}× |",
                case.workers, case.qps, case.speedup_vs_serial
            );
        }
        exec_report = Some(report);
    }

    if wanted("parse") {
        heading("Parsing layer — interned features vs string-keyed reference");
        let parsing = wtq_bench::parse::parsing_report(8);
        println!(
            "{} questions per operator workload, one warm evaluator session \
             per workload shared by both pipelines (interleaved medians):\n",
            parsing.questions_per_workload
        );
        println!("| workload | family | reference µs/q | interned µs/q | speedup |");
        println!("|---|---|---|---|---|");
        for case in parsing.cases.iter() {
            println!(
                "| {} | {} | {:.1} | {:.1} | {:.1}× |",
                case.name, case.family, case.reference_us, case.interned_us, case.speedup
            );
        }
        println!(
            "\nAggregate: {:.0} questions/s interned vs {:.0} questions/s \
             string-keyed ({:.1}×).",
            parsing.interned_qps, parsing.reference_qps, parsing.speedup
        );
        let stages = &parsing.stages;
        println!(
            "\nInterned-pipeline stage breakdown over {} parses (µs/question):\n",
            stages.questions
        );
        println!("| stage | µs/question | share |");
        println!("|---|---|---|");
        for (name, us) in [
            ("tokenize", stages.tokenize_us),
            ("lexicon", stages.lexicon_us),
            ("candidates", stages.candidates_us),
            ("eval", stages.eval_us),
            ("features", stages.features_us),
            ("score", stages.score_us),
        ] {
            println!(
                "| {name} | {:.1} | {:.1}% |",
                us,
                100.0 * us / stages.total_us.max(1e-9)
            );
        }
        if let Some(report) = exec_report.as_mut() {
            report.parsing = Some(parsing);
        }
    }

    if wanted("serve") {
        heading("Serving layer — loopback TCP server latency");
        let serving = wtq_bench::serve::serving_report(512, 24, 2);
        println!(
            "{} questions over {} connections against a {}-row table (framed \
             JSON protocol, default backpressure/admission config):\n",
            serving.questions, serving.connections, serving.rows
        );
        println!("| metric | value |");
        println!("|---|---|");
        println!("| throughput | {:.1} questions/s |", serving.qps);
        println!("| mean latency | {:.2} ms |", serving.mean_ms);
        println!("| p50 | {:.2} ms |", serving.p50_ms);
        println!("| p90 | {:.2} ms |", serving.p90_ms);
        println!("| p99 | {:.2} ms |", serving.p99_ms);
        println!("| max | {:.2} ms |", serving.max_ms);
        println!("| backpressure rejections | {} |", serving.rejected);
        println!(
            "| answer cache | {} hits / {} misses / {} collapsed |",
            serving.cache_hits, serving.cache_misses, serving.cache_collapsed_waiters
        );
        if let Some(report) = exec_report.as_mut() {
            report.serving = Some(serving);
        }

        heading("Serving layer — connection scaling (epoll reactor)");
        let idle = wtq_bench::serve::idle_connections_report(5000, 8, 24, 512);
        println!(
            "{} idle connections held open ({} requested; soft fd limit {}) \
             while {} active clients replay {} questions:\n",
            idle.idle_connections,
            idle.requested_idle,
            idle.nofile_soft_limit,
            idle.active_connections,
            idle.questions
        );
        println!("| metric | value |");
        println!("|---|---|");
        println!(
            "| server open-connections gauge | {} |",
            idle.server_open_connections
        );
        println!("| reactor threads | {} |", idle.reactor_threads);
        println!("| dispatch threads | {} |", idle.dispatch_threads);
        println!("| throughput | {:.1} questions/s |", idle.qps);
        println!("| p50 | {:.2} ms |", idle.p50_ms);
        println!("| p99 | {:.2} ms |", idle.p99_ms);
        if let Some(report) = exec_report.as_mut() {
            report.idle_serving = Some(idle);
        }
    }

    if wanted("cache") {
        heading("Caching layer — Zipfian replay through the answer cache");
        let caching = wtq_bench::cache::caching_report(512, 40, 240, 4);
        println!(
            "{} requests per skew drawn Zipf(s) from a {}-question pool over \
             a {}-row table; each trace replayed through the bare Engine and \
             a fresh CachedEngine (misses included):\n",
            caching.skews[0].requests, caching.question_pool, caching.rows
        );
        println!("| skew | distinct | hit rate | uncached q/s | cached q/s | speedup |");
        println!("|---|---|---|---|---|---|");
        for case in caching.skews.iter() {
            println!(
                "| {:.1} | {} | {:.1}% | {:.1} | {:.1} | {:.1}× |",
                case.skew,
                case.distinct_questions,
                case.hit_rate * 100.0,
                case.uncached_qps,
                case.cached_qps,
                case.speedup
            );
        }
        let served = &caching.served;
        println!(
            "\nServed over loopback TCP at s = {:.1} ({} requests, {} connections): \
             {:.1} q/s uncached vs {:.1} q/s cached ({:.1}×), hit rate {:.1}%, \
             {} single-flight collapses.",
            served.skew,
            served.requests,
            served.connections,
            served.uncached_qps,
            served.cached_qps,
            served.speedup,
            served.hit_rate * 100.0,
            served.collapsed_waiters
        );
        if let Some(report) = exec_report.as_mut() {
            report.caching = Some(caching);
        }
    }

    if wanted("encode") {
        heading("Encode-once serving — hit-path splice vs rebuild-and-serialize");
        let encode = wtq_bench::encode::encode_report(512, 40, 6, 240, 4);
        println!(
            "Hit-path frame assembly over a {}-row table (reused buffers on \
             both sides, byte-identical output asserted):\n",
            encode.rows
        );
        println!("| question | candidates | frame bytes | rebuild µs | splice µs | speedup |");
        println!("|---|---|---|---|---|---|");
        for case in encode.micro.iter() {
            println!(
                "| {} | {} | {} | {:.1} | {:.1} | {:.1}× |",
                case.question,
                case.candidates,
                case.frame_bytes,
                case.rebuild_us,
                case.splice_us,
                case.speedup
            );
        }
        let served = &encode.served;
        println!(
            "\nMedian micro speedup {:.1}×. Served over loopback TCP at \
             s = {:.1} ({} requests, {} connections, hit rate {:.1}%): \
             {:.1} q/s rebuilding every hit vs {:.1} q/s splicing cached \
             bytes ({:.2}×).",
            encode.median_micro_speedup,
            served.skew,
            served.requests,
            served.connections,
            served.hit_rate * 100.0,
            served.rebuild_qps,
            served.spliced_qps,
            served.speedup
        );
        if let Some(report) = exec_report.as_mut() {
            report.encode = Some(encode);
        }
    }

    if wanted("obs") {
        heading("Observability layer — /metrics percentiles and tracing overhead");
        let obs = wtq_bench::obs::obs_report(512, 48, 2, 7);
        println!(
            "{} requests over {} connections against a {}-row table, every \
             request traced; percentiles recovered from the /metrics scrape \
             (bucket upper-bound resolution):\n",
            obs.questions, obs.connections, obs.rows
        );
        println!("| metric | value |");
        println!("|---|---|");
        println!("| requests observed | {} |", obs.requests_observed);
        println!("| p50 | {:.2} ms |", obs.request_p50_ms);
        println!("| p90 | {:.2} ms |", obs.request_p90_ms);
        println!("| p99 | {:.2} ms |", obs.request_p99_ms);
        println!("| mean | {:.2} ms |", obs.request_mean_ms);
        println!("\nPer-stage breakdown (same scrape):\n");
        println!("| stage | observations | p50 ms | p99 ms | mean ms |");
        println!("|---|---|---|---|---|");
        for stage in obs.stages.iter() {
            println!(
                "| {} | {} | {:.3} | {:.3} | {:.3} |",
                stage.stage, stage.observations, stage.p50_ms, stage.p99_ms, stage.mean_ms
            );
        }
        println!(
            "\nTrace rings: {} traced (period {}), {} recent / {} slowest \
             held at scrape time.",
            obs.traces_sampled, obs.trace_sample_period, obs.recent_traces, obs.slowest_traces
        );
        println!(
            "\nTracing overhead (default sampling vs disabled, {} interleaved \
             rounds × {} requests): {:.1} q/s sampled vs {:.1} q/s disabled \
             — ratio {:.3}.",
            obs.overhead.rounds,
            obs.overhead.questions_per_round,
            obs.overhead.qps_sampled,
            obs.overhead.qps_disabled,
            obs.overhead.ratio
        );
        if let Some(report) = exec_report.as_mut() {
            report.observability = Some(obs);
        }
    }

    if let (Some(path), Some(report)) = (&json_path, &exec_report) {
        let json = serde_json::to_string_pretty(report).expect("report serializes");
        std::fs::write(path, json).expect("write exec report");
        println!("\nWrote {path}.");
    }

    if wanted("examples") {
        heading("Table 1 / Table 8 — sample generated questions per operator family");
        for example in env.dataset.examples.iter().take(14) {
            println!(
                "- [{}] {} → `{}`",
                example.family.name(),
                example.question,
                example.gold_formula
            );
        }
    }

    println!("\n(done)");
}
