//! Boot a `wtq-server` over the sample tables (plus optional generated
//! ones) and serve until killed.
//!
//! ```text
//! cargo run -p wtq-bench --bin serve --release [-- --addr 127.0.0.1:7878]
//!     [--rows N]          # also register an N-row generated benchmark table
//!     [--max-in-flight N] [--per-table-tokens N]
//! ```
//!
//! Talk to it with the framed client (`wtq_server::Client`) or plain HTTP:
//!
//! ```text
//! curl http://127.0.0.1:7878/tables
//! curl http://127.0.0.1:7878/stats
//! curl -d '{"question": "Which city hosted in 2008?", "table": "olympics", "top_k": null}' \
//!      http://127.0.0.1:7878/explain
//! ```

use std::sync::Arc;

use wtq_core::Engine;
use wtq_server::{Server, ServerConfig};
use wtq_table::{samples, Catalog};

/// `--flag value` lookup over the raw argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|arg| arg == name)
        .and_then(|index| args.get(index + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());

    let mut config = ServerConfig::default();
    if let Some(max_in_flight) = flag(&args, "--max-in-flight").and_then(|v| v.parse().ok()) {
        config.max_in_flight = max_in_flight;
    }
    if let Some(tokens) = flag(&args, "--per-table-tokens").and_then(|v| v.parse().ok()) {
        config.per_table_tokens = tokens;
    }

    let mut tables = samples::all_samples();
    if let Some(rows) = flag(&args, "--rows").and_then(|v| v.parse().ok()) {
        tables.push(wtq_bench::exec::bench_table(rows));
    }
    let catalog: Arc<Catalog> = Arc::new(tables.into_iter().collect());
    let engine = Arc::new(Engine::new());

    let handle = Server::bind(&addr, engine, catalog.clone(), config.clone())
        .unwrap_or_else(|err| panic!("cannot bind {addr}: {err}"));
    println!("wtq-server listening on {}", handle.local_addr());
    println!(
        "  in-flight bound: {}, per-table tokens: {}",
        config.max_in_flight, config.per_table_tokens
    );
    println!("  tables:");
    for summary in catalog.summaries() {
        println!(
            "    {} ({} rows × {} columns)",
            summary.name,
            summary.records,
            summary.columns.len()
        );
    }
    println!("serving until killed (ctrl-c) …");
    handle.wait();
}
