//! Observability-layer measurements: latency percentiles recovered from a
//! `/metrics` scrape and the throughput cost of request tracing.
//!
//! Shared by the `experiments` binary's `--section obs`, which folds the
//! report into `BENCH_exec.json` as the `observability` section, and the
//! `obs_overhead` regression gate, which asserts that tracing at the
//! default sampling rate keeps at least 95% of the untraced throughput.

use std::time::Instant;

use serde::Serialize;

use wtq_server::{Client, ServerConfig};

use crate::exec::{bench_table, median};
use crate::serve::{loopback_server, question_workload, replay_workload};

/// One histogram recovered from Prometheus text exposition: cumulative
/// `(le_seconds, count)` buckets plus the `_count` / `_sum` series.
#[derive(Debug, Clone)]
pub struct ScrapedHistogram {
    /// Total observations (`_count`).
    pub count: u64,
    /// Sum of observed values in seconds (`_sum`).
    pub sum_seconds: f64,
    /// Cumulative buckets `(upper bound in seconds, observations ≤ bound)`,
    /// ascending; the `+Inf` bucket is kept with an infinite bound.
    pub buckets: Vec<(f64, u64)>,
}

impl ScrapedHistogram {
    /// The `q`-quantile in milliseconds, resolved to the upper bound of the
    /// bucket holding the rank (the same resolution a Prometheus
    /// `histogram_quantile` query has). `0` when empty.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        for &(le, cumulative) in &self.buckets {
            if le.is_finite() && cumulative >= rank {
                return le * 1e3;
            }
        }
        // Only the +Inf bucket holds the rank; the mean is the best finite
        // stand-in the scrape offers.
        self.mean_ms()
    }

    /// Mean observation in milliseconds (`0` when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds * 1e3 / self.count as f64
        }
    }
}

/// Parse one histogram family out of Prometheus `text`, keeping only the
/// series whose label set contains `label` (e.g. `("stage", "eval")`) when
/// one is given. Returns `None` when the family (or its `_count`/`_sum`
/// series) is absent — a scrape regression, not an empty histogram.
pub fn scrape_histogram(
    text: &str,
    family: &str,
    label: Option<(&str, &str)>,
) -> Option<ScrapedHistogram> {
    let bucket_series = format!("{family}_bucket");
    let count_series = format!("{family}_count");
    let sum_series = format!("{family}_sum");
    let wanted = label.map(|(key, value)| format!("{key}=\"{value}\""));
    let matches = |labels: &str| wanted.as_deref().is_none_or(|pair| labels.contains(pair));

    let mut buckets: Vec<(f64, u64)> = Vec::new();
    let mut count = None;
    let mut sum = None;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let (name, labels) = match series.find('{') {
            Some(brace) => (&series[..brace], &series[brace..]),
            None => (series, ""),
        };
        if name == bucket_series && matches(labels) {
            let le = labels
                .split_once("le=\"")
                .and_then(|(_, rest)| rest.split_once('"'))
                .map(|(le, _)| le)?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            buckets.push((bound, value.parse().ok()?));
        } else if name == count_series && matches(labels) {
            count = value.parse::<u64>().ok();
        } else if name == sum_series && matches(labels) {
            sum = value.parse::<f64>().ok();
        }
    }
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite-or-inf bounds"));
    Some(ScrapedHistogram {
        count: count?,
        sum_seconds: sum?,
        buckets,
    })
}

/// Latency percentiles of one request stage, scraped from
/// `wtq_request_stage_duration_seconds{stage="…"}`.
#[derive(Debug, Clone, Serialize)]
pub struct StageLatency {
    /// Stage label (`decode`, `queue_wait`, `cache_probe`,
    /// `admission_wait`, `eval`, `encode`).
    pub stage: String,
    /// Observations recorded for the stage.
    pub observations: u64,
    /// Median stage latency, ms (bucket upper-bound resolution).
    pub p50_ms: f64,
    /// 99th-percentile stage latency, ms.
    pub p99_ms: f64,
    /// Mean stage latency, ms (exact, from `_sum`/`_count`).
    pub mean_ms: f64,
}

/// Throughput cost of request tracing: interleaved loopback runs against a
/// server tracing at the default sampling rate and one with tracing
/// disabled, reported as median questions/second each.
#[derive(Debug, Clone, Serialize)]
pub struct TracingOverhead {
    /// Interleaved measurement rounds per variant.
    pub rounds: usize,
    /// Requests replayed per round.
    pub questions_per_round: usize,
    /// Median questions/second with `trace_sample_rate: 0.0`.
    pub qps_disabled: f64,
    /// Median questions/second at the default sampling rate.
    pub qps_sampled: f64,
    /// `qps_sampled / qps_disabled` — the regression gate asserts ≥ 0.95.
    pub ratio: f64,
}

/// The observability section of `BENCH_exec.json`: end-to-end and per-stage
/// latency percentiles recovered from a `/metrics` scrape, the trace-ring
/// population, and the measured tracing overhead.
#[derive(Debug, Clone, Serialize)]
pub struct ObsReport {
    /// Rows of the served benchmark table.
    pub rows: usize,
    /// Requests replayed before the scrape.
    pub questions: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// `wtq_request_duration_seconds_count` at scrape time.
    pub requests_observed: u64,
    /// Median request latency from the scraped histogram, ms.
    pub request_p50_ms: f64,
    /// 90th-percentile request latency, ms.
    pub request_p90_ms: f64,
    /// 99th-percentile request latency, ms.
    pub request_p99_ms: f64,
    /// Mean request latency, ms (exact, from `_sum`/`_count`).
    pub request_mean_ms: f64,
    /// Per-stage percentiles for every stage with observations.
    pub stages: Vec<StageLatency>,
    /// Trace sampling period of the scraped server (1 = every request).
    pub trace_sample_period: u64,
    /// Requests traced during the run.
    pub traces_sampled: u64,
    /// Traces in the recent ring at scrape time.
    pub recent_traces: usize,
    /// Traces in the slowest ring at scrape time.
    pub slowest_traces: usize,
    /// Tracing cost at the default sampling rate vs disabled.
    pub overhead: TracingOverhead,
}

/// The stage labels the server records, in request order.
pub const STAGES: [&str; 6] = [
    "decode",
    "queue_wait",
    "cache_probe",
    "admission_wait",
    "eval",
    "encode",
];

/// Measure the throughput cost of tracing: two loopback servers over the
/// same `rows`-row table — one tracing at the default sampling rate, one
/// with tracing disabled — each replaying the same `questions`-request
/// workload `rounds` times in interleaved order. Medians per variant, so
/// machine-load drift hits both alike.
pub fn tracing_overhead(
    rows: usize,
    questions: usize,
    connections: usize,
    rounds: usize,
) -> TracingOverhead {
    let table = bench_table(rows);
    let workload = question_workload(&table, questions);
    let sampled = loopback_server(table.clone(), ServerConfig::default());
    let disabled = loopback_server(
        table,
        ServerConfig {
            trace_sample_rate: 0.0,
            ..ServerConfig::default()
        },
    );

    // Warm both index caches so the rounds measure serving, not the one-off
    // index build.
    for handle in [&sampled, &disabled] {
        let mut client = Client::connect(handle.local_addr()).expect("warm-up client connects");
        let first = workload.first().expect("non-empty workload");
        let _ = client.explain(&first.question, &first.table, Some(1));
    }

    let run = |addr| {
        let started = Instant::now();
        let (latencies, _rejected) = replay_workload(addr, &workload, connections);
        latencies.len() as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    let rounds = rounds.max(1);
    let mut sampled_qps = Vec::with_capacity(rounds);
    let mut disabled_qps = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        sampled_qps.push(run(sampled.local_addr()));
        disabled_qps.push(run(disabled.local_addr()));
    }
    sampled.shutdown();
    disabled.shutdown();

    let qps_sampled = median(sampled_qps);
    let qps_disabled = median(disabled_qps);
    TracingOverhead {
        rounds,
        questions_per_round: workload.len(),
        qps_disabled,
        qps_sampled,
        ratio: qps_sampled / qps_disabled.max(1e-9),
    }
}

/// Run the observability measurement: replay a workload against a loopback
/// server tracing every request, scrape `/metrics` and the trace rings, and
/// measure the tracing overhead at the default sampling rate.
pub fn obs_report(rows: usize, questions: usize, connections: usize, rounds: usize) -> ObsReport {
    let overhead = tracing_overhead(rows, questions, connections, rounds);

    // The scrape server traces every request so the report's ring counts
    // show a populated ring, not a sampling artifact; histograms are
    // recorded unconditionally either way.
    let table = bench_table(rows);
    let workload = question_workload(&table, questions);
    let handle = loopback_server(
        table,
        ServerConfig {
            trace_sample_rate: 1.0,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    {
        let mut client = Client::connect(addr).expect("warm-up client connects");
        let first = workload.first().expect("non-empty workload");
        let _ = client.explain(&first.question, &first.table, Some(1));
    }
    let connections = connections.clamp(1, workload.len());
    let (_latencies, _rejected) = replay_workload(addr, &workload, connections);

    let mut client = Client::connect(addr).expect("scrape client connects");
    let text = client.metrics().expect("metrics scrape succeeds");
    let traces = client.trace_recent().expect("trace snapshot succeeds");
    handle.shutdown();

    let request = scrape_histogram(&text, "wtq_request_duration_seconds", None)
        .expect("request-duration histogram present in scrape");
    let stages: Vec<StageLatency> = STAGES
        .iter()
        .filter_map(|stage| {
            let scraped = scrape_histogram(
                &text,
                "wtq_request_stage_duration_seconds",
                Some(("stage", stage)),
            )?;
            (scraped.count > 0).then(|| StageLatency {
                stage: (*stage).to_string(),
                observations: scraped.count,
                p50_ms: scraped.percentile_ms(0.50),
                p99_ms: scraped.percentile_ms(0.99),
                mean_ms: scraped.mean_ms(),
            })
        })
        .collect();

    ObsReport {
        rows,
        questions: workload.len(),
        connections,
        requests_observed: request.count,
        request_p50_ms: request.percentile_ms(0.50),
        request_p90_ms: request.percentile_ms(0.90),
        request_p99_ms: request.percentile_ms(0.99),
        request_mean_ms: request.mean_ms(),
        stages,
        trace_sample_period: traces.sample_period,
        traces_sampled: traces.sampled,
        recent_traces: traces.recent.len(),
        slowest_traces: traces.slowest.len(),
        overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP wtq_request_duration_seconds End-to-end request latency.
# TYPE wtq_request_duration_seconds histogram
wtq_request_duration_seconds_bucket{le=\"0.001\"} 6
wtq_request_duration_seconds_bucket{le=\"0.004\"} 9
wtq_request_duration_seconds_bucket{le=\"+Inf\"} 10
wtq_request_duration_seconds_sum 0.05
wtq_request_duration_seconds_count 10
wtq_request_stage_duration_seconds_bucket{stage=\"eval\",le=\"0.002\"} 4
wtq_request_stage_duration_seconds_bucket{stage=\"eval\",le=\"+Inf\"} 4
wtq_request_stage_duration_seconds_sum{stage=\"eval\"} 0.004
wtq_request_stage_duration_seconds_count{stage=\"eval\"} 4
wtq_request_stage_duration_seconds_bucket{stage=\"decode\",le=\"+Inf\"} 9
wtq_request_stage_duration_seconds_sum{stage=\"decode\"} 0.0009
wtq_request_stage_duration_seconds_count{stage=\"decode\"} 9
";

    #[test]
    fn scrape_recovers_buckets_and_percentiles() {
        let scraped =
            scrape_histogram(SAMPLE, "wtq_request_duration_seconds", None).expect("family present");
        assert_eq!(scraped.count, 10);
        assert!((scraped.sum_seconds - 0.05).abs() < 1e-12);
        assert_eq!(scraped.buckets.len(), 3);
        // Rank 5 of 10 lands in the first bucket; rank 9 in the second.
        assert!((scraped.percentile_ms(0.50) - 1.0).abs() < 1e-9);
        assert!((scraped.percentile_ms(0.90) - 4.0).abs() < 1e-9);
        // Rank 10 only fits the +Inf bucket: the mean stands in.
        assert!((scraped.percentile_ms(0.99) - 5.0).abs() < 1e-9);
        assert!((scraped.mean_ms() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scrape_filters_by_label() {
        let eval = scrape_histogram(
            SAMPLE,
            "wtq_request_stage_duration_seconds",
            Some(("stage", "eval")),
        )
        .expect("eval series present");
        assert_eq!(eval.count, 4);
        let decode = scrape_histogram(
            SAMPLE,
            "wtq_request_stage_duration_seconds",
            Some(("stage", "decode")),
        )
        .expect("decode series present");
        assert_eq!(decode.count, 9);
        assert!(scrape_histogram(SAMPLE, "wtq_missing_seconds", None).is_none());
    }

    #[test]
    fn obs_report_measures_a_small_loopback_run() {
        // Small enough for debug-mode CI; the real numbers come from
        // `experiments --section obs` in release mode.
        let report = obs_report(48, 4, 2, 1);
        // Warm-up + replay all land in the request-duration histogram; the
        // scrape itself renders before its own observation completes.
        assert_eq!(report.requests_observed, 5);
        assert!(report.request_p50_ms > 0.0);
        assert!(report.request_p50_ms <= report.request_p90_ms);
        assert!(report.request_p90_ms <= report.request_p99_ms);
        let eval = report
            .stages
            .iter()
            .find(|stage| stage.stage == "eval")
            .expect("eval stage observed");
        assert!(eval.observations >= report.questions as u64);
        let decode = report
            .stages
            .iter()
            .find(|stage| stage.stage == "decode")
            .expect("decode stage observed");
        // Decode/queue-wait are observed before dispatch, so the metrics
        // request itself is already in its own scrape: 6, not 5.
        assert_eq!(decode.observations, 6);
        // Every request was traced (sample rate 1.0 on the scrape server).
        assert_eq!(report.trace_sample_period, 1);
        assert!(report.traces_sampled >= 5);
        assert!(report.recent_traces >= 5);
        assert!(report.slowest_traces >= 5);
        assert!(report.overhead.qps_disabled > 0.0);
        assert!(report.overhead.qps_sampled > 0.0);
        assert!(report.overhead.ratio > 0.0);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("request_p99_ms"));
        assert!(json.contains("overhead"));
    }
}
