//! Parse-pipeline micro-benchmarks: the interned feature pipeline vs the
//! string-keyed reference.
//!
//! Shared by the `experiments` binary's `parse` section (which embeds the
//! report under `parsing` in `BENCH_exec.json`) and the
//! `parse_regression` CI gate. Each of the five operator workloads —
//! named after the execution-layer workloads they exercise — parses a
//! batch of generated questions of one [`QuestionFamily`] end to end
//! (lexicon → candidates → features → scoring), timed two ways in
//! interleaved rounds:
//!
//! * **reference** — the string-keyed pipeline
//!   (`wtq_parser::reference::parse_in_session_reference`), feature maps
//!   keyed by owned `String`s, the executable pre-interning semantics,
//! * **interned** — the production pipeline
//!   (`SemanticParser::parse_in_session_with`): `FeatureId` symbol table,
//!   sorted sparse vectors, dense weights and a reused [`ScratchSpace`].
//!
//! Both run over the same warm evaluator session, so the comparison
//! isolates the feature representation. The report also snapshots the
//! [`wtq_parser::ParseStats`] stage counters accumulated by the interned
//! runs — the tokenize/lexicon/candidates/eval/features/score breakdown.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use wtq_dataset::questions::{generate_for_family, QuestionFamily};
use wtq_dcs::Evaluator;
use wtq_parser::reference::{parse_in_session_reference, ReferenceModel};
use wtq_parser::{ParseStats, ScratchSpace, SemanticParser};
use wtq_table::Table;

use crate::exec::interleaved_us;
use crate::EXPERIMENT_SEED;

/// The five parse workloads, named after the execution-layer workload each
/// question family's gold formula exercises.
pub fn parse_workloads() -> Vec<(&'static str, QuestionFamily)> {
    vec![
        ("join", QuestionFamily::Lookup),
        ("compare", QuestionFamily::ComparisonCount),
        ("superlative", QuestionFamily::SuperlativeLookup),
        ("intersect", QuestionFamily::IntersectionCount),
        ("project_aggregate", QuestionFamily::ExtremeValue),
    ]
}

/// The table every parse workload runs against (a regular generated table,
/// matching the candidate-throughput measurement in [`crate::exec`]).
pub fn parse_table() -> Table {
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED + 3);
    let domain = &wtq_dataset::all_domains()[0];
    wtq_dataset::generate_table(domain, 1, &mut rng)
}

/// Up to `count` distinct questions of `family` about `table`.
pub fn family_questions(
    table: &Table,
    family: QuestionFamily,
    count: usize,
    seed: u64,
) -> Vec<String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out: Vec<String> = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 40 {
        attempts += 1;
        let Some(generated) = generate_for_family(table, family, &mut rng) else {
            continue;
        };
        if !out.contains(&generated.question) {
            out.push(generated.question);
        }
    }
    out
}

/// One workload's timings, microseconds per question.
#[derive(Debug, Clone, Serialize)]
pub struct ParseCase {
    /// Workload name (mirrors the execution-layer workload names).
    pub name: String,
    /// The question family parsed.
    pub family: String,
    /// Questions in the batch.
    pub questions: usize,
    /// String-keyed reference pipeline, µs per question.
    pub reference_us: f64,
    /// Interned pipeline, µs per question.
    pub interned_us: f64,
    /// `reference_us / interned_us`.
    pub speedup: f64,
}

/// Per-question mean of each parse stage, derived from the process-wide
/// [`ParseStats`] counters accumulated while the interned variant ran.
#[derive(Debug, Clone, Serialize)]
pub struct StageBreakdown {
    /// Questions the counters cover.
    pub questions: u64,
    /// Normalization + tokenization, µs per question.
    pub tokenize_us: f64,
    /// Entity linking, µs per question.
    pub lexicon_us: f64,
    /// Candidate composition (excluding execution), µs per question.
    pub candidates_us: f64,
    /// Formula execution during candidate generation, µs per question.
    pub eval_us: f64,
    /// Feature extraction, µs per question.
    pub features_us: f64,
    /// Scoring + ranking, µs per question.
    pub score_us: f64,
    /// Sum of all spans, µs per question.
    pub total_us: f64,
}

impl StageBreakdown {
    /// Per-question means of a counter snapshot.
    pub fn from_stats(stats: &ParseStats) -> Self {
        let n = stats.questions.max(1) as f64;
        let us = |ns: u64| ns as f64 / n / 1e3;
        StageBreakdown {
            questions: stats.questions,
            tokenize_us: us(stats.tokenize_ns),
            lexicon_us: us(stats.lexicon_ns),
            candidates_us: us(stats.candidates_ns),
            eval_us: us(stats.eval_ns),
            features_us: us(stats.features_ns),
            score_us: us(stats.score_ns),
            total_us: us(stats.total_ns()),
        }
    }
}

/// The parse-section report (embedded under `parsing` in `BENCH_exec.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ParsingReport {
    /// Questions per workload batch.
    pub questions_per_workload: usize,
    /// The five per-workload comparisons.
    pub cases: Vec<ParseCase>,
    /// Aggregate interned questions/second across all workloads.
    pub interned_qps: f64,
    /// Aggregate string-keyed reference questions/second.
    pub reference_qps: f64,
    /// `interned_qps / reference_qps`.
    pub speedup: f64,
    /// Stage breakdown of the interned pipeline over the measured parses.
    pub stages: StageBreakdown,
}

/// Run the interned-vs-reference parse comparison, `questions_per_workload`
/// generated questions per family.
pub fn parsing_report(questions_per_workload: usize) -> ParsingReport {
    let table = parse_table();
    let parser = SemanticParser::with_prior();
    let reference = ReferenceModel::from_model(&parser.model);

    let mut cases = Vec::new();
    let mut interned_total_us = 0.0;
    let mut reference_total_us = 0.0;
    let mut total_questions = 0usize;
    wtq_parser::reset_parse_stats();
    for (name, family) in parse_workloads() {
        let questions = family_questions(
            &table,
            family,
            questions_per_workload,
            EXPERIMENT_SEED + cases.len() as u64,
        );
        assert!(!questions.is_empty(), "no {name} questions generated");
        // Both variants share one warm evaluator session (and therefore its
        // cross-candidate denotation cache), so the measured difference is
        // the feature representation, not execution.
        let evaluator = Evaluator::new(&table);
        let mut scratch = ScratchSpace::new();
        for question in &questions {
            let _ = parser.parse_in_session_with(question, &evaluator, &mut scratch);
            let _ = parse_in_session_reference(&reference, &parser.config, question, &evaluator);
        }
        let timings = interleaved_us(&mut [
            &mut || {
                for question in &questions {
                    let _ = parse_in_session_reference(
                        &reference,
                        &parser.config,
                        question,
                        &evaluator,
                    );
                }
            },
            &mut || {
                for question in &questions {
                    let _ = parser.parse_in_session_with(question, &evaluator, &mut scratch);
                }
            },
        ]);
        let per_question = questions.len() as f64;
        let (reference_us, interned_us) = (timings[0] / per_question, timings[1] / per_question);
        interned_total_us += interned_us * per_question;
        reference_total_us += reference_us * per_question;
        total_questions += questions.len();
        cases.push(ParseCase {
            name: name.to_string(),
            family: family.name().to_string(),
            questions: questions.len(),
            reference_us,
            interned_us,
            speedup: reference_us / interned_us,
        });
    }
    let stages = StageBreakdown::from_stats(&wtq_parser::parse_stats());

    let interned_qps = 1e6 * total_questions as f64 / interned_total_us;
    let reference_qps = 1e6 * total_questions as f64 / reference_total_us;
    ParsingReport {
        questions_per_workload,
        cases,
        interned_qps,
        reference_qps,
        speedup: interned_qps / reference_qps,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_five_workloads_with_sane_numbers() {
        let report = parsing_report(2);
        assert_eq!(report.cases.len(), 5);
        let names: Vec<&str> = report.cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "join",
                "compare",
                "superlative",
                "intersect",
                "project_aggregate"
            ]
        );
        for case in &report.cases {
            assert!(case.questions > 0, "{}", case.name);
            assert!(case.reference_us > 0.0, "{}", case.name);
            assert!(case.interned_us > 0.0, "{}", case.name);
        }
        assert!(report.interned_qps > 0.0);
        assert!(report.reference_qps > 0.0);
        // The interned runs recorded their stage spans.
        assert!(report.stages.questions > 0);
        assert!(report.stages.total_us > 0.0);
        assert!(report.stages.features_us > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("interned_qps"));
        assert!(json.contains("tokenize_us"));
    }
}
