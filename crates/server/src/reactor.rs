//! The readiness loop: a small pool of reactor threads owns every client
//! socket, a single blocking acceptor feeds them, and a fixed worker pool
//! answers requests — thread count scales with *work*, never with
//! connection count.
//!
//! ```text
//!            ┌──────────┐   Register     ┌───────────────┐
//!  accept()  │ acceptor │ ─────────────► │ reactor 0..R  │  epoll_wait
//!            └──────────┘  (round robin) │  Conn slab    │ ◄──────────┐
//!                                        └──────┬────────┘            │
//!                                          Job  │    ▲ Complete       │
//!                                               ▼    │ (waker pipe)   │
//!                                        ┌───────────┴───┐            │
//!                                        │ dispatch pool │ ───────────┘
//!                                        │ (admission +  │   responses
//!                                        │  Engine work) │
//!                                        └───────────────┘
//! ```
//!
//! Each reactor multiplexes its connections over one `wtq_net::Poller`
//! (epoll), parsing incrementally via the [`Conn`] state machines. Complete
//! requests go to the dispatch pool, which runs the *unchanged* admission
//! and engine machinery (`Shared::handle_request`) and pushes the response
//! bytes back through the reactor's command queue + waker pipe; the
//! reactor writes them out on writability. Ten thousand idle connections
//! therefore cost ten thousand slab entries and epoll registrations — not
//! ten thousand stacks.

use std::collections::VecDeque;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wtq_net::{Interest, Poller, WakeReceiver, Waker};

use crate::conn::{Conn, IoOutcome, JobKind, JobMeta, Response};
use crate::http;
use crate::server::{dispatch_frame, FrameResponse, Shared};
use crate::wire::{self, ErrorCode, ResponseBody, WireError};

/// The token reserved for the waker pipe.
const WAKER_TOKEN: u64 = u64::MAX;

/// Buffers over this capacity are dropped instead of recycled — one giant
/// response must not pin its memory in the pool forever.
const POOL_MAX_RETAINED_CAPACITY: usize = 64 * 1024;

/// Bound on pooled buffers (matching a reactor's plausible in-flight
/// responses, not its connection count).
const POOL_MAX_BUFFERS: usize = 64;

/// A per-reactor free list of response write buffers. A buffer travels
/// reactor → job → dispatch worker (the response encodes into it) →
/// `Command::Complete` → connection outbox, and returns here once flushed
/// — steady-state serving allocates no per-response head buffers.
pub(crate) struct BufferPool {
    free: Vec<Vec<u8>>,
}

impl BufferPool {
    pub(crate) fn new() -> BufferPool {
        BufferPool { free: Vec::new() }
    }

    /// An empty buffer, reusing a recycled allocation when one is free.
    pub(crate) fn take(&mut self) -> Vec<u8> {
        self.free
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(4 * 1024))
    }

    /// Return a flushed buffer to the free list.
    pub(crate) fn recycle(&mut self, mut buffer: Vec<u8>) {
        if buffer.capacity() > POOL_MAX_RETAINED_CAPACITY || self.free.len() >= POOL_MAX_BUFFERS {
            return;
        }
        buffer.clear();
        self.free.push(buffer);
    }
}

/// Cross-thread input to a reactor, delivered via its command queue and
/// waker pipe.
pub(crate) enum Command {
    /// A freshly accepted socket to own.
    Register(TcpStream),
    /// A worker finished the request `(token, gen)` had in flight.
    Complete {
        token: u64,
        gen: u64,
        response: Response,
    },
    /// Close every connection and exit the loop.
    Shutdown,
}

/// The handle other threads use to reach a reactor.
pub(crate) struct ReactorShared {
    commands: Mutex<VecDeque<Command>>,
    waker: Waker,
    /// Set once the loop has exited: further commands are dropped (which
    /// closes any registered stream) instead of queueing forever.
    dead: std::sync::atomic::AtomicBool,
    shared: Arc<Shared>,
}

impl ReactorShared {
    pub(crate) fn push(&self, command: Command) {
        if self.dead.load(Ordering::Acquire) {
            return; // dropping a Register closes its socket
        }
        {
            let mut commands = self.commands.lock().expect("reactor queue poisoned");
            commands.push_back(command);
        }
        self.shared.note_reactor_queue(1);
        self.waker.wake();
    }

    fn pop(&self) -> Option<Command> {
        let command = self
            .commands
            .lock()
            .expect("reactor queue poisoned")
            .pop_front();
        if command.is_some() {
            self.shared.note_reactor_queue(-1);
        }
        command
    }
}

/// One request on its way to the dispatch pool, carrying a pooled write
/// buffer for its response head.
pub(crate) struct Job {
    reactor: Arc<ReactorShared>,
    token: u64,
    gen: u64,
    kind: JobKind,
    meta: JobMeta,
    buf: Vec<u8>,
}

/// A minimal slab: stable `u64` tokens for epoll, O(1) insert/remove,
/// generation stamps against token reuse.
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
        }
    }

    fn insert(&mut self, stream: TcpStream) -> std::io::Result<(u64, &mut Conn)> {
        let gen = self.next_gen;
        self.next_gen += 1;
        let conn = Conn::new(stream, gen)?;
        let index = match self.free.pop() {
            Some(index) => {
                self.slots[index] = Some(conn);
                index
            }
            None => {
                self.slots.push(Some(conn));
                self.slots.len() - 1
            }
        };
        Ok((
            index as u64,
            self.slots[index].as_mut().expect("just inserted"),
        ))
    }

    fn get_mut(&mut self, token: u64) -> Option<&mut Conn> {
        self.slots.get_mut(token as usize)?.as_mut()
    }

    fn remove(&mut self, token: u64) -> Option<Conn> {
        let slot = self.slots.get_mut(token as usize)?;
        let conn = slot.take();
        if conn.is_some() {
            self.free.push(token as usize);
        }
        conn
    }

    fn tokens(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_some())
            .map(|(index, _)| index as u64)
            .collect()
    }
}

/// One reactor thread: the poller, its connections, and the queues tying
/// it to the acceptor and the dispatch pool.
pub(crate) struct Reactor {
    poller: Poller,
    wake_receiver: WakeReceiver,
    conns: Slab,
    shared: Arc<Shared>,
    rshared: Arc<ReactorShared>,
    jobs: Sender<Job>,
    pool: BufferPool,
}

impl Reactor {
    /// Build a reactor and its shared handle.
    pub(crate) fn new(
        shared: Arc<Shared>,
        jobs: Sender<Job>,
    ) -> std::io::Result<(Reactor, Arc<ReactorShared>)> {
        let (waker, wake_receiver) = wtq_net::waker()?;
        let mut poller = Poller::new()?;
        poller.add(wake_receiver.fd(), WAKER_TOKEN, Interest::READABLE)?;
        let rshared = Arc::new(ReactorShared {
            commands: Mutex::new(VecDeque::new()),
            waker,
            dead: std::sync::atomic::AtomicBool::new(false),
            shared: shared.clone(),
        });
        Ok((
            Reactor {
                poller,
                wake_receiver,
                conns: Slab::new(),
                shared,
                rshared: rshared.clone(),
                jobs,
                pool: BufferPool::new(),
            },
            rshared,
        ))
    }

    /// The event loop; returns on [`Command::Shutdown`].
    pub(crate) fn run(mut self) {
        let mut events = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        loop {
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing poller cannot make progress; treat it like
                // shutdown rather than spinning.
                break;
            }
            for event in events.drain(..) {
                if event.token == WAKER_TOKEN {
                    self.wake_receiver.drain();
                    continue;
                }
                self.handle_io(event.token, event.readable, event.writable, &mut scratch);
            }
            if self.drain_commands() {
                break;
            }
            self.expire_drains();
        }
        self.close_all();
        self.rshared.dead.store(true, Ordering::Release);
        // Drop (and thereby close) anything queued after the flag flipped.
        while self.rshared.pop().is_some() {}
    }

    /// A poll timeout only while lingering drains need a clock.
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.conns
            .slots
            .iter()
            .flatten()
            .filter_map(|conn| conn.drain_deadline())
            .map(|deadline| deadline.saturating_duration_since(now))
            .min()
            .map(|remaining| remaining.max(Duration::from_millis(10)))
    }

    /// Close lingering drains whose deadline passed.
    fn expire_drains(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                let deadline = slot.as_ref()?.drain_deadline()?;
                (deadline <= now).then_some(index as u64)
            })
            .collect();
        for token in expired {
            self.close(token);
        }
    }

    fn handle_io(&mut self, token: u64, readable: bool, writable: bool, scratch: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(token) else {
            return; // stale event for a just-closed connection
        };
        if writable && conn.handle_writable(&mut self.pool) == IoOutcome::Close {
            self.close(token);
            return;
        }
        if readable {
            let outcome = {
                let shared = self.shared.clone();
                let conn = self.conns.get_mut(token).expect("checked above");
                conn.handle_readable(scratch, &shared)
            };
            if outcome == IoOutcome::Close {
                self.close(token);
                return;
            }
        }
        self.service(token);
    }

    /// Submit pending work, apply close transitions, refresh interest.
    fn service(&mut self, token: u64) {
        // Submit at most one request to the worker pool.
        let job = {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            conn.next_job().map(|(kind, meta)| (kind, meta, conn.gen))
        };
        if let Some((kind, meta, gen)) = job {
            let job = Job {
                reactor: self.rshared.clone(),
                token,
                gen,
                kind,
                meta,
                buf: self.pool.take(),
            };
            if self.jobs.send(job).is_err() {
                // Dispatch pool gone: only happens during shutdown.
                self.close(token);
                return;
            }
        }
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        // Opportunistic flush: most responses fit the socket buffer, so
        // they complete without a writability round-trip.
        if conn.wants_write() && conn.handle_writable(&mut self.pool) == IoOutcome::Close {
            self.close(token);
            return;
        }
        if conn.after_flush() == IoOutcome::Close {
            self.close(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let interest = Interest {
            readable: conn.wants_read(),
            writable: conn.wants_write(),
        };
        if interest == conn.registered_interest {
            return; // the common readable→readable case: no syscall
        }
        conn.registered_interest = interest;
        let fd = conn.stream().as_raw_fd();
        if self.poller.modify(fd, token, interest).is_err() {
            self.close(token);
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let Ok((token, conn)) = self.conns.insert(stream) else {
            return; // set_nonblocking failed; the dropped stream closes
        };
        let fd = conn.stream().as_raw_fd();
        if self.poller.add(fd, token, Interest::READABLE).is_err() {
            self.conns.remove(token);
            return;
        }
        self.shared.note_connection_opened();
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(token) {
            let _ = self.poller.delete(conn.stream().as_raw_fd());
            let _ = conn.stream().shutdown(Shutdown::Both);
            self.shared.note_connection_closed();
        }
    }

    fn close_all(&mut self) {
        for token in self.conns.tokens() {
            self.close(token);
        }
    }

    /// Apply queued commands; `true` means shutdown.
    fn drain_commands(&mut self) -> bool {
        while let Some(command) = self.rshared.pop() {
            match command {
                Command::Register(stream) => self.register(stream),
                Command::Complete {
                    token,
                    gen,
                    response,
                } => {
                    let fresh = match self.conns.get_mut(token) {
                        Some(conn) if conn.gen == gen => {
                            conn.complete_response(response);
                            true
                        }
                        // The connection died while its request ran; the
                        // response has no one to go to.
                        _ => false,
                    };
                    if fresh {
                        self.service(token);
                    }
                }
                Command::Shutdown => return true,
            }
        }
        false
    }
}

/// The blocking accept loop: hand every socket to a reactor, round-robin.
pub(crate) fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    reactors: Vec<Arc<ReactorShared>>,
) {
    let mut next = 0usize;
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if shared.is_shutting_down() => break,
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) would
                // otherwise busy-spin this thread at 100% CPU.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.is_shutting_down() {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        shared.count_connection();
        reactors[next % reactors.len()].push(Command::Register(stream));
        next = next.wrapping_add(1);
    }
}

/// One dispatch worker: pull a request, run the unchanged admission +
/// engine machinery, push the response bytes back to the owning reactor.
pub(crate) fn dispatch_worker(shared: Arc<Shared>, jobs: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Holding the mutex while blocked in recv() is the intended
        // sharing pattern: idle workers queue on the mutex instead.
        let job = {
            let receiver = jobs.lock().expect("job receiver poisoned");
            receiver.recv()
        };
        let Ok(job) = job else {
            return; // all senders dropped: shutdown
        };
        let Job {
            reactor,
            token,
            gen,
            kind,
            meta,
            buf,
        } = job;
        let is_http = matches!(kind, JobKind::Http(_));
        let response = catch_unwind(AssertUnwindSafe(|| respond(&shared, kind, meta, buf)))
            .unwrap_or_else(|_| fallback_internal_error(is_http));
        reactor.push(Command::Complete {
            token,
            gen,
            response,
        });
    }
}

/// Nanoseconds between two instants (0 when `end` precedes `start`).
fn ns_between(start: Instant, end: Instant) -> u64 {
    end.saturating_duration_since(start).as_nanos() as u64
}

/// Answer one request as a segmented [`Response`], encoding the head into
/// the job's pooled buffer. This is where a sampled request's trace is
/// born and finished: the reactor stamped arrival and decode time on the
/// job ([`JobMeta`]), the handlers append their stage spans, and the
/// encode span plus the end-to-end latency histogram close the request
/// out.
fn respond(shared: &Shared, kind: JobKind, meta: JobMeta, buf: Vec<u8>) -> Response {
    let obs = shared.obs();
    let entered = Instant::now();
    let wait_ns = ns_between(meta.started, entered).saturating_sub(meta.decode_ns);
    obs.stage_decode.observe(meta.decode_ns);
    obs.stage_queue_wait.observe(wait_ns);
    let mut trace = obs.tracer().start(meta.started);
    if let Some(trace) = trace.as_mut() {
        trace.record_ns("decode", 0, meta.decode_ns);
        trace.record_ns("queue_wait", meta.decode_ns, wait_ns);
    }
    let mut head = buf;
    head.clear();
    let (response, status) = match kind {
        JobKind::Frame(payload) => match dispatch_frame(shared, &payload, &mut trace) {
            FrameResponse::Cached {
                id,
                question,
                table,
                body,
            } => {
                let encode_start = Instant::now();
                let framed = wire::spliced_frame_head(&mut head, id, &question, &table, body.len());
                let response = if framed {
                    Response {
                        head,
                        body: Some(body),
                        tail: wire::SPLICE_ENVELOPE_TAIL,
                    }
                } else {
                    // The assembled frame would overflow the u32 length
                    // prefix; answer structured, never a garbage frame.
                    obs.encode_failures.inc();
                    Response::whole(wire::error_frame(
                        id,
                        &WireError::new(ErrorCode::Internal, "response exceeds the frame format"),
                    ))
                };
                finish_encode(shared, &mut trace, encode_start);
                (response, "ok".to_string())
            }
            FrameResponse::Full(envelope) => {
                let status = match &envelope.body {
                    ResponseBody::Error(err) => format!("{:?}", err.code),
                    _ => "ok".to_string(),
                };
                let encode_start = Instant::now();
                let encoded = serde_json::to_string(&envelope)
                    .map_err(|err| format!("response serialization failed: {err}"))
                    .and_then(|json| {
                        wire::encode_frame_into(json.as_bytes(), &mut head)
                            .map_err(|err| format!("response exceeds the frame format: {err}"))
                    });
                let response = match encoded {
                    Ok(()) => Response::whole(head),
                    Err(message) => {
                        // An unencodable response answers with a structured
                        // `Internal` envelope (built by infallible direct
                        // byte writing) and is counted — never swallowed
                        // into an empty frame.
                        obs.encode_failures.inc();
                        Response::whole(wire::error_frame(
                            envelope.id,
                            &WireError::new(ErrorCode::Internal, message),
                        ))
                    }
                };
                finish_encode(shared, &mut trace, encode_start);
                (response, status)
            }
        },
        JobKind::Http(request) => {
            let routed = http::route(
                shared,
                &request.method,
                &request.path,
                &request.body,
                &mut trace,
            );
            let status = routed.status().to_string();
            let encode_start = Instant::now();
            let response = match routed {
                http::Routed::CachedExplanation {
                    question,
                    table,
                    body,
                } => {
                    http::spliced_response_head(&mut head, &question, &table, body.len());
                    Response {
                        head,
                        body: Some(body),
                        tail: wire::SPLICE_BODY_TAIL,
                    }
                }
                http::Routed::Plain(plain) => {
                    http::response_bytes_into(&plain, &mut head);
                    Response::whole(head)
                }
            };
            finish_encode(shared, &mut trace, encode_start);
            (response, status)
        }
    };
    let total_ns = ns_between(meta.started, Instant::now());
    obs.request_duration.observe(total_ns);
    if let Some(trace) = trace {
        obs.tracer().finish(trace, &status, total_ns);
    }
    response
}

/// Close the encode span (histogram + trace).
fn finish_encode(
    shared: &Shared,
    trace: &mut Option<wtq_obs::RequestTrace>,
    encode_start: Instant,
) {
    let encode_end = Instant::now();
    shared
        .obs()
        .stage_encode
        .observe(ns_between(encode_start, encode_end));
    if let Some(trace) = trace.as_mut() {
        trace.record("encode", encode_start, encode_end);
    }
}

/// The response for a request whose handler panicked *outside* the
/// engine's own `catch_unwind` — the worker must survive and the client
/// must still hear something structured.
fn fallback_internal_error(is_http: bool) -> Response {
    Response::whole(if is_http {
        let response = http::HttpResponse::error(ErrorCode::Internal, "request handler panicked");
        http::response_bytes(&response)
    } else {
        wire::error_frame(
            0,
            &WireError::new(ErrorCode::Internal, "request handler panicked"),
        )
    })
}
