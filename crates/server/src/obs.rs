//! The server's observability surface: one [`Registry`] every metric
//! renders from, and one [`Tracer`] collecting sampled request traces.
//!
//! Two kinds of entries live in the registry:
//!
//! * **Native** metrics owned by this module — per-endpoint request
//!   counters, the end-to-end request latency histogram, per-stage latency
//!   histograms (decode → queue wait → cache probe → admission wait → eval
//!   → encode) and per-question parse-stage histograms. These are recorded
//!   on the request path itself (relaxed atomics; a histogram observation
//!   is two `fetch_add`s).
//! * **Mirrored** entries for the pre-existing snapshot counters
//!   (`ServerStats`, `EngineStats`, `PlannerStats`, both `CacheStats`
//!   surfaces, the cumulative parse-stage timers). Their canonical write
//!   paths are untouched; [`Obs::render`] syncs the registry copies from a
//!   fresh snapshot immediately before rendering, so `/metrics` exposes
//!   everything under one coherent `wtq_*` naming scheme without adding a
//!   single instruction to those subsystems' hot paths.
//!
//! Histogram values are nanoseconds internally and render as seconds in
//! the Prometheus exposition (bucket bounds included), matching the
//! `_seconds` metric names.

use std::sync::Arc;
use std::time::Instant;

use wtq_core::EngineStats;
use wtq_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use wtq_parser::ParseStats;

use crate::wire::ServerStats;

/// Everything `/metrics` and `/trace/recent` serve, plus the handles the
/// request path records into. One per server, shared behind the server's
/// `Shared` state.
pub(crate) struct Obs {
    registry: Registry,
    tracer: Tracer,
    started: Instant,

    // Native: per-endpoint request counters.
    pub(crate) explain_requests: Arc<Counter>,
    pub(crate) explain_batch_requests: Arc<Counter>,
    pub(crate) stats_requests: Arc<Counter>,
    pub(crate) tables_requests: Arc<Counter>,
    pub(crate) metrics_requests: Arc<Counter>,
    pub(crate) trace_requests: Arc<Counter>,

    // Native: responses that could not encode and were answered with a
    // structured `Internal` error instead (never an empty frame).
    pub(crate) encode_failures: Arc<Counter>,

    // Native: latency histograms (nanosecond observations).
    pub(crate) request_duration: Arc<Histogram>,
    pub(crate) stage_decode: Arc<Histogram>,
    pub(crate) stage_queue_wait: Arc<Histogram>,
    pub(crate) stage_cache_probe: Arc<Histogram>,
    pub(crate) stage_admission_wait: Arc<Histogram>,
    pub(crate) stage_eval: Arc<Histogram>,
    pub(crate) stage_encode: Arc<Histogram>,

    // Native: per-question parse-stage histograms.
    parse_tokenize: Arc<Histogram>,
    parse_lexicon: Arc<Histogram>,
    parse_candidates: Arc<Histogram>,
    parse_eval: Arc<Histogram>,
    parse_features: Arc<Histogram>,
    parse_score: Arc<Histogram>,

    mirrors: Mirrors,
}

/// Registry copies of the legacy snapshot counters, overwritten from a
/// fresh snapshot at scrape time (sound: every source is monotonic or an
/// explicit gauge).
struct Mirrors {
    uptime_seconds: Arc<Gauge>,
    connections: Arc<Counter>,
    open_connections: Arc<Gauge>,
    requests: Arc<Counter>,
    http_requests: Arc<Counter>,
    rejected_overload: Arc<Counter>,
    rejected_table_busy: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    in_flight: Arc<Gauge>,
    reactor_queue_depth: Arc<Gauge>,
    tables: Arc<Gauge>,
    engine_questions: Arc<Counter>,
    engine_batches: Arc<Counter>,
    engine_in_flight: Arc<Gauge>,
    index_cache_hits: Arc<Counter>,
    index_cache_misses: Arc<Counter>,
    index_cache_evictions: Arc<Counter>,
    index_cache_tables: Arc<Gauge>,
    planner_scan: Arc<Counter>,
    planner_index: Arc<Counter>,
    planner_kernel: Arc<Counter>,
    planner_estimated_rows: Arc<Counter>,
    planner_actual_rows: Arc<Counter>,
    parse_questions: Arc<Counter>,
    #[allow(clippy::type_complexity)]
    parse_stage_ns: [(Arc<Counter>, fn(&ParseStats) -> u64); 6],
    answer_cache_hits: Arc<Counter>,
    answer_cache_misses: Arc<Counter>,
    answer_cache_collapsed: Arc<Counter>,
    answer_cache_insertions: Arc<Counter>,
    answer_cache_evictions_lru: Arc<Counter>,
    answer_cache_evictions_ttl: Arc<Counter>,
    answer_cache_stale_drops: Arc<Counter>,
    answer_cache_entries: Arc<Gauge>,
    answer_cache_bytes: Arc<Gauge>,
    traces_sampled: Arc<Counter>,
}

const STAGE_HELP: &str = "Per-stage request latency";
const PARSE_HELP: &str = "Per-question parse-stage latency";
const ENDPOINT_HELP: &str = "Requests handled, by endpoint";

impl Obs {
    pub(crate) fn new(trace_sample_rate: f64, trace_ring_size: usize) -> Obs {
        let registry = Registry::new();
        let endpoint = |name: &str| {
            registry.counter_labeled(
                "wtq_server_endpoint_requests_total",
                "endpoint",
                name,
                ENDPOINT_HELP,
            )
        };
        let stage = |name: &str| {
            registry.histogram_labeled(
                "wtq_request_stage_duration_seconds",
                "stage",
                name,
                STAGE_HELP,
            )
        };
        let parse_stage = |name: &str| {
            registry.histogram_labeled(
                "wtq_parse_stage_duration_seconds",
                "stage",
                name,
                PARSE_HELP,
            )
        };
        let rejected = |reason: &str| {
            registry.counter_labeled(
                "wtq_server_rejected_total",
                "reason",
                reason,
                "Requests rejected with a retry hint, by reason",
            )
        };
        let index_op = |op: &str| {
            registry.counter_labeled(
                "wtq_index_cache_ops_total",
                "op",
                op,
                "Index-cache lookups and evictions, by outcome",
            )
        };
        let answer_op = |op: &str| {
            registry.counter_labeled(
                "wtq_answer_cache_ops_total",
                "op",
                op,
                "Answer-cache lookups and insertions, by outcome",
            )
        };
        let answer_evict = |reason: &str| {
            registry.counter_labeled(
                "wtq_answer_cache_evictions_total",
                "reason",
                reason,
                "Answer-cache entries dropped, by reason",
            )
        };
        let planner = |backend: &str| {
            registry.counter_labeled(
                "wtq_planner_decisions_total",
                "backend",
                backend,
                "SQL planner WHERE-clause decisions, by chosen backend",
            )
        };
        let mirrors = Mirrors {
            uptime_seconds: registry.gauge(
                "wtq_server_uptime_seconds",
                "Seconds since the server started",
            ),
            connections: registry.counter("wtq_server_connections_total", "Connections accepted"),
            open_connections: registry.gauge(
                "wtq_server_open_connections",
                "Connections currently registered",
            ),
            requests: registry.counter(
                "wtq_server_requests_total",
                "Requests answered successfully",
            ),
            http_requests: registry.counter(
                "wtq_server_http_requests_total",
                "Requests served over HTTP",
            ),
            rejected_overload: rejected("overload"),
            rejected_table_busy: rejected("table_busy"),
            protocol_errors: registry.counter(
                "wtq_server_protocol_errors_total",
                "Protocol-level error responses",
            ),
            in_flight: registry.gauge("wtq_server_in_flight", "Requests holding an in-flight slot"),
            reactor_queue_depth: registry.gauge(
                "wtq_server_reactor_queue_depth",
                "Reactor commands queued, not yet applied",
            ),
            tables: registry.gauge("wtq_server_tables", "Tables registered in the catalog"),
            engine_questions: registry.counter(
                "wtq_engine_questions_served_total",
                "Questions answered by the engine",
            ),
            engine_batches: registry.counter(
                "wtq_engine_batches_served_total",
                "Batch calls answered by the engine",
            ),
            engine_in_flight: registry.gauge(
                "wtq_engine_in_flight",
                "Engine entry points currently executing",
            ),
            index_cache_hits: index_op("hit"),
            index_cache_misses: index_op("miss"),
            index_cache_evictions: index_op("eviction"),
            index_cache_tables: registry.gauge(
                "wtq_index_cache_tables",
                "Tables resident in the index cache",
            ),
            planner_scan: planner("scan"),
            planner_index: planner("index"),
            planner_kernel: planner("kernel"),
            planner_estimated_rows: registry.counter(
                "wtq_planner_estimated_rows_total",
                "Planner-estimated matching rows, cumulative",
            ),
            planner_actual_rows: registry.counter(
                "wtq_planner_actual_rows_total",
                "Actual matching rows of planned filters, cumulative",
            ),
            parse_questions: registry
                .counter("wtq_parse_questions_total", "Questions parsed end to end"),
            parse_stage_ns: [
                (
                    "tokenize",
                    (|s: &ParseStats| s.tokenize_ns) as fn(&ParseStats) -> u64,
                ),
                ("lexicon", |s: &ParseStats| s.lexicon_ns),
                ("candidates", |s: &ParseStats| s.candidates_ns),
                ("eval", |s: &ParseStats| s.eval_ns),
                ("features", |s: &ParseStats| s.features_ns),
                ("score", |s: &ParseStats| s.score_ns),
            ]
            .map(|(name, read)| {
                (
                    registry.counter_labeled(
                        "wtq_parse_stage_ns_total",
                        "stage",
                        name,
                        "Cumulative parse-stage time in nanoseconds, by stage",
                    ),
                    read,
                )
            }),
            answer_cache_hits: answer_op("hit"),
            answer_cache_misses: answer_op("miss"),
            answer_cache_collapsed: answer_op("collapsed"),
            answer_cache_insertions: answer_op("insertion"),
            answer_cache_evictions_lru: answer_evict("lru"),
            answer_cache_evictions_ttl: answer_evict("ttl"),
            answer_cache_stale_drops: answer_evict("stale"),
            answer_cache_entries: registry
                .gauge("wtq_answer_cache_entries", "Answer-cache entries resident"),
            answer_cache_bytes: registry.gauge(
                "wtq_answer_cache_bytes",
                "Approximate answer-cache resident bytes",
            ),
            traces_sampled: registry.counter(
                "wtq_traces_sampled_total",
                "Requests sampled into the trace ring",
            ),
        };
        Obs {
            tracer: Tracer::new(trace_sample_rate, trace_ring_size),
            started: Instant::now(),
            explain_requests: endpoint("explain"),
            explain_batch_requests: endpoint("explain_batch"),
            stats_requests: endpoint("stats"),
            tables_requests: endpoint("tables"),
            metrics_requests: endpoint("metrics"),
            trace_requests: endpoint("trace"),
            encode_failures: registry.counter(
                "wtq_server_encode_failures_total",
                "Responses that failed to encode and degraded to a structured Internal error",
            ),
            request_duration: registry.histogram(
                "wtq_request_duration_seconds",
                "End-to-end request latency, first byte to response encoded",
            ),
            stage_decode: stage("decode"),
            stage_queue_wait: stage("queue_wait"),
            stage_cache_probe: stage("cache_probe"),
            stage_admission_wait: stage("admission_wait"),
            stage_eval: stage("eval"),
            stage_encode: stage("encode"),
            parse_tokenize: parse_stage("tokenize"),
            parse_lexicon: parse_stage("lexicon"),
            parse_candidates: parse_stage("candidates"),
            parse_eval: parse_stage("eval"),
            parse_features: parse_stage("features"),
            parse_score: parse_stage("score"),
            mirrors,
            registry,
        }
    }

    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Milliseconds since the server started.
    pub(crate) fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Record one question's parse-stage breakdown into the per-question
    /// histograms (the cumulative totals are mirrored separately).
    pub(crate) fn observe_parse(&self, stats: &ParseStats) {
        self.parse_tokenize.observe(stats.tokenize_ns);
        self.parse_lexicon.observe(stats.lexicon_ns);
        self.parse_candidates.observe(stats.candidates_ns);
        self.parse_eval.observe(stats.eval_ns);
        self.parse_features.observe(stats.features_ns);
        self.parse_score.observe(stats.score_ns);
    }

    /// Sync the mirrored entries from fresh snapshots, then render the
    /// whole registry as Prometheus text.
    pub(crate) fn render(&self, engine: &EngineStats, server: &ServerStats) -> String {
        let m = &self.mirrors;
        m.uptime_seconds
            .set((self.started.elapsed().as_secs_f64()) as i64);
        m.connections.set(server.connections);
        m.open_connections.set(server.open_connections as i64);
        m.requests.set(server.requests);
        m.http_requests.set(server.http_requests);
        m.rejected_overload.set(server.rejected_overload);
        m.rejected_table_busy.set(server.rejected_table_busy);
        m.protocol_errors.set(server.protocol_errors);
        m.in_flight.set(server.in_flight as i64);
        m.reactor_queue_depth.set(server.reactor_queue_depth as i64);
        m.tables.set(server.tables as i64);
        m.engine_questions.set(engine.questions_served);
        m.engine_batches.set(engine.batches_served);
        m.engine_in_flight.set(engine.in_flight as i64);
        m.index_cache_hits.set(engine.index_cache.hits);
        m.index_cache_misses.set(engine.index_cache.misses);
        m.index_cache_evictions.set(engine.index_cache.evictions);
        m.index_cache_tables.set(engine.cached_tables as i64);
        m.planner_scan.set(engine.planner.scan_chosen);
        m.planner_index.set(engine.planner.index_chosen);
        m.planner_kernel.set(engine.planner.kernel_chosen);
        m.planner_estimated_rows.set(engine.planner.estimated_rows);
        m.planner_actual_rows.set(engine.planner.actual_rows);
        m.parse_questions.set(engine.parsing.questions);
        for (counter, read) in &m.parse_stage_ns {
            counter.set(read(&engine.parsing));
        }
        m.answer_cache_hits.set(engine.answer_cache.hits);
        m.answer_cache_misses.set(engine.answer_cache.misses);
        m.answer_cache_collapsed
            .set(engine.answer_cache.collapsed_waiters);
        m.answer_cache_insertions
            .set(engine.answer_cache.insertions);
        m.answer_cache_evictions_lru
            .set(engine.answer_cache.evictions_lru);
        m.answer_cache_evictions_ttl
            .set(engine.answer_cache.evictions_ttl);
        m.answer_cache_stale_drops
            .set(engine.answer_cache.stale_drops);
        m.answer_cache_entries
            .set(engine.answer_cache.entries as i64);
        m.answer_cache_bytes.set(engine.answer_cache.bytes as i64);
        m.traces_sampled.set(self.tracer.sampled());
        self.registry.render()
    }
}
