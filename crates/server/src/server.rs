//! The serving layer: accept loop, per-connection protocol handling,
//! backpressure and per-table admission control over a shared
//! [`Engine`](wtq_core::Engine).
//!
//! ## Scheduling model
//!
//! Every data-plane request (`Explain`, `ExplainBatch`) must first take a
//! slot in the **bounded in-flight queue** (`max_in_flight`). When the queue
//! is full the request is *rejected immediately* with
//! [`ErrorCode::Overloaded`] and a `retry_after_ms` hint — the server never
//! buffers without bound, so memory under overload stays flat and clients
//! get explicit backpressure instead of unbounded latency. `ListTables` and
//! `Stats` are control-plane: they bypass the queue so operators can observe
//! an overloaded server.
//!
//! Holding a slot, the request then passes **per-table admission control**
//! (two layers, see [`TableGate`]): the table must be below its share of
//! the in-flight queue (`max_table_in_flight`, rejected with a retry hint
//! otherwise — a hot table's waiters must not fill the whole queue), and
//! at most `per_table_tokens` requests may execute concurrently against
//! tables sharing one shape fingerprint ([`wtq_table::Table::fingerprint`]).
//! Excess requests for a hot (or giant) table wait within their bounded
//! share while requests for other tables keep executing, so one table
//! cannot starve the pool.
//!
//! ## Protocols
//!
//! Connections are sniffed on their first four bytes: an HTTP method prefix
//! selects the hand-rolled HTTP/1.1 adapter ([`crate::http`]); anything else
//! is treated as the length-prefix of the framed JSON protocol
//! ([`crate::wire`]). The two share one dispatch core, so semantics
//! (backpressure, admission, errors) are identical.
//!
//! ## I/O model
//!
//! Connection I/O is a nonblocking readiness loop ([`crate::reactor`]):
//! one blocking acceptor hands sockets to a small pool of epoll reactor
//! threads whose per-connection state machines ([`crate::conn`]) parse
//! frames incrementally; complete requests run on a fixed dispatch pool
//! (where the blocking admission waits live) and responses are written
//! back on writability. Thread count scales with in-flight *work*
//! (`dispatch_threads`), never with connection count — tens of thousands
//! of idle clients cost buffered state, not stacks.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wtq_cache::{Begin, CacheConfig};
use wtq_core::{CachedAnswer, CachedCandidates, CachedEngine, Engine, ExplainRequest, Explanation};
use wtq_obs::RequestTrace;
use wtq_runtime::{BatchError, CancelToken};
use wtq_table::Catalog;

use crate::obs::Obs;
use crate::reactor::{self, Command, Reactor, ReactorShared};
use crate::wire::{
    self, ErrorCode, ExplainBatchBody, ExplainBody, MetricsBody, RequestBody, RequestEnvelope,
    ResponseBody, ResponseEnvelope, ServerStats, StatsBody, TablesBody, TraceRecentBody, WireBatch,
    WireError, WireExplanation,
};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound on concurrently admitted data-plane requests; a full queue
    /// rejects with [`ErrorCode::Overloaded`].
    pub max_in_flight: usize,
    /// Concurrent executions allowed per table shape fingerprint.
    pub per_table_tokens: usize,
    /// Bound on the share of the in-flight queue one table may occupy
    /// (executing + waiting); a table over its share rejects with
    /// [`ErrorCode::Overloaded`] so a hot table cannot fill the whole
    /// queue and starve the others. Clamped to at least
    /// `per_table_tokens`.
    pub max_table_in_flight: usize,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
    /// Maximum questions per `ExplainBatch` request.
    pub max_batch: usize,
    /// The `retry_after_ms` hint attached to overload rejections.
    pub retry_after_ms: u64,
    /// Upper bound on how long a request may wait for its table's
    /// execution tokens before being rejected with a retry hint — caps
    /// worst-case latency and guarantees a contended multi-token batch
    /// cannot hang its client forever.
    pub admission_timeout_ms: u64,
    /// Reactor (epoll event-loop) threads owning the sockets. Connections
    /// are spread round-robin; a handful suffices for tens of thousands of
    /// connections because reactors never block on protocol work.
    pub reactor_threads: usize,
    /// Dispatch worker threads running requests (admission waits and
    /// engine calls block *here*, not on reactors). `0` auto-sizes to
    /// `max_in_flight + 2`: enough for every admitted request to block in
    /// per-table admission while headroom remains for control-plane
    /// requests and immediate overload rejections.
    pub dispatch_threads: usize,
    /// Entry capacity of the deduplicating answer cache; `0` disables
    /// caching entirely. Cache lookups run *before* the in-flight queue
    /// gate (control-plane-style), so a request the cache can answer is
    /// never rejected with `Overloaded`.
    pub cache_capacity: usize,
    /// TTL of answer-cache entries in milliseconds; `0` means entries
    /// never expire by age (LRU and epoch invalidation still apply).
    pub cache_ttl_ms: u64,
    /// Fraction of requests sampled into the trace rings (deterministic
    /// every-Nth with `N = round(1/rate)`). `0.0` disables tracing
    /// entirely — sampled-out requests cost one relaxed counter increment.
    pub trace_sample_rate: f64,
    /// Capacity of each trace ring (most-recent and slowest); see
    /// `GET /trace/recent`.
    pub trace_ring_size: usize,
    /// Serve cache hits from the serialized candidate bytes stored at
    /// flight completion (splicing them into the response envelope by
    /// direct byte writing) instead of re-rendering highlights and
    /// re-running `serde_json` per hit. Off is only useful for A/B
    /// benchmarking the encode path.
    pub encode_once: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_in_flight: 64,
            per_table_tokens: 4,
            max_table_in_flight: 16,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            max_batch: 256,
            retry_after_ms: 50,
            admission_timeout_ms: 30_000,
            reactor_threads: 2,
            dispatch_threads: 0,
            cache_capacity: 4096,
            cache_ttl_ms: 0,
            trace_sample_rate: 0.0625,
            trace_ring_size: 128,
            encode_once: true,
        }
    }
}

impl ServerConfig {
    /// The reactor pool size actually spawned.
    pub(crate) fn resolved_reactor_threads(&self) -> usize {
        self.reactor_threads.max(1)
    }

    /// The dispatch pool size actually spawned (see `dispatch_threads`).
    pub(crate) fn resolved_dispatch_threads(&self) -> usize {
        if self.dispatch_threads == 0 {
            self.max_in_flight + 2
        } else {
            self.dispatch_threads
        }
    }
}

/// A handler's answer: either a fully structured body the encoder
/// serializes as before, or a cache hit whose candidates JSON was already
/// serialized at flight completion — the wire layers splice those bytes
/// into the response instead of re-encoding (the encode-once path).
pub(crate) enum Reply {
    Full(ResponseBody),
    CachedExplanation {
        /// The request's question text, echoed verbatim (cache keys are
        /// normalized, so only the candidate bytes are key-invariant).
        question: String,
        /// The request's table name, echoed verbatim.
        table: String,
        /// The serialized `candidates` JSON array, shared with the cache.
        body: Arc<Vec<u8>>,
    },
}

/// A framed request's answer, mirroring [`Reply`] with the envelope id
/// attached: `Full` serializes the whole envelope, `Cached` splices.
pub(crate) enum FrameResponse {
    Full(ResponseEnvelope),
    Cached {
        id: u64,
        question: String,
        table: String,
        body: Arc<Vec<u8>>,
    },
}

/// Monotonic serving counters (see [`ServerStats`]).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    http_requests: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_table_busy: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Counters of one admission gate, both keyed by table shape fingerprint
/// and guarded by the gate's single mutex.
#[derive(Debug, Default)]
struct GateState {
    /// Requests currently *executing* against each table (≤ `tokens`).
    executing: HashMap<u64, usize>,
    /// Requests currently *occupying an in-flight slot* for each table —
    /// executing or waiting for a token (≤ `max_queued`).
    queued: HashMap<u64, usize>,
}

fn count_of(map: &HashMap<u64, usize>, fingerprint: u64) -> usize {
    map.get(&fingerprint).copied().unwrap_or(0)
}

fn decrement(map: &mut HashMap<u64, usize>, fingerprint: u64, amount: usize) {
    if let Some(count) = map.get_mut(&fingerprint) {
        *count = count.saturating_sub(amount);
        if *count == 0 {
            map.remove(&fingerprint);
        }
    }
}

/// Per-table admission control, two-layered:
///
/// * **Occupancy** ([`TableGate::try_occupy`], non-blocking): bounds how
///   many in-flight-queue slots one table may hold at once (executing *or*
///   waiting). Without this, a hot table's waiters would fill the entire
///   bounded queue and every other table's requests would bounce off
///   `Overloaded` — exactly the cross-table starvation admission control
///   exists to prevent.
/// * **Execution tokens** ([`TableGate::acquire`], blocking): at most
///   `tokens` requests execute concurrently per table. Tokens are claimed
///   **incrementally in ascending fingerprint order** — the classic
///   hierarchical-locking order, so multi-table batches cannot deadlock
///   against each other, and a batch *camps* on the tokens it already
///   holds, so sustained single-table traffic cannot livelock it out of
///   ever seeing all its tables free at once.
#[derive(Debug)]
struct TableGate {
    tokens: usize,
    max_queued: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

impl TableGate {
    fn new(tokens: usize, max_queued: usize) -> TableGate {
        let tokens = tokens.max(1);
        TableGate {
            tokens,
            // A queue share below the execution bound could never fill it.
            max_queued: max_queued.max(tokens),
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// Claim one in-flight-queue share per fingerprint, all-or-nothing and
    /// without blocking. `None` when any of the tables has exhausted its
    /// share — the caller rejects with a retry hint.
    fn try_occupy(&self, fingerprints: Vec<u64>) -> Option<OccupancyGuard<'_>> {
        let mut state = self.state.lock().expect("table gate poisoned");
        if fingerprints
            .iter()
            .any(|&fp| count_of(&state.queued, fp) >= self.max_queued)
        {
            return None;
        }
        for fp in &fingerprints {
            *state.queued.entry(*fp).or_insert(0) += 1;
        }
        Some(OccupancyGuard {
            gate: self,
            fingerprints,
        })
    }

    /// Claim `weight` execution tokens per fingerprint (clamped to the
    /// per-table bound), blocking as needed — a batch that fans out over an
    /// N-worker engine pool claims N tokens, so admission bounds the
    /// *work* hitting a table, not just the request count. `fingerprints`
    /// must be sorted ascending and deduplicated. The wait is bounded by
    /// `timeout` so a contended multi-token request cannot hang its client
    /// forever; tokens already claimed are released on both timeout and
    /// shutdown.
    fn acquire<'a>(
        &'a self,
        fingerprints: Vec<u64>,
        weight: usize,
        timeout: Duration,
        shutdown: &AtomicBool,
    ) -> Acquire<'a> {
        debug_assert!(fingerprints.windows(2).all(|pair| pair[0] < pair[1]));
        let weight = weight.clamp(1, self.tokens);
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().expect("table gate poisoned");
        let mut held = 0;
        while held < fingerprints.len() {
            let bail = if shutdown.load(Ordering::Acquire) {
                Some(Acquire::ShuttingDown)
            } else if std::time::Instant::now() >= deadline {
                Some(Acquire::TimedOut)
            } else {
                None
            };
            if let Some(outcome) = bail {
                for &fp in &fingerprints[..held] {
                    decrement(&mut state.executing, fp, weight);
                }
                drop(state);
                self.freed.notify_all();
                return outcome;
            }
            let next = fingerprints[held];
            if count_of(&state.executing, next) + weight <= self.tokens {
                *state.executing.entry(next).or_insert(0) += weight;
                held += 1;
                continue;
            }
            // Re-check the shutdown flag and the deadline periodically:
            // shutdown() cannot know which condvars have waiters.
            let (guard, _timeout) = self
                .freed
                .wait_timeout(state, Duration::from_millis(50))
                .expect("table gate poisoned");
            state = guard;
        }
        Acquire::Acquired(TableGuard {
            gate: self,
            fingerprints,
            weight,
        })
    }
}

/// Outcome of [`TableGate::acquire`].
enum Acquire<'a> {
    /// Tokens claimed; released when the guard drops.
    Acquired(TableGuard<'a>),
    /// The admission timeout elapsed — reject with a retry hint.
    TimedOut,
    /// The server is shutting down.
    ShuttingDown,
}

/// RAII release of claimed in-flight-queue shares.
struct OccupancyGuard<'a> {
    gate: &'a TableGate,
    fingerprints: Vec<u64>,
}

impl Drop for OccupancyGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("table gate poisoned");
        for &fp in &self.fingerprints {
            decrement(&mut state.queued, fp, 1);
        }
    }
}

/// RAII release of claimed execution tokens.
struct TableGuard<'a> {
    gate: &'a TableGate,
    fingerprints: Vec<u64>,
    weight: usize,
}

impl Drop for TableGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("table gate poisoned");
        for &fp in &self.fingerprints {
            decrement(&mut state.executing, fp, self.weight);
        }
        drop(state);
        self.gate.freed.notify_all();
    }
}

/// RAII slot in the bounded in-flight queue.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// State shared between the acceptor, the reactors, the dispatch pool and
/// the [`ServerHandle`].
pub(crate) struct Shared {
    engine: Arc<Engine>,
    /// The deduplicating answer cache over `engine`, when
    /// `cache_capacity > 0`. Lookups happen before the in-flight gate;
    /// single-flight collapse means a thundering herd on one hot question
    /// costs one engine run.
    cached: Option<CachedEngine>,
    catalog: Arc<Catalog>,
    config: ServerConfig,
    in_flight: AtomicU64,
    admission: TableGate,
    counters: Counters,
    shutdown: AtomicBool,
    cancel: CancelToken,
    /// Connections currently registered with a reactor (gauge).
    open_connections: AtomicU64,
    /// Commands queued toward reactors but not yet applied (gauge): the
    /// observable depth of the I/O layer itself, distinct from the
    /// in-flight request queue.
    reactor_queue: AtomicI64,
    /// The observability surface: metrics registry, native latency
    /// histograms and the request tracer (see [`crate::obs`]).
    obs: Obs,
}

impl Shared {
    /// Take a slot in the bounded in-flight queue, or `None` when full.
    fn try_admit(&self) -> Option<InFlightGuard<'_>> {
        let cap = self.config.max_in_flight as u64;
        let mut current = self.in_flight.load(Ordering::Acquire);
        loop {
            if current >= cap {
                return None;
            }
            match self.in_flight.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(InFlightGuard(&self.in_flight)),
                Err(observed) => current = observed,
            }
        }
    }

    /// The overload rejection, with the configured retry hint.
    fn overloaded(&self) -> ResponseBody {
        self.counters
            .rejected_overload
            .fetch_add(1, Ordering::Relaxed);
        ResponseBody::Error(WireError {
            code: ErrorCode::Overloaded,
            message: format!(
                "in-flight queue full ({} requests)",
                self.config.max_in_flight
            ),
            retry_after_ms: Some(self.config.retry_after_ms),
        })
    }

    /// The per-table queue-share rejection (still retryable by the client,
    /// hence the same `Overloaded` code with a retry hint).
    fn table_busy(&self) -> ResponseBody {
        self.counters
            .rejected_table_busy
            .fetch_add(1, Ordering::Relaxed);
        ResponseBody::Error(WireError {
            code: ErrorCode::Overloaded,
            message: format!(
                "table's in-flight queue share full ({} requests per table)",
                self.admission.max_queued
            ),
            retry_after_ms: Some(self.config.retry_after_ms),
        })
    }

    /// Current serving counters.
    pub(crate) fn server_stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            http_requests: self.counters.http_requests.load(Ordering::Relaxed),
            rejected_overload: self.counters.rejected_overload.load(Ordering::Relaxed),
            rejected_table_busy: self.counters.rejected_table_busy.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Acquire),
            max_in_flight: self.config.max_in_flight as u64,
            per_table_tokens: self.config.per_table_tokens as u64,
            tables: self.catalog.len() as u64,
            reactor_queue_depth: self.reactor_queue.load(Ordering::Relaxed).max(0) as u64,
            reactor_threads: self.config.resolved_reactor_threads() as u64,
            dispatch_threads: self.config.resolved_dispatch_threads() as u64,
            uptime_ms: self.obs.uptime_ms(),
            explain_requests: self.obs.explain_requests.get(),
            explain_batch_requests: self.obs.explain_batch_requests.get(),
            stats_requests: self.obs.stats_requests.get(),
            tables_requests: self.obs.tables_requests.get(),
            metrics_requests: self.obs.metrics_requests.get(),
            trace_requests: self.obs.trace_requests.get(),
        }
    }

    /// The observability surface (registry, tracer, native histograms).
    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A fresh engine snapshot — from the cached wrapper when present, so
    /// the answer-cache counters are live rather than all-zero.
    fn engine_stats(&self) -> wtq_core::EngineStats {
        match &self.cached {
            Some(cached) => cached.stats(),
            None => self.engine.stats(),
        }
    }

    /// Whether graceful shutdown has begun.
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Count one accepted connection (monotonic).
    pub(crate) fn count_connection(&self) {
        self.counters.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was registered with a reactor (gauge up).
    pub(crate) fn note_connection_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection left its reactor (gauge down).
    pub(crate) fn note_connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Track the reactor command-queue depth gauge.
    pub(crate) fn note_reactor_queue(&self, delta: i64) {
        self.reactor_queue.fetch_add(delta, Ordering::Relaxed);
    }

    /// Count a protocol-level error response.
    pub(crate) fn count_protocol_error(&self) {
        self.counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_http_request(&self) {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn max_frame_len(&self) -> u32 {
        self.config.max_frame_len
    }

    fn admission_timeout(&self) -> Duration {
        Duration::from_millis(self.config.admission_timeout_ms)
    }

    /// Answer one typed request body — the dispatch core shared by the
    /// framed protocol and the HTTP adapter. Engine work runs under
    /// `catch_unwind`, so a panicking job becomes an `Internal` error
    /// response instead of killing the connection handler (and is invisible
    /// to the accept loop either way). `trace` is the request's sampled
    /// trace, when it drew a sampling slot — handlers append stage spans
    /// to it.
    pub(crate) fn handle_request(
        &self,
        body: RequestBody,
        trace: &mut Option<RequestTrace>,
    ) -> Reply {
        match body {
            RequestBody::ListTables => {
                self.obs.tables_requests.inc();
                if let Some(trace) = trace {
                    trace.set_endpoint("tables");
                }
                Reply::Full(ResponseBody::Tables(TablesBody {
                    tables: self.catalog.summaries(),
                }))
            }
            RequestBody::Stats => {
                self.obs.stats_requests.inc();
                if let Some(trace) = trace {
                    trace.set_endpoint("stats");
                }
                Reply::Full(ResponseBody::Stats(Box::new(StatsBody {
                    // The cached wrapper's snapshot carries the answer-cache
                    // counters; a bare engine reports them all-zero.
                    engine: self.engine_stats(),
                    server: self.server_stats(),
                })))
            }
            RequestBody::Metrics => {
                self.obs.metrics_requests.inc();
                if let Some(trace) = trace {
                    trace.set_endpoint("metrics");
                }
                Reply::Full(ResponseBody::Metrics(MetricsBody {
                    text: self.obs.render(&self.engine_stats(), &self.server_stats()),
                }))
            }
            RequestBody::TraceRecent => {
                self.obs.trace_requests.inc();
                if let Some(trace) = trace {
                    trace.set_endpoint("trace");
                }
                let (recent, slowest) = self.obs.tracer().snapshot();
                Reply::Full(ResponseBody::TraceRecent(TraceRecentBody {
                    sample_period: self.obs.tracer().period(),
                    sampled: self.obs.tracer().sampled(),
                    recent,
                    slowest,
                }))
            }
            RequestBody::Explain(request) => {
                self.obs.explain_requests.inc();
                if let Some(trace) = trace {
                    trace.set_endpoint("explain");
                    trace.set_detail(format!("{} @ {}", request.question, request.table));
                }
                self.handle_explain(request, trace)
            }
            RequestBody::ExplainBatch(batch) => {
                self.obs.explain_batch_requests.inc();
                if let Some(trace) = trace {
                    trace.set_endpoint("explain_batch");
                    trace.set_detail(format!("{} questions", batch.requests.len()));
                }
                Reply::Full(self.handle_batch(batch, trace))
            }
        }
    }

    /// Answer an explain request from a completed flight's value: the
    /// encode-once path hands back the bytes serialized at completion;
    /// with `encode_once` off the response is rebuilt from the candidates
    /// (the pre-PR-10 behavior, kept for A/B benchmarking).
    fn explanation_reply(
        &self,
        question: String,
        table_name: String,
        value: &CachedAnswer,
        table: &wtq_table::Table,
    ) -> Reply {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        if self.config.encode_once {
            Reply::CachedExplanation {
                body: Arc::clone(value.body()),
                question,
                table: table_name,
            }
        } else {
            Reply::Full(ResponseBody::Explanation(WireExplanation::from_candidates(
                &question,
                &table_name,
                value.candidates(),
                table,
            )))
        }
    }

    fn handle_explain(&self, request: ExplainBody, trace: &mut Option<RequestTrace>) -> Reply {
        // Table resolution and the cache probe run *before* the in-flight
        // gate, control-plane-style: a request the cache can answer (or
        // reject as unknown) must never bounce off `Overloaded`, so
        // clients never receive a `retry_after_ms` hint for an answer the
        // server already holds.
        let Some(table) = self.catalog.get(&request.table) else {
            return Reply::Full(ResponseBody::Error(WireError::new(
                ErrorCode::UnknownTable,
                format!("unknown table: {}", request.table),
            )));
        };
        let probe_start = Instant::now();
        let key = self
            .cached
            .as_ref()
            .map(|cached| cached.key_for(&request.question, table, request.top_k));
        let probed = match (&self.cached, &key) {
            (Some(cached), Some(key)) => cached.probe(key),
            _ => None,
        };
        let probe_end = Instant::now();
        self.obs
            .stage_cache_probe
            .observe(span_ns(probe_start, probe_end));
        if let Some(trace) = trace.as_mut() {
            trace.record("cache_probe", probe_start, probe_end);
        }
        if let Some(value) = probed {
            return self.explanation_reply(request.question, request.table, &value, table);
        }
        let admit_start = Instant::now();
        let Some(_slot) = self.try_admit() else {
            return Reply::Full(self.overloaded());
        };
        let fingerprint = table.fingerprint();
        let Some(_share) = self.admission.try_occupy(vec![fingerprint]) else {
            return Reply::Full(self.table_busy());
        };
        // Join or lead the single-flight before blocking on execution
        // tokens: concurrent identical requests collapse onto one leader's
        // engine run, receiving its answer without claiming tokens of
        // their own (they do hold queue slots — collapsed waiters are
        // still bounded load).
        let flight = match (&self.cached, key) {
            (Some(cached), Some(key)) => match cached.begin(&key) {
                Begin::Hit(value) | Begin::Collapsed(value) => {
                    return self.explanation_reply(request.question, request.table, &value, table);
                }
                Begin::Lead(guard) => Some(guard),
            },
            _ => None,
        };
        // From here on, every early return drops `flight`, abandoning it —
        // collapsed waiters wake and retry as leaders, degrading to
        // exactly the uncached behavior instead of hanging.
        let _tokens = match self.admission.acquire(
            vec![fingerprint],
            1,
            self.admission_timeout(),
            &self.shutdown,
        ) {
            Acquire::Acquired(tokens) => tokens,
            Acquire::TimedOut => return Reply::Full(self.table_busy()),
            Acquire::ShuttingDown => {
                return Reply::Full(ResponseBody::Error(WireError::new(
                    ErrorCode::Internal,
                    "server shutting down",
                )))
            }
        };
        let admit_end = Instant::now();
        self.obs
            .stage_admission_wait
            .observe(span_ns(admit_start, admit_end));
        if let Some(trace) = trace.as_mut() {
            trace.record("admission_wait", admit_start, admit_end);
        }
        let top_k = request.top_k.unwrap_or(self.engine.config().top_k);
        let explained = catch_unwind(AssertUnwindSafe(|| match (self.cached.as_ref(), flight) {
            (Some(cached), Some(guard)) => {
                cached.execute_flight(guard, &request.question, table, top_k)
            }
            // Without a cache the candidates still serialize here, once,
            // on the worker that computed them — the encode-once path is
            // the same either way, only nothing is retained.
            _ => Arc::new(CachedCandidates::new(
                self.engine
                    .explain_question(&request.question, table, top_k),
                table,
            )),
        }));
        let eval_end = Instant::now();
        self.obs.stage_eval.observe(span_ns(admit_end, eval_end));
        if let Some(trace) = trace.as_mut() {
            trace.record("eval", admit_end, eval_end);
        }
        // The parse pipeline ran inline on this thread (unless the cache
        // or single-flight answered); always *take* its last-parse spans so
        // a stale breakdown can never be attributed to a later request.
        if let Some(parse) = wtq_parser::take_last_parse_stats() {
            self.obs.observe_parse(&parse);
            if let Some(trace) = trace.as_mut() {
                record_parse_spans(trace, admit_end, &parse);
            }
        }
        match explained {
            Ok(value) => self.explanation_reply(request.question, request.table, &value, table),
            Err(_) => Reply::Full(ResponseBody::Error(WireError::new(
                ErrorCode::Internal,
                "explanation job panicked",
            ))),
        }
    }

    fn handle_batch(
        &self,
        batch: ExplainBatchBody,
        trace: &mut Option<RequestTrace>,
    ) -> ResponseBody {
        if batch.requests.len() > self.config.max_batch {
            return ResponseBody::Error(WireError::new(
                ErrorCode::BatchTooLarge,
                format!(
                    "batch of {} exceeds the {}-question limit",
                    batch.requests.len(),
                    self.config.max_batch
                ),
            ));
        }
        let requests: Vec<ExplainRequest> = batch
            .requests
            .into_iter()
            .map(|request| ExplainRequest {
                question: request.question,
                table: request.table,
                top_k: request.top_k,
            })
            .collect();

        if let Some(cached) = &self.cached {
            // Probe every item before any gate: cached items cost no
            // admission weight, and a fully-cached batch (like a scalar
            // cache hit) skips the in-flight queue entirely — it can
            // never be rejected with a retry hint.
            let plan = cached.plan_batch(&self.catalog, &requests);
            if plan.is_fully_cached() {
                let eval_start = Instant::now();
                let result = cached.execute_batch(plan, &self.catalog, &requests, &self.cancel);
                self.observe_batch_eval(eval_start, trace);
                return self.batch_response(result);
            }
            let admit_start = Instant::now();
            let Some(_slot) = self.try_admit() else {
                return self.overloaded();
            };
            // Admission tokens only for tables that still *execute*;
            // weight scales with the deduplicated misses, not the batch
            // size, so a mostly-cached batch claims proportionally little.
            let mut fingerprints: Vec<u64> = plan
                .pending_request_indices()
                .filter_map(|index| self.catalog.get(&requests[index].table))
                .map(|table| table.fingerprint())
                .collect();
            fingerprints.sort_unstable();
            fingerprints.dedup();
            let Some(_share) = self.admission.try_occupy(fingerprints.clone()) else {
                return self.table_busy();
            };
            let weight = self.engine.config().workers.clamp(1, plan.missing().max(1));
            let _tokens = match self.admission.acquire(
                fingerprints,
                weight,
                self.admission_timeout(),
                &self.shutdown,
            ) {
                Acquire::Acquired(tokens) => tokens,
                Acquire::TimedOut => return self.table_busy(),
                Acquire::ShuttingDown => {
                    return ResponseBody::Error(WireError::new(
                        ErrorCode::Internal,
                        "server shutting down",
                    ))
                }
            };
            let eval_start = self.observe_batch_admission(admit_start, trace);
            let result = cached.execute_batch(plan, &self.catalog, &requests, &self.cancel);
            self.observe_batch_eval(eval_start, trace);
            return self.batch_response(result);
        }

        let admit_start = Instant::now();
        let Some(_slot) = self.try_admit() else {
            return self.overloaded();
        };
        // Admission tokens for every distinct table the batch touches;
        // unknown tables pass through (the engine answers those with a
        // per-question error, matching the direct batch path).
        let mut fingerprints: Vec<u64> = requests
            .iter()
            .filter_map(|request| self.catalog.get(&request.table))
            .map(|table| table.fingerprint())
            .collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        let Some(_share) = self.admission.try_occupy(fingerprints.clone()) else {
            return self.table_busy();
        };
        // A batch fans out over the engine's worker pool (clamped to the
        // batch size by the runtime), so it claims one token per worker it
        // will actually run — admission bounds the concurrent *work* per
        // table, not just the request count.
        let weight = self.engine.config().workers.clamp(1, requests.len().max(1));
        let _tokens = match self.admission.acquire(
            fingerprints,
            weight,
            self.admission_timeout(),
            &self.shutdown,
        ) {
            Acquire::Acquired(tokens) => tokens,
            Acquire::TimedOut => return self.table_busy(),
            Acquire::ShuttingDown => {
                return ResponseBody::Error(WireError::new(
                    ErrorCode::Internal,
                    "server shutting down",
                ))
            }
        };
        let eval_start = self.observe_batch_admission(admit_start, trace);
        let result = self
            .engine
            .explain_batch_cancellable(&self.catalog, &requests, &self.cancel);
        self.observe_batch_eval(eval_start, trace);
        self.batch_response(result)
    }

    /// Close a batch's admission-wait span and return the eval start point.
    /// (Batch parses fan out over worker threads, so batches record no
    /// per-question parse breakdown — only the coarse stage spans.)
    fn observe_batch_admission(
        &self,
        admit_start: Instant,
        trace: &mut Option<RequestTrace>,
    ) -> Instant {
        let admit_end = Instant::now();
        self.obs
            .stage_admission_wait
            .observe(span_ns(admit_start, admit_end));
        if let Some(trace) = trace.as_mut() {
            trace.record("admission_wait", admit_start, admit_end);
        }
        admit_end
    }

    /// Close a batch's eval span.
    fn observe_batch_eval(&self, eval_start: Instant, trace: &mut Option<RequestTrace>) {
        let eval_end = Instant::now();
        self.obs.stage_eval.observe(span_ns(eval_start, eval_end));
        if let Some(trace) = trace.as_mut() {
            trace.record("eval", eval_start, eval_end);
        }
    }

    /// Render a batch outcome to the wire — shared by the cached and
    /// uncached batch paths so responses are structurally identical.
    fn batch_response(&self, result: Result<Vec<Explanation>, BatchError>) -> ResponseBody {
        match result {
            Ok(explanations) => {
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Batch(WireBatch {
                    explanations: explanations
                        .iter()
                        .map(|explanation| {
                            WireExplanation::from_explanation(
                                explanation,
                                self.catalog.get(&explanation.table),
                            )
                        })
                        .collect(),
                })
            }
            Err(BatchError::Cancelled) => {
                ResponseBody::Error(WireError::new(ErrorCode::Internal, "server shutting down"))
            }
            Err(BatchError::JobPanicked { index, message }) => ResponseBody::Error(WireError::new(
                ErrorCode::Internal,
                format!("batch job {index} panicked: {message}"),
            )),
        }
    }
}

/// The serving front-end. [`Server::bind`] spawns the acceptor, the
/// reactor pool and the dispatch pool, and returns a [`ServerHandle`] for
/// observation and graceful shutdown.
pub struct Server;

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral test port) and start
    /// serving `engine` over `catalog`'s tables.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        catalog: Arc<Catalog>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let admission = TableGate::new(config.per_table_tokens, config.max_table_in_flight);
        let cached = (config.cache_capacity > 0).then(|| {
            CachedEngine::new(
                engine.clone(),
                CacheConfig {
                    capacity: config.cache_capacity,
                    ttl: (config.cache_ttl_ms > 0)
                        .then(|| Duration::from_millis(config.cache_ttl_ms)),
                    ..CacheConfig::default()
                },
            )
        });
        let obs = Obs::new(config.trace_sample_rate, config.trace_ring_size);
        let shared = Arc::new(Shared {
            engine,
            cached,
            catalog,
            config,
            in_flight: AtomicU64::new(0),
            admission,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            cancel: CancelToken::new(),
            open_connections: AtomicU64::new(0),
            reactor_queue: AtomicI64::new(0),
            obs,
        });

        let (job_sender, job_receiver) = mpsc::channel();
        let job_receiver = Arc::new(Mutex::new(job_receiver));
        let mut dispatch_threads = Vec::new();
        let mut reactors = Vec::new();
        let mut reactor_threads = Vec::new();

        let spawned = Self::spawn_layers(
            &shared,
            listener,
            &job_sender,
            &job_receiver,
            &mut dispatch_threads,
            &mut reactors,
            &mut reactor_threads,
        );
        let accept_thread = match spawned {
            Ok(accept_thread) => accept_thread,
            Err(err) => {
                // A partial failure (e.g. thread or fd exhaustion mid-way)
                // must not leak the layers already spawned: reactors get a
                // Shutdown command, and once their `jobs` Sender clones die
                // with them, dropping ours drains the dispatch pool too.
                shared.shutdown.store(true, Ordering::Release);
                for rshared in &reactors {
                    rshared.push(Command::Shutdown);
                }
                for thread in reactor_threads {
                    let _ = thread.join();
                }
                drop(job_sender);
                for thread in dispatch_threads {
                    let _ = thread.join();
                }
                return Err(err);
            }
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            reactors,
            reactor_threads,
            job_sender: Some(job_sender),
            dispatch_threads,
        })
    }

    /// Spawn the dispatch pool, the reactor pool and the acceptor, pushing
    /// every created handle into the caller's vectors so a mid-way failure
    /// leaves the caller holding everything that needs tearing down.
    #[allow(clippy::too_many_arguments)]
    fn spawn_layers(
        shared: &Arc<Shared>,
        listener: TcpListener,
        job_sender: &mpsc::Sender<reactor::Job>,
        job_receiver: &Arc<Mutex<mpsc::Receiver<reactor::Job>>>,
        dispatch_threads: &mut Vec<JoinHandle<()>>,
        reactors: &mut Vec<Arc<ReactorShared>>,
        reactor_threads: &mut Vec<JoinHandle<()>>,
    ) -> std::io::Result<JoinHandle<()>> {
        // Dispatch pool: where admission waits and engine calls block.
        for index in 0..shared.config.resolved_dispatch_threads() {
            let worker_shared = shared.clone();
            let worker_jobs = job_receiver.clone();
            dispatch_threads.push(
                std::thread::Builder::new()
                    .name(format!("wtq-dispatch-{index}"))
                    .spawn(move || reactor::dispatch_worker(worker_shared, worker_jobs))?,
            );
        }

        // Reactor pool: owns every socket.
        for index in 0..shared.config.resolved_reactor_threads() {
            let (reactor, rshared) = Reactor::new(shared.clone(), job_sender.clone())?;
            reactors.push(rshared);
            reactor_threads.push(
                std::thread::Builder::new()
                    .name(format!("wtq-reactor-{index}"))
                    .spawn(move || reactor.run())?,
            );
        }

        let accept_shared = shared.clone();
        let accept_reactors = reactors.clone();
        std::thread::Builder::new()
            .name("wtq-server-accept".to_string())
            .spawn(move || reactor::accept_loop(listener, accept_shared, accept_reactors))
    }
}

/// Handle on a running server: address, stats, graceful shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    reactors: Vec<Arc<ReactorShared>>,
    reactor_threads: Vec<JoinHandle<()>>,
    /// Dropped at shutdown so dispatch workers observe a closed channel.
    job_sender: Option<mpsc::Sender<reactor::Job>>,
    dispatch_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-chosen port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the serving counters, without a network round-trip.
    pub fn server_stats(&self) -> ServerStats {
        self.shared.server_stats()
    }

    /// Graceful shutdown: stop accepting, cancel queued batch work, unblock
    /// admission waiters, close open connections and join every layer.
    /// In-flight engine calls finish; queued batch questions do not start.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Block until the server stops (i.e. until another holder of the
    /// process calls for shutdown or the accept loop dies). Used by the
    /// `serve` binary, which runs until killed.
    pub fn wait(mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cancel.cancel();
        // Unblock accept() with a throwaway connection to our own port and
        // retire the acceptor first, so no new sockets race the reactor
        // teardown below.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // Reactors close every connection on their way out: clients
        // blocked in read() observe EOF/reset.
        for rshared in &self.reactors {
            rshared.push(Command::Shutdown);
        }
        for thread in self.reactor_threads.drain(..) {
            let _ = thread.join();
        }
        // A closed channel drains the dispatch pool; workers blocked in
        // admission observe the shutdown flag within its poll interval.
        drop(self.job_sender.take());
        for thread in self.dispatch_threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some()
            || !self.reactor_threads.is_empty()
            || !self.dispatch_threads.is_empty()
        {
            self.shutdown_inner();
        }
    }
}

/// Nanoseconds between two instants (0 when `end` precedes `start`).
fn span_ns(start: Instant, end: Instant) -> u64 {
    end.saturating_duration_since(start).as_nanos() as u64
}

/// Attach one parse's stage breakdown as sub-spans of the `eval` span.
/// The stages run sequentially, so laying their durations back-to-back
/// from the eval start reconstructs the real timeline (any unattributed
/// eval time — SQL translation, highlight rendering — trails at the end).
fn record_parse_spans(
    trace: &mut RequestTrace,
    eval_start: Instant,
    parse: &wtq_parser::ParseStats,
) {
    let base = eval_start
        .saturating_duration_since(trace.started())
        .as_nanos() as u64;
    let mut offset = 0u64;
    for (name, ns) in [
        ("parse:tokenize", parse.tokenize_ns),
        ("parse:lexicon", parse.lexicon_ns),
        ("parse:candidates", parse.candidates_ns),
        ("parse:eval", parse.eval_ns),
        ("parse:features", parse.features_ns),
        ("parse:score", parse.score_ns),
    ] {
        trace.record_ns(name, base + offset, ns);
        offset += ns;
    }
}

/// Decode one frame payload into a request and answer it. Decode failures
/// become structured `Malformed`/`UnsupportedVersion` errors.
pub(crate) fn dispatch_frame(
    shared: &Shared,
    payload: &[u8],
    trace: &mut Option<RequestTrace>,
) -> FrameResponse {
    let text = match std::str::from_utf8(payload) {
        Ok(text) => text,
        Err(_) => {
            shared.count_protocol_error();
            return FrameResponse::Full(error_envelope(
                0,
                ErrorCode::Malformed,
                "frame payload is not UTF-8",
            ));
        }
    };
    let envelope: RequestEnvelope = match serde_json::from_str(text) {
        Ok(envelope) => envelope,
        Err(err) => {
            shared.count_protocol_error();
            return FrameResponse::Full(error_envelope(
                0,
                ErrorCode::Malformed,
                format!("invalid request: {err}"),
            ));
        }
    };
    if envelope.v != wire::PROTOCOL_VERSION {
        shared.count_protocol_error();
        return FrameResponse::Full(error_envelope(
            envelope.id,
            ErrorCode::UnsupportedVersion,
            format!(
                "protocol version {} not supported (server speaks {})",
                envelope.v,
                wire::PROTOCOL_VERSION
            ),
        ));
    }
    let id = envelope.id;
    match shared.handle_request(envelope.body, trace) {
        Reply::Full(body) => FrameResponse::Full(ResponseEnvelope {
            v: wire::PROTOCOL_VERSION,
            id,
            body,
        }),
        Reply::CachedExplanation {
            question,
            table,
            body,
        } => FrameResponse::Cached {
            id,
            question,
            table,
            body,
        },
    }
}

pub(crate) fn error_envelope(
    id: u64,
    code: ErrorCode,
    message: impl Into<String>,
) -> ResponseEnvelope {
    ResponseEnvelope {
        v: wire::PROTOCOL_VERSION,
        id,
        body: ResponseBody::Error(WireError::new(code, message)),
    }
}
