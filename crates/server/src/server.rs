//! The serving layer: accept loop, per-connection protocol handling,
//! backpressure and per-table admission control over a shared
//! [`Engine`](wtq_core::Engine).
//!
//! ## Scheduling model
//!
//! Every data-plane request (`Explain`, `ExplainBatch`) must first take a
//! slot in the **bounded in-flight queue** (`max_in_flight`). When the queue
//! is full the request is *rejected immediately* with
//! [`ErrorCode::Overloaded`] and a `retry_after_ms` hint — the server never
//! buffers without bound, so memory under overload stays flat and clients
//! get explicit backpressure instead of unbounded latency. `ListTables` and
//! `Stats` are control-plane: they bypass the queue so operators can observe
//! an overloaded server.
//!
//! Holding a slot, the request then passes **per-table admission control**
//! (two layers, see [`TableGate`]): the table must be below its share of
//! the in-flight queue (`max_table_in_flight`, rejected with a retry hint
//! otherwise — a hot table's waiters must not fill the whole queue), and
//! at most `per_table_tokens` requests may execute concurrently against
//! tables sharing one shape fingerprint ([`wtq_table::Table::fingerprint`]).
//! Excess requests for a hot (or giant) table wait within their bounded
//! share while requests for other tables keep executing, so one table
//! cannot starve the pool.
//!
//! ## Protocols
//!
//! Connections are sniffed on their first four bytes: an HTTP method prefix
//! selects the hand-rolled HTTP/1.1 adapter ([`crate::http`]); anything else
//! is treated as the length-prefix of the framed JSON protocol
//! ([`crate::wire`]). The two share one dispatch core, so semantics
//! (backpressure, admission, errors) are identical.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use wtq_core::{Engine, ExplainRequest};
use wtq_runtime::{BatchError, CancelToken};
use wtq_table::Catalog;

use crate::http;
use crate::wire::{
    self, ErrorCode, ExplainBatchBody, ExplainBody, FrameError, RequestBody, RequestEnvelope,
    ResponseBody, ResponseEnvelope, ServerStats, StatsBody, TablesBody, WireBatch, WireError,
    WireExplanation,
};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound on concurrently admitted data-plane requests; a full queue
    /// rejects with [`ErrorCode::Overloaded`].
    pub max_in_flight: usize,
    /// Concurrent executions allowed per table shape fingerprint.
    pub per_table_tokens: usize,
    /// Bound on the share of the in-flight queue one table may occupy
    /// (executing + waiting); a table over its share rejects with
    /// [`ErrorCode::Overloaded`] so a hot table cannot fill the whole
    /// queue and starve the others. Clamped to at least
    /// `per_table_tokens`.
    pub max_table_in_flight: usize,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
    /// Maximum questions per `ExplainBatch` request.
    pub max_batch: usize,
    /// The `retry_after_ms` hint attached to overload rejections.
    pub retry_after_ms: u64,
    /// Upper bound on how long a request may wait for its table's
    /// execution tokens before being rejected with a retry hint — caps
    /// worst-case latency and guarantees a contended multi-token batch
    /// cannot hang its client forever.
    pub admission_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_in_flight: 64,
            per_table_tokens: 4,
            max_table_in_flight: 16,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
            max_batch: 256,
            retry_after_ms: 50,
            admission_timeout_ms: 30_000,
        }
    }
}

/// Monotonic serving counters (see [`ServerStats`]).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    http_requests: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_table_busy: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Counters of one admission gate, both keyed by table shape fingerprint
/// and guarded by the gate's single mutex.
#[derive(Debug, Default)]
struct GateState {
    /// Requests currently *executing* against each table (≤ `tokens`).
    executing: HashMap<u64, usize>,
    /// Requests currently *occupying an in-flight slot* for each table —
    /// executing or waiting for a token (≤ `max_queued`).
    queued: HashMap<u64, usize>,
}

fn count_of(map: &HashMap<u64, usize>, fingerprint: u64) -> usize {
    map.get(&fingerprint).copied().unwrap_or(0)
}

fn decrement(map: &mut HashMap<u64, usize>, fingerprint: u64, amount: usize) {
    if let Some(count) = map.get_mut(&fingerprint) {
        *count = count.saturating_sub(amount);
        if *count == 0 {
            map.remove(&fingerprint);
        }
    }
}

/// Per-table admission control, two-layered:
///
/// * **Occupancy** ([`TableGate::try_occupy`], non-blocking): bounds how
///   many in-flight-queue slots one table may hold at once (executing *or*
///   waiting). Without this, a hot table's waiters would fill the entire
///   bounded queue and every other table's requests would bounce off
///   `Overloaded` — exactly the cross-table starvation admission control
///   exists to prevent.
/// * **Execution tokens** ([`TableGate::acquire`], blocking): at most
///   `tokens` requests execute concurrently per table. Tokens are claimed
///   **incrementally in ascending fingerprint order** — the classic
///   hierarchical-locking order, so multi-table batches cannot deadlock
///   against each other, and a batch *camps* on the tokens it already
///   holds, so sustained single-table traffic cannot livelock it out of
///   ever seeing all its tables free at once.
#[derive(Debug)]
struct TableGate {
    tokens: usize,
    max_queued: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

impl TableGate {
    fn new(tokens: usize, max_queued: usize) -> TableGate {
        let tokens = tokens.max(1);
        TableGate {
            tokens,
            // A queue share below the execution bound could never fill it.
            max_queued: max_queued.max(tokens),
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// Claim one in-flight-queue share per fingerprint, all-or-nothing and
    /// without blocking. `None` when any of the tables has exhausted its
    /// share — the caller rejects with a retry hint.
    fn try_occupy(&self, fingerprints: Vec<u64>) -> Option<OccupancyGuard<'_>> {
        let mut state = self.state.lock().expect("table gate poisoned");
        if fingerprints
            .iter()
            .any(|&fp| count_of(&state.queued, fp) >= self.max_queued)
        {
            return None;
        }
        for fp in &fingerprints {
            *state.queued.entry(*fp).or_insert(0) += 1;
        }
        Some(OccupancyGuard {
            gate: self,
            fingerprints,
        })
    }

    /// Claim `weight` execution tokens per fingerprint (clamped to the
    /// per-table bound), blocking as needed — a batch that fans out over an
    /// N-worker engine pool claims N tokens, so admission bounds the
    /// *work* hitting a table, not just the request count. `fingerprints`
    /// must be sorted ascending and deduplicated. The wait is bounded by
    /// `timeout` so a contended multi-token request cannot hang its client
    /// forever; tokens already claimed are released on both timeout and
    /// shutdown.
    fn acquire<'a>(
        &'a self,
        fingerprints: Vec<u64>,
        weight: usize,
        timeout: Duration,
        shutdown: &AtomicBool,
    ) -> Acquire<'a> {
        debug_assert!(fingerprints.windows(2).all(|pair| pair[0] < pair[1]));
        let weight = weight.clamp(1, self.tokens);
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().expect("table gate poisoned");
        let mut held = 0;
        while held < fingerprints.len() {
            let bail = if shutdown.load(Ordering::Acquire) {
                Some(Acquire::ShuttingDown)
            } else if std::time::Instant::now() >= deadline {
                Some(Acquire::TimedOut)
            } else {
                None
            };
            if let Some(outcome) = bail {
                for &fp in &fingerprints[..held] {
                    decrement(&mut state.executing, fp, weight);
                }
                drop(state);
                self.freed.notify_all();
                return outcome;
            }
            let next = fingerprints[held];
            if count_of(&state.executing, next) + weight <= self.tokens {
                *state.executing.entry(next).or_insert(0) += weight;
                held += 1;
                continue;
            }
            // Re-check the shutdown flag and the deadline periodically:
            // shutdown() cannot know which condvars have waiters.
            let (guard, _timeout) = self
                .freed
                .wait_timeout(state, Duration::from_millis(50))
                .expect("table gate poisoned");
            state = guard;
        }
        Acquire::Acquired(TableGuard {
            gate: self,
            fingerprints,
            weight,
        })
    }
}

/// Outcome of [`TableGate::acquire`].
enum Acquire<'a> {
    /// Tokens claimed; released when the guard drops.
    Acquired(TableGuard<'a>),
    /// The admission timeout elapsed — reject with a retry hint.
    TimedOut,
    /// The server is shutting down.
    ShuttingDown,
}

/// RAII release of claimed in-flight-queue shares.
struct OccupancyGuard<'a> {
    gate: &'a TableGate,
    fingerprints: Vec<u64>,
}

impl Drop for OccupancyGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("table gate poisoned");
        for &fp in &self.fingerprints {
            decrement(&mut state.queued, fp, 1);
        }
    }
}

/// RAII release of claimed execution tokens.
struct TableGuard<'a> {
    gate: &'a TableGate,
    fingerprints: Vec<u64>,
    weight: usize,
}

impl Drop for TableGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("table gate poisoned");
        for &fp in &self.fingerprints {
            decrement(&mut state.executing, fp, self.weight);
        }
        drop(state);
        self.gate.freed.notify_all();
    }
}

/// RAII slot in the bounded in-flight queue.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// State shared between the accept loop, connection handlers and the
/// [`ServerHandle`].
pub(crate) struct Shared {
    engine: Arc<Engine>,
    catalog: Arc<Catalog>,
    config: ServerConfig,
    in_flight: AtomicU64,
    admission: TableGate,
    counters: Counters,
    shutdown: AtomicBool,
    cancel: CancelToken,
    /// Clones of live connections (for shutdown), keyed by a connection id
    /// so each handler can drop its entry on exit — a lingering clone would
    /// otherwise hold the socket open past the handler (no EOF for the
    /// peer) and grow without bound on a long-lived server.
    connections: Mutex<HashMap<u64, TcpStream>>,
}

impl Shared {
    /// Take a slot in the bounded in-flight queue, or `None` when full.
    fn try_admit(&self) -> Option<InFlightGuard<'_>> {
        let cap = self.config.max_in_flight as u64;
        let mut current = self.in_flight.load(Ordering::Acquire);
        loop {
            if current >= cap {
                return None;
            }
            match self.in_flight.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(InFlightGuard(&self.in_flight)),
                Err(observed) => current = observed,
            }
        }
    }

    /// The overload rejection, with the configured retry hint.
    fn overloaded(&self) -> ResponseBody {
        self.counters
            .rejected_overload
            .fetch_add(1, Ordering::Relaxed);
        ResponseBody::Error(WireError {
            code: ErrorCode::Overloaded,
            message: format!(
                "in-flight queue full ({} requests)",
                self.config.max_in_flight
            ),
            retry_after_ms: Some(self.config.retry_after_ms),
        })
    }

    /// The per-table queue-share rejection (still retryable by the client,
    /// hence the same `Overloaded` code with a retry hint).
    fn table_busy(&self) -> ResponseBody {
        self.counters
            .rejected_table_busy
            .fetch_add(1, Ordering::Relaxed);
        ResponseBody::Error(WireError {
            code: ErrorCode::Overloaded,
            message: format!(
                "table's in-flight queue share full ({} requests per table)",
                self.admission.max_queued
            ),
            retry_after_ms: Some(self.config.retry_after_ms),
        })
    }

    /// Current serving counters.
    pub(crate) fn server_stats(&self) -> ServerStats {
        ServerStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            http_requests: self.counters.http_requests.load(Ordering::Relaxed),
            rejected_overload: self.counters.rejected_overload.load(Ordering::Relaxed),
            rejected_table_busy: self.counters.rejected_table_busy.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Acquire),
            max_in_flight: self.config.max_in_flight as u64,
            per_table_tokens: self.config.per_table_tokens as u64,
            tables: self.catalog.len() as u64,
        }
    }

    /// Count a protocol-level error response.
    pub(crate) fn count_protocol_error(&self) {
        self.counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_http_request(&self) {
        self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn max_frame_len(&self) -> u32 {
        self.config.max_frame_len
    }

    fn admission_timeout(&self) -> Duration {
        Duration::from_millis(self.config.admission_timeout_ms)
    }

    /// Answer one typed request body — the dispatch core shared by the
    /// framed protocol and the HTTP adapter. Engine work runs under
    /// `catch_unwind`, so a panicking job becomes an `Internal` error
    /// response instead of killing the connection handler (and is invisible
    /// to the accept loop either way).
    pub(crate) fn handle_request(&self, body: RequestBody) -> ResponseBody {
        match body {
            RequestBody::ListTables => ResponseBody::Tables(TablesBody {
                tables: self.catalog.summaries(),
            }),
            RequestBody::Stats => ResponseBody::Stats(StatsBody {
                engine: self.engine.stats(),
                server: self.server_stats(),
            }),
            RequestBody::Explain(request) => self.handle_explain(request),
            RequestBody::ExplainBatch(batch) => self.handle_batch(batch),
        }
    }

    fn handle_explain(&self, request: ExplainBody) -> ResponseBody {
        let Some(_slot) = self.try_admit() else {
            return self.overloaded();
        };
        let Some(table) = self.catalog.get(&request.table) else {
            return ResponseBody::Error(WireError::new(
                ErrorCode::UnknownTable,
                format!("unknown table: {}", request.table),
            ));
        };
        let fingerprint = table.fingerprint();
        let Some(_share) = self.admission.try_occupy(vec![fingerprint]) else {
            return self.table_busy();
        };
        let _tokens = match self.admission.acquire(
            vec![fingerprint],
            1,
            self.admission_timeout(),
            &self.shutdown,
        ) {
            Acquire::Acquired(tokens) => tokens,
            Acquire::TimedOut => return self.table_busy(),
            Acquire::ShuttingDown => {
                return ResponseBody::Error(WireError::new(
                    ErrorCode::Internal,
                    "server shutting down",
                ))
            }
        };
        let top_k = request.top_k.unwrap_or(self.engine.config().top_k);
        let explained = catch_unwind(AssertUnwindSafe(|| {
            self.engine
                .explain_question(&request.question, table, top_k)
        }));
        match explained {
            Ok(candidates) => {
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Explanation(WireExplanation::from_candidates(
                    &request.question,
                    &request.table,
                    &candidates,
                    table,
                ))
            }
            Err(_) => ResponseBody::Error(WireError::new(
                ErrorCode::Internal,
                "explanation job panicked",
            )),
        }
    }

    fn handle_batch(&self, batch: ExplainBatchBody) -> ResponseBody {
        if batch.requests.len() > self.config.max_batch {
            return ResponseBody::Error(WireError::new(
                ErrorCode::BatchTooLarge,
                format!(
                    "batch of {} exceeds the {}-question limit",
                    batch.requests.len(),
                    self.config.max_batch
                ),
            ));
        }
        let Some(_slot) = self.try_admit() else {
            return self.overloaded();
        };
        // Admission tokens for every distinct table the batch touches;
        // unknown tables pass through (the engine answers those with a
        // per-question error, matching the direct batch path).
        let mut fingerprints: Vec<u64> = batch
            .requests
            .iter()
            .filter_map(|request| self.catalog.get(&request.table))
            .map(|table| table.fingerprint())
            .collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        let Some(_share) = self.admission.try_occupy(fingerprints.clone()) else {
            return self.table_busy();
        };
        // A batch fans out over the engine's worker pool (clamped to the
        // batch size by the runtime), so it claims one token per worker it
        // will actually run — admission bounds the concurrent *work* per
        // table, not just the request count.
        let weight = self
            .engine
            .config()
            .workers
            .clamp(1, batch.requests.len().max(1));
        let _tokens = match self.admission.acquire(
            fingerprints,
            weight,
            self.admission_timeout(),
            &self.shutdown,
        ) {
            Acquire::Acquired(tokens) => tokens,
            Acquire::TimedOut => return self.table_busy(),
            Acquire::ShuttingDown => {
                return ResponseBody::Error(WireError::new(
                    ErrorCode::Internal,
                    "server shutting down",
                ))
            }
        };
        let requests: Vec<ExplainRequest> = batch
            .requests
            .into_iter()
            .map(|request| ExplainRequest {
                question: request.question,
                table: request.table,
                top_k: request.top_k,
            })
            .collect();
        match self
            .engine
            .explain_batch_cancellable(&self.catalog, &requests, &self.cancel)
        {
            Ok(explanations) => {
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                ResponseBody::Batch(WireBatch {
                    explanations: explanations
                        .iter()
                        .map(|explanation| {
                            WireExplanation::from_explanation(
                                explanation,
                                self.catalog.get(&explanation.table),
                            )
                        })
                        .collect(),
                })
            }
            Err(BatchError::Cancelled) => {
                ResponseBody::Error(WireError::new(ErrorCode::Internal, "server shutting down"))
            }
            Err(BatchError::JobPanicked { index, message }) => ResponseBody::Error(WireError::new(
                ErrorCode::Internal,
                format!("batch job {index} panicked: {message}"),
            )),
        }
    }
}

/// The serving front-end. [`Server::bind`] starts the accept loop on a
/// background thread and returns a [`ServerHandle`] for observation and
/// graceful shutdown.
pub struct Server;

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral test port) and start
    /// serving `engine` over `catalog`'s tables.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        catalog: Arc<Catalog>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let admission = TableGate::new(config.per_table_tokens, config.max_table_in_flight);
        let shared = Arc::new(Shared {
            engine,
            catalog,
            config,
            in_flight: AtomicU64::new(0),
            admission,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            cancel: CancelToken::new(),
            connections: Mutex::new(HashMap::new()),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("wtq-server-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Handle on a running server: address, stats, graceful shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-chosen port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the serving counters, without a network round-trip.
    pub fn server_stats(&self) -> ServerStats {
        self.shared.server_stats()
    }

    /// Graceful shutdown: stop accepting, cancel queued batch work, unblock
    /// admission waiters, close open connections and join the accept loop.
    /// In-flight engine calls finish; queued batch questions do not start.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Block until the server stops (i.e. until another holder of the
    /// process calls for shutdown or the accept loop dies). Used by the
    /// `serve` binary, which runs until killed.
    pub fn wait(mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cancel.cancel();
        // Close every open connection: handlers blocked in read() observe
        // EOF/reset and exit.
        for stream in self
            .shared
            .connections
            .lock()
            .expect("connection list poisoned")
            .values()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Unblock accept() with a throwaway connection to our own port.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

/// The accept loop: one handler thread per connection. Handler panics are
/// confined to their thread (and the dispatch core additionally catches
/// unwinds), so nothing here can take the loop down short of the listener
/// itself failing.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_connection_id: u64 = 0;
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if shared.shutdown.load(Ordering::Acquire) => break,
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) would
                // otherwise busy-spin this thread at 100% CPU.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let connection_id = next_connection_id;
        next_connection_id += 1;
        // Register the connection *before* checking the shutdown flag: the
        // flag store and the map iteration in `shutdown_inner` bracket a
        // lock of the same mutex, so either this insert is visible to
        // shutdown (which closes the stream) or the load below observes the
        // flag — a connection can never slip between the two and leave a
        // handler blocked in read() past shutdown.
        if let Ok(clone) = stream.try_clone() {
            shared
                .connections
                .lock()
                .expect("connection list poisoned")
                .insert(connection_id, clone);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = stream.shutdown(Shutdown::Both);
            shared
                .connections
                .lock()
                .expect("connection list poisoned")
                .remove(&connection_id);
            break;
        }
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let handler_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("wtq-server-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &handler_shared);
                // Drop the shutdown clone so the socket actually closes
                // with the handler (the HTTP adapter relies on the EOF).
                handler_shared
                    .connections
                    .lock()
                    .expect("connection list poisoned")
                    .remove(&connection_id);
            });
        match spawned {
            Ok(handle) => handlers.push(handle),
            Err(_) => {
                // Thread exhaustion: the closure (and its stream) is gone,
                // but the registered clone would keep the socket open and
                // the peer waiting forever. Close and deregister it.
                let mut connections = shared.connections.lock().expect("connection list poisoned");
                if let Some(clone) = connections.remove(&connection_id) {
                    let _ = clone.shutdown(Shutdown::Both);
                }
            }
        }
        // Reap finished handlers so long-lived servers don't accumulate
        // join handles.
        handlers.retain(|handle| !handle.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Methods whose first four bytes select the HTTP adapter.
const HTTP_PREFIXES: [&[u8; 4]; 6] = [b"GET ", b"POST", b"PUT ", b"HEAD", b"DELE", b"OPTI"];

/// Sniff the protocol from the first four bytes, then run the matching
/// handler until the peer disconnects.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let first = match wire::read_prefix(&mut stream) {
        Ok(first) => first,
        Err(_) => return, // closed or torn before the protocol was even chosen
    };
    if HTTP_PREFIXES.contains(&&first) {
        http::handle_http(&mut stream, shared, first);
        return;
    }
    framed_loop(&mut stream, shared, Some(first));
}

/// The framed JSON protocol: read a frame, dispatch, answer, repeat.
fn framed_loop(stream: &mut TcpStream, shared: &Shared, mut sniffed: Option<[u8; 4]>) {
    loop {
        let payload = match sniffed.take() {
            Some(prefix) => {
                wire::read_frame_after_prefix(stream, prefix, shared.config.max_frame_len)
            }
            None => wire::read_frame(stream, shared.config.max_frame_len),
        };
        let payload = match payload {
            Ok(payload) => payload,
            Err(FrameError::TooLarge { declared, max }) => {
                // Answer, then close: the unread payload makes the stream
                // position untrustworthy.
                shared.count_protocol_error();
                let response = ResponseEnvelope {
                    v: wire::PROTOCOL_VERSION,
                    id: 0,
                    body: ResponseBody::Error(WireError::new(
                        ErrorCode::FrameTooLarge,
                        format!("frame of {declared} bytes exceeds the {max}-byte limit"),
                    )),
                };
                let _ = send_response(stream, &response);
                return;
            }
            Err(_) => return, // closed, truncated or I/O error: drop quietly
        };
        let response = dispatch_frame(shared, &payload);
        if send_response(stream, &response).is_err() {
            return;
        }
    }
}

/// Decode one frame payload into a request and answer it. Decode failures
/// become structured `Malformed`/`UnsupportedVersion` errors.
fn dispatch_frame(shared: &Shared, payload: &[u8]) -> ResponseEnvelope {
    let text = match std::str::from_utf8(payload) {
        Ok(text) => text,
        Err(_) => {
            shared.count_protocol_error();
            return error_envelope(0, ErrorCode::Malformed, "frame payload is not UTF-8");
        }
    };
    let envelope: RequestEnvelope = match serde_json::from_str(text) {
        Ok(envelope) => envelope,
        Err(err) => {
            shared.count_protocol_error();
            return error_envelope(0, ErrorCode::Malformed, format!("invalid request: {err}"));
        }
    };
    if envelope.v != wire::PROTOCOL_VERSION {
        shared.count_protocol_error();
        return error_envelope(
            envelope.id,
            ErrorCode::UnsupportedVersion,
            format!(
                "protocol version {} not supported (server speaks {})",
                envelope.v,
                wire::PROTOCOL_VERSION
            ),
        );
    }
    ResponseEnvelope {
        v: wire::PROTOCOL_VERSION,
        id: envelope.id,
        body: shared.handle_request(envelope.body),
    }
}

fn error_envelope(id: u64, code: ErrorCode, message: impl Into<String>) -> ResponseEnvelope {
    ResponseEnvelope {
        v: wire::PROTOCOL_VERSION,
        id,
        body: ResponseBody::Error(WireError::new(code, message)),
    }
}

fn send_response(stream: &mut TcpStream, response: &ResponseEnvelope) -> std::io::Result<()> {
    let json = serde_json::to_string(response)
        .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))?;
    wire::write_frame(stream, json.as_bytes())
}
