//! A minimal hand-rolled HTTP/1.1 adapter over the same dispatch core as
//! the framed protocol — parsed *incrementally*, so a connection that
//! dribbles its request one byte at a time costs a little buffered state,
//! never a blocked thread.
//!
//! One request per connection (`Connection: close`), JSON in and out:
//!
//! | route | body | answers with |
//! |---|---|---|
//! | `GET /stats` | — | [`ResponseBody::Stats`] |
//! | `GET /tables` | — | [`ResponseBody::Tables`] |
//! | `GET /metrics` | — | Prometheus exposition text (`text/plain`) |
//! | `GET /trace/recent` | — | [`ResponseBody::TraceRecent`] |
//! | `POST /explain` | [`ExplainBody`] JSON | [`ResponseBody::Explanation`] |
//! | `POST /explain_batch` | [`ExplainBatchBody`] JSON | [`ResponseBody::Batch`] |
//!
//! The response body is always the JSON serialization of a
//! [`ResponseBody`] — except `GET /metrics`, which unwraps the rendered
//! registry to raw `text/plain` so Prometheus can scrape it directly — so
//! HTTP clients see exactly the payloads framed clients see; status codes
//! mirror the error codes (429 + `Retry-After` for backpressure, 400 for
//! malformed input, 404 for unknown tables and routes, 413 for oversized
//! bodies, 500 for internal failures).
//!
//! [`HttpParser`] is the read half as a resumable state machine: feed it
//! socket bytes as they arrive and it yields one [`HttpRequest`] when the
//! head and `Content-Length` body are complete, or the [`HttpResponse`]
//! error to answer with (oversized head, bad `Content-Length`, body over
//! the frame limit). The write half is [`response_bytes`]; the lingering
//! close that used to block a thread is the reactor's `Draining` state.

use std::sync::Arc;

use crate::server::{Reply, Shared};
use crate::wire::{
    self, ErrorCode, ExplainBatchBody, ExplainBody, RequestBody, ResponseBody, WireError,
};

/// Bound on the request head (request line + headers).
const MAX_HEAD_LEN: usize = 16 * 1024;

/// An HTTP-level response: status line pieces plus the body.
#[derive(Debug)]
pub(crate) struct HttpResponse {
    status: u16,
    reason: &'static str,
    retry_after_ms: Option<u64>,
    content_type: &'static str,
    body: String,
}

impl HttpResponse {
    pub(crate) fn from_body(body: &ResponseBody) -> HttpResponse {
        let (status, reason, retry_after_ms) = match body {
            ResponseBody::Error(err) => status_for(err),
            _ => (200, "OK", None),
        };
        // `GET /metrics` unwraps the rendered registry to raw text so
        // a Prometheus scraper needs no JSON decoding.
        if let ResponseBody::Metrics(metrics) = body {
            return HttpResponse {
                status,
                reason,
                retry_after_ms,
                content_type: "text/plain; version=0.0.4",
                body: metrics.text.clone(),
            };
        }
        HttpResponse {
            status,
            reason,
            retry_after_ms,
            content_type: "application/json",
            body: serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string()),
        }
    }

    pub(crate) fn error(code: ErrorCode, message: impl Into<String>) -> HttpResponse {
        HttpResponse::from_body(&ResponseBody::Error(WireError::new(code, message)))
    }

    /// The HTTP status code (the trace records it as the outcome).
    pub(crate) fn status(&self) -> u16 {
        self.status
    }
}

fn status_for(err: &WireError) -> (u16, &'static str, Option<u64>) {
    match err.code {
        ErrorCode::Malformed => (400, "Bad Request", None),
        ErrorCode::UnsupportedVersion => (400, "Bad Request", None),
        ErrorCode::FrameTooLarge => (413, "Payload Too Large", None),
        ErrorCode::BatchTooLarge => (413, "Payload Too Large", None),
        ErrorCode::Overloaded => (429, "Too Many Requests", err.retry_after_ms),
        ErrorCode::UnknownTable => (404, "Not Found", None),
        ErrorCode::Internal => (500, "Internal Server Error", None),
    }
}

/// One fully received request, ready for [`route`].
#[derive(Debug)]
pub(crate) struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// The incremental read half: head accumulation (with a split-terminator
/// scan window), then `Content-Length` body accumulation.
pub(crate) struct HttpParser {
    state: ParserState,
    /// The server's frame limit, bounding the request body.
    max_body: usize,
}

enum ParserState {
    /// Accumulating the head; `scanned` marks how far the `\r\n\r\n` scan
    /// has already looked (re-checking 3 bytes of overlap for a terminator
    /// split across feeds).
    Head { head: Vec<u8>, scanned: usize },
    /// Head parsed; accumulating `content_length` body bytes.
    Body {
        method: String,
        path: String,
        content_length: usize,
        body: Vec<u8>,
    },
    /// A request was produced (one per connection) or an error answered;
    /// further bytes are the peer's leftovers, ignored here and drained by
    /// the reactor's lingering close.
    Done,
}

impl HttpParser {
    /// A parser for one request; `max_body` is the server's frame limit.
    pub(crate) fn new(max_body: usize) -> HttpParser {
        HttpParser {
            state: ParserState::Head {
                head: Vec::with_capacity(256),
                scanned: 0,
            },
            max_body,
        }
    }

    /// Feed socket bytes. `Ok(Some(request))` once the request is
    /// complete, `Ok(None)` while more bytes are needed, `Err(response)`
    /// when the request is unanswerable as asked (oversized head or body,
    /// malformed `Content-Length`) — the connection answers it and closes.
    pub(crate) fn feed(&mut self, input: &[u8]) -> Result<Option<HttpRequest>, HttpResponse> {
        match &mut self.state {
            ParserState::Head { head, scanned } => {
                head.extend_from_slice(input);
                let from = scanned.saturating_sub(3);
                let Some(position) = head[from..]
                    .windows(4)
                    .position(|window| window == b"\r\n\r\n")
                else {
                    *scanned = head.len();
                    if head.len() >= MAX_HEAD_LEN {
                        self.state = ParserState::Done;
                        return Err(HttpResponse::error(
                            ErrorCode::FrameTooLarge,
                            "request head too large",
                        ));
                    }
                    return Ok(None);
                };
                let body_start = from + position + 4;
                let mut head = std::mem::take(head);
                let overread = head.split_off(body_start);
                let (method, path, content_length) = match parse_head(head, self.max_body) {
                    Ok(parsed) => parsed,
                    Err(response) => {
                        self.state = ParserState::Done;
                        return Err(response);
                    }
                };
                let mut body = overread;
                if body.len() > content_length {
                    // More than Content-Length arrived with the head; the
                    // excess is the peer's problem, drained at close.
                    body.truncate(content_length);
                }
                self.state = ParserState::Body {
                    method,
                    path,
                    content_length,
                    body,
                };
                // The body may already be complete (or empty).
                self.feed(&[])
            }
            ParserState::Body {
                method,
                path,
                content_length,
                body,
            } => {
                let want = *content_length - body.len();
                body.extend_from_slice(&input[..input.len().min(want)]);
                if body.len() < *content_length {
                    return Ok(None);
                }
                let request = HttpRequest {
                    method: std::mem::take(method),
                    path: std::mem::take(path),
                    body: std::mem::take(body),
                };
                self.state = ParserState::Done;
                Ok(Some(request))
            }
            ParserState::Done => Ok(None),
        }
    }

    /// The error to answer with when the peer hangs up mid-request —
    /// `None` once the request was already complete.
    pub(crate) fn eof_error(&self) -> Option<HttpResponse> {
        match &self.state {
            ParserState::Head { .. } => Some(HttpResponse::error(
                ErrorCode::Malformed,
                "connection closed mid-head",
            )),
            ParserState::Body { .. } => Some(HttpResponse::error(
                ErrorCode::Malformed,
                "connection closed mid-body",
            )),
            ParserState::Done => None,
        }
    }
}

/// Parse a complete head (request line + headers, including the trailing
/// `\r\n\r\n`) into `(method, path, content_length)`.
fn parse_head(head: Vec<u8>, max_body: usize) -> Result<(String, String, usize), HttpResponse> {
    let head = String::from_utf8(head)
        .map_err(|_| HttpResponse::error(ErrorCode::Malformed, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpResponse::error(ErrorCode::Malformed, "invalid Content-Length"))?;
        }
    }
    if content_length > max_body {
        return Err(HttpResponse::error(
            ErrorCode::FrameTooLarge,
            "request body exceeds the frame limit",
        ));
    }
    Ok((method, path, content_length))
}

/// A routed request's answer: a structured [`HttpResponse`] to serialize,
/// or a cache hit served straight from the candidate bytes stored at
/// flight completion (`POST /explain` reuses the same cached body the
/// framed protocol splices).
pub(crate) enum Routed {
    Plain(HttpResponse),
    CachedExplanation {
        question: String,
        table: String,
        body: Arc<Vec<u8>>,
    },
}

impl Routed {
    /// The status code the trace records as the outcome.
    pub(crate) fn status(&self) -> u16 {
        match self {
            Routed::Plain(response) => response.status(),
            Routed::CachedExplanation { .. } => 200,
        }
    }
}

/// Map `(method, path, body)` to the shared dispatch core. `trace` is the
/// request's sampled trace, threaded into the handlers.
pub(crate) fn route(
    shared: &Shared,
    method: &str,
    path: &str,
    body: &[u8],
    trace: &mut Option<wtq_obs::RequestTrace>,
) -> Routed {
    let request = match (method, path) {
        ("GET", "/stats") => RequestBody::Stats,
        ("GET", "/tables") => RequestBody::ListTables,
        ("GET", "/metrics") => RequestBody::Metrics,
        ("GET", "/trace/recent") => RequestBody::TraceRecent,
        ("POST", "/explain") => match parse_json::<ExplainBody>(shared, body) {
            Ok(parsed) => RequestBody::Explain(parsed),
            Err(response) => return Routed::Plain(response),
        },
        ("POST", "/explain_batch") => match parse_json::<ExplainBatchBody>(shared, body) {
            Ok(parsed) => RequestBody::ExplainBatch(parsed),
            Err(response) => return Routed::Plain(response),
        },
        _ => {
            shared.count_protocol_error();
            return Routed::Plain(HttpResponse {
                status: 404,
                reason: "Not Found",
                retry_after_ms: None,
                content_type: "application/json",
                body: serde_json::to_string(&ResponseBody::Error(WireError::new(
                    ErrorCode::Malformed,
                    format!("no route for {method} {path}"),
                )))
                .unwrap_or_else(|_| "{}".to_string()),
            });
        }
    };
    match shared.handle_request(request, trace) {
        Reply::Full(body) => Routed::Plain(HttpResponse::from_body(&body)),
        Reply::CachedExplanation {
            question,
            table,
            body,
        } => Routed::CachedExplanation {
            question,
            table,
            body,
        },
    }
}

fn parse_json<T: serde::Deserialize>(shared: &Shared, body: &[u8]) -> Result<T, HttpResponse> {
    let text = std::str::from_utf8(body).map_err(|_| {
        shared.count_protocol_error();
        HttpResponse::error(ErrorCode::Malformed, "body is not UTF-8")
    })?;
    serde_json::from_str(text).map_err(|err| {
        shared.count_protocol_error();
        HttpResponse::error(ErrorCode::Malformed, format!("invalid body: {err}"))
    })
}

/// Serialize a response to the bytes the connection's outbox will flush.
pub(crate) fn response_bytes(response: &HttpResponse) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(128 + response.body.len());
    response_bytes_into(response, &mut bytes);
    bytes
}

/// [`response_bytes`] into a caller-provided (pooled) buffer.
pub(crate) fn response_bytes_into(response: &HttpResponse, out: &mut Vec<u8>) {
    write_response_head(
        out,
        response.status,
        response.reason,
        response.retry_after_ms,
        response.content_type,
        response.body.len(),
    );
    out.extend_from_slice(response.body.as_bytes());
}

/// The head of an encode-once `POST /explain` hit: status line and headers
/// (`Content-Length` covers the spliced JSON body: head + cached candidate
/// bytes + [`wire::SPLICE_BODY_TAIL`]), then the JSON body's head up to the
/// `candidates` field — the reactor sends the cached bytes and the tail as
/// separate `writev` segments.
pub(crate) fn spliced_response_head(
    out: &mut Vec<u8>,
    question: &str,
    table: &str,
    cached_body_len: usize,
) {
    let mut json_head = Vec::with_capacity(64 + question.len() + table.len());
    wire::splice_body_head(&mut json_head, question, table);
    let content_length = json_head.len() + cached_body_len + wire::SPLICE_BODY_TAIL.len();
    write_response_head(out, 200, "OK", None, "application/json", content_length);
    out.extend_from_slice(&json_head);
}

fn write_response_head(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    retry_after_ms: Option<u64>,
    content_type: &str,
    content_length: usize,
) {
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {content_length}\r\nConnection: close\r\n",
        )
        .as_bytes(),
    );
    if let Some(retry_after_ms) = retry_after_ms {
        // Retry-After is whole seconds; round sub-second hints up.
        out.extend_from_slice(
            format!("Retry-After: {}\r\n", retry_after_ms.div_ceil(1000).max(1)).as_bytes(),
        );
    }
    out.extend_from_slice(b"\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(
        parser: &mut HttpParser,
        bytes: &[u8],
    ) -> Result<Option<HttpRequest>, HttpResponse> {
        parser.feed(bytes)
    }

    #[test]
    fn parses_a_request_fed_byte_by_byte() {
        let raw = b"POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let mut parser = HttpParser::new(1024);
        let mut request = None;
        for byte in raw {
            match parser.feed(std::slice::from_ref(byte)).expect("no error") {
                Some(complete) => request = Some(complete),
                None => continue,
            }
        }
        let request = request.expect("request completes on the last byte");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/explain");
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn parses_a_request_fed_in_one_chunk_with_overread() {
        let raw = b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut parser = HttpParser::new(1024);
        let request = feed_all(&mut parser, raw).unwrap().expect("complete");
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/stats");
        assert!(request.body.is_empty());
    }

    #[test]
    fn body_beyond_content_length_is_truncated() {
        let raw = b"POST /explain HTTP/1.1\r\nContent-Length: 2\r\n\r\nabEXTRA";
        let mut parser = HttpParser::new(1024);
        let request = feed_all(&mut parser, raw).unwrap().expect("complete");
        assert_eq!(request.body, b"ab");
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut parser = HttpParser::new(1024);
        let filler = vec![b'a'; MAX_HEAD_LEN + 1];
        let err = parser.feed(&filler).expect_err("head over the limit");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn oversized_body_is_rejected_at_the_head() {
        let raw = b"POST /explain HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        let mut parser = HttpParser::new(1024);
        let err = feed_all(&mut parser, raw).expect_err("body over the frame limit");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn invalid_content_length_is_malformed() {
        let raw = b"POST /explain HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        let mut parser = HttpParser::new(1024);
        let err = feed_all(&mut parser, raw).expect_err("unparseable length");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn eof_errors_name_the_phase() {
        let mut parser = HttpParser::new(1024);
        parser.feed(b"GET /st").unwrap();
        assert!(parser.eof_error().unwrap().body.contains("mid-head"));
        let mut parser = HttpParser::new(1024);
        parser
            .feed(b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nab")
            .unwrap();
        assert!(parser.eof_error().unwrap().body.contains("mid-body"));
        let mut parser = HttpParser::new(1024);
        parser.feed(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(parser.eof_error().is_none());
    }

    #[test]
    fn terminator_split_across_feeds_is_found() {
        let mut parser = HttpParser::new(1024);
        assert!(parser.feed(b"GET / HTTP/1.1\r").unwrap().is_none());
        assert!(parser.feed(b"\n\r").unwrap().is_none());
        let request = parser.feed(b"\n").unwrap().expect("complete");
        assert_eq!(request.method, "GET");
    }

    #[test]
    fn response_bytes_carry_status_and_retry_after() {
        let response = HttpResponse {
            status: 429,
            reason: "Too Many Requests",
            retry_after_ms: Some(50),
            content_type: "application/json",
            body: "{}".to_string(),
        };
        let bytes = response_bytes(&response);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn metrics_bodies_render_as_plain_text() {
        let response = HttpResponse::from_body(&ResponseBody::Metrics(crate::wire::MetricsBody {
            text: "# TYPE wtq_server_requests_total counter\n".to_string(),
        }));
        assert_eq!(response.status(), 200);
        let text = String::from_utf8(response_bytes(&response)).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.ends_with("# TYPE wtq_server_requests_total counter\n"));
    }
}
