//! A minimal hand-rolled HTTP/1.1 adapter over the same dispatch core as
//! the framed protocol.
//!
//! One request per connection (`Connection: close`), JSON in and out:
//!
//! | route | body | answers with |
//! |---|---|---|
//! | `GET /stats` | — | [`ResponseBody::Stats`] |
//! | `GET /tables` | — | [`ResponseBody::Tables`] |
//! | `POST /explain` | [`ExplainBody`] JSON | [`ResponseBody::Explanation`] |
//! | `POST /explain_batch` | [`ExplainBatchBody`] JSON | [`ResponseBody::Batch`] |
//!
//! The response body is always the JSON serialization of a
//! [`ResponseBody`], so HTTP clients see exactly the payloads framed
//! clients see; status codes mirror the error codes (429 + `Retry-After`
//! for backpressure, 400 for malformed input, 404 for unknown tables and
//! routes, 413 for oversized bodies, 500 for internal failures).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use crate::server::Shared;
use crate::wire::{ErrorCode, ExplainBatchBody, ExplainBody, RequestBody, ResponseBody, WireError};

/// Bound on the request head (request line + headers).
const MAX_HEAD_LEN: usize = 16 * 1024;

/// Serve one HTTP request on `stream`; `sniffed` holds the four
/// already-read bytes of the method.
pub(crate) fn handle_http(stream: &mut TcpStream, shared: &Shared, sniffed: [u8; 4]) {
    shared.count_http_request();
    let response = match read_request(stream, shared, sniffed) {
        Ok((method, path, body)) => route(shared, &method, &path, &body),
        Err(err) => err,
    };
    if write_response(stream, &response).is_err() {
        return;
    }
    // Lingering close: half-close our side so the peer sees EOF, then drain
    // whatever it still had in flight (e.g. body bytes past Content-Length).
    // Closing with unread bytes would turn our FIN into an RST and could
    // destroy the response before the peer reads it. The drain is bounded
    // in both bytes and wall time so a slow-dripping client cannot pin the
    // handler thread.
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut sink = [0u8; 1024];
    let mut drained = 0usize;
    while drained < 64 * 1024 && std::time::Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => drained += n,
            _ => break,
        }
    }
}

/// An HTTP-level response: status line pieces plus the JSON body.
struct HttpResponse {
    status: u16,
    reason: &'static str,
    retry_after_ms: Option<u64>,
    body: String,
}

impl HttpResponse {
    fn from_body(body: &ResponseBody) -> HttpResponse {
        let (status, reason, retry_after_ms) = match body {
            ResponseBody::Error(err) => status_for(err),
            _ => (200, "OK", None),
        };
        HttpResponse {
            status,
            reason,
            retry_after_ms,
            body: serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string()),
        }
    }

    fn error(code: ErrorCode, message: impl Into<String>) -> HttpResponse {
        HttpResponse::from_body(&ResponseBody::Error(WireError::new(code, message)))
    }
}

fn status_for(err: &WireError) -> (u16, &'static str, Option<u64>) {
    match err.code {
        ErrorCode::Malformed => (400, "Bad Request", None),
        ErrorCode::UnsupportedVersion => (400, "Bad Request", None),
        ErrorCode::FrameTooLarge => (413, "Payload Too Large", None),
        ErrorCode::BatchTooLarge => (413, "Payload Too Large", None),
        ErrorCode::Overloaded => (429, "Too Many Requests", err.retry_after_ms),
        ErrorCode::UnknownTable => (404, "Not Found", None),
        ErrorCode::Internal => (500, "Internal Server Error", None),
    }
}

/// Read the head and (Content-Length-delimited) body of one request. Reads
/// in chunks (not byte-at-a-time — the head would otherwise cost one
/// syscall per byte); bytes past the head terminator are the start of the
/// body.
fn read_request(
    stream: &mut TcpStream,
    shared: &Shared,
    sniffed: [u8; 4],
) -> Result<(String, String, Vec<u8>), HttpResponse> {
    let mut head = sniffed.to_vec();
    let mut chunk = [0u8; 1024];
    let mut scanned = 0usize;
    let body_start = loop {
        // Scan only the unscanned tail (re-checking 3 bytes of overlap for
        // a terminator split across chunks).
        let from = scanned.saturating_sub(3);
        if let Some(position) = head[from..]
            .windows(4)
            .position(|window| window == b"\r\n\r\n")
        {
            break from + position + 4;
        }
        scanned = head.len();
        if head.len() >= MAX_HEAD_LEN {
            return Err(HttpResponse::error(
                ErrorCode::FrameTooLarge,
                "request head too large",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpResponse::error(
                    ErrorCode::Malformed,
                    "connection closed mid-head",
                ))
            }
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                return Err(HttpResponse::error(ErrorCode::Malformed, "i/o error"));
            }
        }
    };
    let overread = head.split_off(body_start);
    let head = String::from_utf8(head)
        .map_err(|_| HttpResponse::error(ErrorCode::Malformed, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpResponse::error(ErrorCode::Malformed, "invalid Content-Length"))?;
        }
    }
    if content_length > shared.max_frame_len() as usize {
        return Err(HttpResponse::error(
            ErrorCode::FrameTooLarge,
            "request body exceeds the frame limit",
        ));
    }
    let mut body = overread;
    if body.len() > content_length {
        // More than Content-Length arrived with the head; the excess is
        // drained by the lingering close.
        body.truncate(content_length);
    } else {
        let read_so_far = body.len();
        body.resize(content_length, 0);
        stream
            .read_exact(&mut body[read_so_far..])
            .map_err(|_| HttpResponse::error(ErrorCode::Malformed, "connection closed mid-body"))?;
    }
    Ok((method, path, body))
}

/// Map `(method, path, body)` to the shared dispatch core.
fn route(shared: &Shared, method: &str, path: &str, body: &[u8]) -> HttpResponse {
    let request = match (method, path) {
        ("GET", "/stats") => RequestBody::Stats,
        ("GET", "/tables") => RequestBody::ListTables,
        ("POST", "/explain") => match parse_json::<ExplainBody>(shared, body) {
            Ok(parsed) => RequestBody::Explain(parsed),
            Err(response) => return response,
        },
        ("POST", "/explain_batch") => match parse_json::<ExplainBatchBody>(shared, body) {
            Ok(parsed) => RequestBody::ExplainBatch(parsed),
            Err(response) => return response,
        },
        _ => {
            shared.count_protocol_error();
            return HttpResponse {
                status: 404,
                reason: "Not Found",
                retry_after_ms: None,
                body: serde_json::to_string(&ResponseBody::Error(WireError::new(
                    ErrorCode::Malformed,
                    format!("no route for {method} {path}"),
                )))
                .unwrap_or_else(|_| "{}".to_string()),
            };
        }
    };
    HttpResponse::from_body(&shared.handle_request(request))
}

fn parse_json<T: serde::Deserialize>(shared: &Shared, body: &[u8]) -> Result<T, HttpResponse> {
    let text = std::str::from_utf8(body).map_err(|_| {
        shared.count_protocol_error();
        HttpResponse::error(ErrorCode::Malformed, "body is not UTF-8")
    })?;
    serde_json::from_str(text).map_err(|err| {
        shared.count_protocol_error();
        HttpResponse::error(ErrorCode::Malformed, format!("invalid body: {err}"))
    })
}

fn write_response(stream: &mut TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason,
        response.body.len()
    );
    if let Some(retry_after_ms) = response.retry_after_ms {
        // Retry-After is whole seconds; round sub-second hints up.
        head.push_str(&format!(
            "Retry-After: {}\r\n",
            retry_after_ms.div_ceil(1000).max(1)
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}
