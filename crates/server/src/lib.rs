//! # wtq-server
//!
//! The serving layer of the explanation engine: a hand-rolled, zero-runtime
//! network front-end over a shared [`wtq_core::Engine`], built on `std`
//! plus the `wtq-net` epoll primitives (the build environment has no async
//! runtime). Connection I/O is a nonblocking readiness loop — a single
//! acceptor, a small reactor pool owning every socket, incremental
//! per-connection protocol state machines, and a fixed dispatch pool where
//! blocking admission/engine work lives — so thread count scales with
//! in-flight work, never with connection count.
//!
//! Two protocols share one dispatch core:
//!
//! * **Framed JSON over TCP** ([`wire`]) — 4-byte big-endian length prefix,
//!   then a versioned JSON envelope. This is the primary protocol: cheap to
//!   parse, pipelineable, spoken by [`Client`].
//! * **HTTP/1.1** ([`http`], private) — a minimal adapter for `curl` and
//!   browsers: `GET /stats`, `GET /tables`, `GET /metrics`,
//!   `GET /trace/recent`, `POST /explain`, `POST /explain_batch`, one
//!   request per connection.
//!
//! The serving semantics (documented on [`server`]):
//!
//! * **Backpressure** — a bounded in-flight queue; a full queue rejects
//!   with a structured `Overloaded` error carrying `retry_after_ms`,
//!   never queueing unboundedly and never hanging the client.
//! * **Admission control** — per-table concurrency tokens keyed by the
//!   table's shape fingerprint, so a giant table cannot starve the pool.
//! * **Registry** — clients address preloaded tables by catalog name
//!   ([`wtq_table::Catalog`]) instead of shipping rows per request;
//!   `ListTables` returns [`wtq_table::TableSummary`] listings.
//! * **Stats** — a `Stats` request snapshots [`wtq_core::EngineStats`]
//!   (index-cache hit/miss/evictions, served counts, in-flight) plus the
//!   server's own counters.
//! * **Observability** ([`obs`], private) — every counter above plus
//!   latency histograms render as Prometheus text through `GET /metrics`
//!   (or the framed `Metrics` request), and a configurable fraction of
//!   requests is traced stage-by-stage into the rings `GET /trace/recent`
//!   serves. Both are control-plane: reachable while the in-flight queue
//!   is saturated.
//!
//! ```no_run
//! use std::sync::Arc;
//! use wtq_core::Engine;
//! use wtq_server::{Client, Server, ServerConfig};
//! use wtq_table::{samples, Catalog};
//!
//! let engine = Arc::new(Engine::new());
//! let catalog: Arc<Catalog> = Arc::new([samples::olympics()].into_iter().collect());
//! let handle = Server::bind("127.0.0.1:0", engine, catalog, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let explanation = client
//!     .explain("Greece held its last Olympics in what year?", "olympics", None)
//!     .unwrap();
//! assert!(!explanation.candidates.is_empty());
//! handle.shutdown();
//! ```

mod conn;
mod http;
mod obs;
mod reactor;

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, ConnectOptions, RetryPolicy};
pub use server::{Server, ServerConfig, ServerHandle};
pub use wire::{
    ErrorCode, ExplainBatchBody, ExplainBody, MetricsBody, RequestBody, RequestEnvelope,
    ResponseBody, ResponseEnvelope, ServerStats, StatsBody, TablesBody, TraceRecentBody, WireBatch,
    WireCandidate, WireError, WireExplanation, PROTOCOL_VERSION,
};
// Re-exported so downstream consumers of `TraceRecentBody` can name the
// snapshot types without depending on `wtq-obs` directly.
pub use wtq_obs::{SpanSnapshot, TraceSnapshot};
