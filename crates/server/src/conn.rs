//! The per-connection protocol state machine driven by the reactor.
//!
//! A [`Conn`] owns one nonblocking socket and turns readiness events into
//! protocol progress without ever blocking: reads feed the resumable
//! decoders ([`wire::FrameDecoder`] / [`crate::http::HttpParser`]) and park
//! complete requests in an ordered pending queue; writes drain the outbox.
//! The reactor pulls at most one pending request at a time into the worker
//! pool (`busy`), preserving the blocking server's answer-in-request-order
//! guarantee for pipelined clients, and applies the close choreography each
//! protocol needs (immediate close after an oversized frame, lingering
//! drain after an HTTP response).

use std::collections::VecDeque;
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{self, HttpParser, HttpRequest};
use crate::reactor::BufferPool;
use crate::server::Shared;
use crate::wire::{self, ErrorCode, FrameDecoder, FrameError, WireError};

/// Methods whose first four bytes select the HTTP adapter.
const HTTP_PREFIXES: [&[u8; 4]; 6] = [b"GET ", b"POST", b"PUT ", b"HEAD", b"DELE", b"OPTI"];

/// Bytes a lingering HTTP close will drain before giving up on the peer.
const DRAIN_LIMIT: usize = 64 * 1024;

/// Decoded-but-unanswered requests one connection may queue before the
/// reactor stops reading it — the blocking server never read ahead at all,
/// so a bounded read-ahead is strictly more permissive while still denying
/// a pipelining client unbounded server memory.
const PENDING_LIMIT: usize = 64;

/// Wall-clock bound on the lingering drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// One response in the outbox, segmented so a cache hit goes out without
/// intermediate copies: the per-response head (a pooled buffer holding the
/// frame prefix and spliced envelope head, or a whole conventionally
/// encoded response), the shared cached candidate bytes, and the static
/// envelope tail. The three segments flush in one `writev(2)`.
#[derive(Debug)]
pub(crate) struct Response {
    pub(crate) head: Vec<u8>,
    pub(crate) body: Option<Arc<Vec<u8>>>,
    pub(crate) tail: &'static [u8],
}

impl Response {
    /// A single-segment response (errors, non-hit answers).
    pub(crate) fn whole(head: Vec<u8>) -> Response {
        Response {
            head,
            body: None,
            tail: b"",
        }
    }

    fn len(&self) -> usize {
        self.head.len() + self.body.as_ref().map_or(0, |body| body.len()) + self.tail.len()
    }

    /// The unwritten segment slices, starting `written` bytes in.
    fn remaining<'a>(&'a self, mut written: usize, segments: &mut [&'a [u8]; 3]) -> usize {
        let mut count = 0;
        let parts: [&[u8]; 3] = [
            &self.head,
            self.body.as_ref().map_or(&[][..], |body| body.as_slice()),
            self.tail,
        ];
        for part in parts {
            if written >= part.len() {
                written -= part.len();
                continue;
            }
            segments[count] = &part[written..];
            written = 0;
            count += 1;
        }
        count
    }
}

/// A request decoded off the socket, waiting its turn on the worker pool.
#[derive(Debug)]
pub(crate) enum JobKind {
    /// One framed-protocol payload (the bytes between length prefixes).
    Frame(Vec<u8>),
    /// One complete HTTP request.
    Http(HttpRequest),
}

/// Observability metadata stamped on a job as it completes decoding: the
/// instant the request's first bytes arrived (the anchor every trace span
/// is measured against) and how long receive+decode took.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobMeta {
    /// When the request's first undecoded bytes arrived at the reactor.
    pub(crate) started: Instant,
    /// First byte to complete request (incremental parse time included).
    pub(crate) decode_ns: u64,
}

impl JobMeta {
    /// Close the decode window: `begun` is the first-byte instant (or now,
    /// for a request that completed within another's read batch).
    fn stamp(begun: Option<Instant>) -> JobMeta {
        let started = begun.unwrap_or_else(Instant::now);
        JobMeta {
            started,
            decode_ns: started.elapsed().as_nanos() as u64,
        }
    }
}

/// An entry of the ordered pending queue: either work for the dispatcher
/// or a protocol-fatal response that must go out *after* the answers to
/// every earlier pipelined request.
#[derive(Debug)]
enum PendingItem {
    Job(JobKind, JobMeta),
    /// Queue these bytes, then apply the close mode. Terminal: later input
    /// is never parsed.
    Fatal(Vec<u8>, CloseMode),
}

/// What to do once the outbox drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseMode {
    /// Keep serving.
    Open,
    /// Close outright (framed protocol after an oversized frame: the
    /// stream position is untrustworthy).
    CloseAfterFlush,
    /// Half-close our side and drain the peer's leftovers before closing
    /// (HTTP lingering close — a hard close with unread bytes would turn
    /// our FIN into an RST and could destroy the response in flight).
    DrainAfterFlush,
}

/// Which protocol the connection speaks, with its resumable parser state.
enum Proto {
    /// Fewer than four bytes seen — protocol not chosen yet.
    Sniff(Vec<u8>),
    Framed(FrameDecoder),
    Http(HttpParser),
    /// HTTP response sent and write side shut; discarding peer leftovers
    /// until EOF, `DRAIN_LIMIT` bytes or `deadline`.
    Draining {
        deadline: Instant,
        drained: usize,
    },
}

/// What `handle_readable`/`handle_writable` concluded.
#[must_use]
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum IoOutcome {
    /// Still alive; the reactor re-evaluates interest and pending work.
    Continue,
    /// Close and deregister now.
    Close,
}

pub(crate) struct Conn {
    stream: TcpStream,
    /// Generation stamp so a stale worker completion for a recycled slab
    /// slot is dropped instead of answering the wrong connection.
    pub(crate) gen: u64,
    proto: Proto,
    /// Decoded-but-unsubmitted requests, in arrival order.
    pending: VecDeque<PendingItem>,
    /// Whether one request is out with the worker pool.
    pub(crate) busy: bool,
    /// Responses awaiting socket writability.
    outbox: VecDeque<Response>,
    /// How much of `outbox.front()` is already written (an offset into its
    /// concatenated segments).
    front_written: usize,
    close_mode: CloseMode,
    /// The peer sent EOF; never read again (except while draining).
    peer_eof: bool,
    /// A fatal response was queued; stop parsing input.
    read_poisoned: bool,
    /// When the in-progress request's first bytes arrived; taken as each
    /// request completes decoding (see [`JobMeta`]).
    request_started: Option<Instant>,
    /// The interest currently registered with the poller — the reactor
    /// skips the `epoll_ctl(MOD)` syscall when it is already right.
    pub(crate) registered_interest: wtq_net::Interest,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, gen: u64) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            gen,
            proto: Proto::Sniff(Vec::with_capacity(4)),
            pending: VecDeque::new(),
            busy: false,
            outbox: VecDeque::new(),
            front_written: 0,
            close_mode: CloseMode::Open,
            peer_eof: false,
            read_poisoned: false,
            request_started: None,
            registered_interest: wtq_net::Interest::READABLE,
        })
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Drain the socket's readable bytes through the protocol machine.
    pub(crate) fn handle_readable(&mut self, scratch: &mut [u8], shared: &Shared) -> IoOutcome {
        if self.peer_eof || (self.read_poisoned && !matches!(self.proto, Proto::Draining { .. })) {
            return IoOutcome::Continue;
        }
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    let buffered = &scratch[..n];
                    match self.feed(buffered, shared) {
                        IoOutcome::Continue => {}
                        IoOutcome::Close => return IoOutcome::Close,
                    }
                    if self.read_poisoned && !matches!(self.proto, Proto::Draining { .. }) {
                        return IoOutcome::Continue;
                    }
                    // Enforce the read-ahead bound *inside* the loop, not
                    // just when interest is recomputed: a client keeping
                    // the socket buffer full must not grow `pending`
                    // without limit or pin this reactor thread. Unread
                    // bytes stay in the kernel buffer; the level-triggered
                    // poller re-reports them once the queue drains.
                    if self.pending.len() >= PENDING_LIMIT {
                        break;
                    }
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return IoOutcome::Close,
            }
        }
        if self.peer_eof {
            return self.handle_eof(shared);
        }
        IoOutcome::Continue
    }

    /// Route freshly read bytes into the current protocol state.
    fn feed(&mut self, mut input: &[u8], shared: &Shared) -> IoOutcome {
        if !input.is_empty() && self.request_started.is_none() {
            self.request_started = Some(Instant::now());
        }
        if let Proto::Sniff(buf) = &mut self.proto {
            let take = input.len().min(4 - buf.len());
            buf.extend_from_slice(&input[..take]);
            input = &input[take..];
            if buf.len() < 4 {
                return IoOutcome::Continue;
            }
            let first: [u8; 4] = buf[..4].try_into().expect("sniff buffer holds 4 bytes");
            if HTTP_PREFIXES.contains(&&first) {
                shared.count_http_request();
                let mut parser = HttpParser::new(shared.max_frame_len() as usize);
                // Replay the sniffed bytes into the chosen parser.
                if Self::feed_http(
                    &mut parser,
                    &first,
                    &mut self.pending,
                    &mut self.request_started,
                ) {
                    self.read_poisoned = true;
                }
                self.proto = Proto::Http(parser);
                if self.read_poisoned {
                    return IoOutcome::Continue;
                }
            } else {
                let mut decoder = FrameDecoder::new(shared.max_frame_len());
                let mut sniffed: &[u8] = &first;
                let outcome = Self::feed_framed(
                    &mut decoder,
                    &mut sniffed,
                    shared,
                    &mut self.pending,
                    &mut self.request_started,
                );
                self.proto = Proto::Framed(decoder);
                if let Some(fatal) = outcome {
                    self.push_fatal(fatal, CloseMode::CloseAfterFlush);
                    return IoOutcome::Continue;
                }
            }
        }
        match &mut self.proto {
            Proto::Sniff(_) => unreachable!("sniff resolved above"),
            Proto::Framed(decoder) => {
                match Self::feed_framed(
                    decoder,
                    &mut input,
                    shared,
                    &mut self.pending,
                    &mut self.request_started,
                ) {
                    Some(fatal) => {
                        self.push_fatal(fatal, CloseMode::CloseAfterFlush);
                        IoOutcome::Continue
                    }
                    None => IoOutcome::Continue,
                }
            }
            Proto::Http(parser) => {
                if Self::feed_http(parser, input, &mut self.pending, &mut self.request_started) {
                    self.read_poisoned = true;
                }
                IoOutcome::Continue
            }
            Proto::Draining {
                deadline: _,
                drained,
            } => {
                *drained += input.len();
                if *drained > DRAIN_LIMIT {
                    return IoOutcome::Close;
                }
                IoOutcome::Continue
            }
        }
    }

    /// Feed the framed decoder; complete payloads become pending jobs.
    /// Returns the fatal response bytes on an oversized frame.
    fn feed_framed(
        decoder: &mut FrameDecoder,
        input: &mut &[u8],
        shared: &Shared,
        pending: &mut VecDeque<PendingItem>,
        started: &mut Option<Instant>,
    ) -> Option<Vec<u8>> {
        loop {
            match decoder.feed(input) {
                Ok(Some(payload)) => {
                    // Pipelined frames completing within one read batch
                    // each take the shared first-byte stamp once; the rest
                    // anchor at completion (their bytes arrived together).
                    let meta = JobMeta::stamp(started.take());
                    pending.push_back(PendingItem::Job(JobKind::Frame(payload), meta));
                }
                Ok(None) => return None,
                Err(FrameError::TooLarge { declared, max }) => {
                    shared.count_protocol_error();
                    // `error_frame` encodes by direct byte writing and is
                    // infallible — unlike the old serde round-trip, whose
                    // failure path silently answered with an empty frame.
                    return Some(wire::error_frame(
                        0,
                        &WireError::new(
                            ErrorCode::FrameTooLarge,
                            format!("frame of {declared} bytes exceeds the {max}-byte limit"),
                        ),
                    ));
                }
                Err(_) => unreachable!("a pure decoder cannot hit I/O errors"),
            }
        }
    }

    /// Feed the HTTP parser; a complete request becomes the pending job, a
    /// parser error becomes a fatal drain-then-close response. Returns
    /// whether a fatal response was queued.
    fn feed_http(
        parser: &mut HttpParser,
        input: &[u8],
        pending: &mut VecDeque<PendingItem>,
        started: &mut Option<Instant>,
    ) -> bool {
        match parser.feed(input) {
            Ok(Some(request)) => {
                let meta = JobMeta::stamp(started.take());
                pending.push_back(PendingItem::Job(JobKind::Http(request), meta));
                false
            }
            Ok(None) => false,
            Err(response) => {
                pending.push_back(PendingItem::Fatal(
                    http::response_bytes(&response),
                    CloseMode::DrainAfterFlush,
                ));
                true
            }
        }
    }

    fn push_fatal(&mut self, bytes: Vec<u8>, mode: CloseMode) {
        self.pending.push_back(PendingItem::Fatal(bytes, mode));
        self.read_poisoned = true;
    }

    /// EOF arrived: decide whether anything still owes the peer bytes.
    fn handle_eof(&mut self, _shared: &Shared) -> IoOutcome {
        match &mut self.proto {
            // Draining exists to wait for exactly this EOF.
            Proto::Draining { .. } => IoOutcome::Close,
            // Torn before the protocol was even chosen.
            Proto::Sniff(_) => {
                if self.idle() {
                    IoOutcome::Close
                } else {
                    IoOutcome::Continue
                }
            }
            Proto::Framed(_) => {
                // Clean close at a boundary or truncated mid-frame: either
                // way nothing new to answer; finish flushing what's queued
                // (the reactor closes once idle).
                if self.idle() {
                    IoOutcome::Close
                } else {
                    IoOutcome::Continue
                }
            }
            Proto::Http(parser) => {
                // A request torn mid-head/mid-body still gets a structured
                // answer (the peer may have only half-closed its side).
                if let Some(response) = parser.eof_error() {
                    if !self.busy && !self.read_poisoned {
                        self.push_fatal(
                            http::response_bytes(&response),
                            CloseMode::DrainAfterFlush,
                        );
                    }
                }
                if self.idle() {
                    IoOutcome::Close
                } else {
                    IoOutcome::Continue
                }
            }
        }
    }

    /// Flush the outbox as far as the socket allows. A response's head,
    /// cached body and tail go out gathered in one `writev(2)`; fully
    /// flushed head buffers are recycled into the reactor's pool.
    pub(crate) fn handle_writable(&mut self, pool: &mut BufferPool) -> IoOutcome {
        while let Some(front) = self.outbox.front() {
            if self.front_written >= front.len() {
                let done = self.outbox.pop_front().expect("front checked above");
                pool.recycle(done.head);
                self.front_written = 0;
                continue;
            }
            let mut segments: [&[u8]; 3] = [&[]; 3];
            let count = front.remaining(self.front_written, &mut segments);
            match wtq_net::write_vectored(self.stream.as_raw_fd(), &segments[..count]) {
                Ok(0) => return IoOutcome::Close,
                Ok(n) => self.front_written += n,
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    return IoOutcome::Continue
                }
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return IoOutcome::Close,
            }
        }
        IoOutcome::Continue
    }

    /// Accept a completed response from the worker pool.
    pub(crate) fn complete_response(&mut self, response: Response) {
        self.busy = false;
        self.outbox.push_back(response);
        if matches!(self.proto, Proto::Http(_)) {
            // One request per HTTP connection: after this response, drain
            // and close.
            self.close_mode = CloseMode::DrainAfterFlush;
        }
    }

    /// Hand the next pending request to the caller (the reactor submits it
    /// to the worker pool), or apply a queued fatal response. At most one
    /// request is out at a time.
    pub(crate) fn next_job(&mut self) -> Option<(JobKind, JobMeta)> {
        if self.busy || self.close_mode != CloseMode::Open {
            return None;
        }
        match self.pending.pop_front() {
            None => None,
            Some(PendingItem::Job(kind, meta)) => {
                self.busy = true;
                Some((kind, meta))
            }
            Some(PendingItem::Fatal(bytes, mode)) => {
                self.outbox.push_back(Response::whole(bytes));
                self.close_mode = mode;
                // Anything decoded after the poison is unanswerable.
                self.pending.clear();
                None
            }
        }
    }

    /// Post-flush transition: `Close` to close now, `Continue` otherwise.
    /// Starts the HTTP lingering drain when due.
    pub(crate) fn after_flush(&mut self) -> IoOutcome {
        if !self.outbox.is_empty() {
            return IoOutcome::Continue;
        }
        match self.close_mode {
            CloseMode::CloseAfterFlush => IoOutcome::Close,
            CloseMode::DrainAfterFlush => {
                if self.peer_eof {
                    // Nothing left to drain; the FIN already arrived.
                    return IoOutcome::Close;
                }
                let _ = self.stream.shutdown(Shutdown::Write);
                self.proto = Proto::Draining {
                    deadline: Instant::now() + DRAIN_TIMEOUT,
                    drained: 0,
                };
                self.close_mode = CloseMode::Open;
                self.read_poisoned = false;
                IoOutcome::Continue
            }
            CloseMode::Open => {
                if self.peer_eof && self.idle() && !matches!(self.proto, Proto::Draining { .. }) {
                    IoOutcome::Close
                } else {
                    IoOutcome::Continue
                }
            }
        }
    }

    /// No request in flight, nothing pending, nothing to write.
    fn idle(&self) -> bool {
        !self.busy && self.pending.is_empty() && self.outbox.is_empty()
    }

    /// Whether the reactor should watch for readability.
    pub(crate) fn wants_read(&self) -> bool {
        if self.peer_eof {
            return false;
        }
        if matches!(self.proto, Proto::Draining { .. }) {
            return true;
        }
        !self.read_poisoned
            && self.close_mode == CloseMode::Open
            && self.pending.len() < PENDING_LIMIT
    }

    /// Whether the reactor should watch for writability.
    pub(crate) fn wants_write(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// The drain deadline, when the connection is in the lingering-drain
    /// state — the reactor polls with a timeout while any exist.
    pub(crate) fn drain_deadline(&self) -> Option<Instant> {
        match &self.proto {
            Proto::Draining { deadline, .. } => Some(*deadline),
            _ => None,
        }
    }
}
