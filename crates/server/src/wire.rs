//! The wire format: length-prefixed JSON frames with versioned
//! request/response envelopes.
//!
//! A frame is a 4-byte big-endian payload length followed by that many bytes
//! of UTF-8 JSON. Both directions carry an *envelope* — `{v, id, body}` —
//! where `v` is the protocol version ([`PROTOCOL_VERSION`]), `id` is a
//! client-chosen correlation id echoed back in the response, and `body` is
//! one of the typed request/response bodies below. Frames are independent:
//! a client may pipeline several requests on one connection and match
//! responses by `id` (the server answers in request order).
//!
//! Every decode failure maps to a *structured* [`WireError`] response —
//! malformed JSON, an unknown body variant, an unsupported version or an
//! oversized frame never kill the connection's peer silently, and never the
//! server's accept loop. The only unrecoverable case is an oversized frame:
//! after rejecting it the server closes the connection, because the stream
//! position can no longer be trusted.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};
use wtq_core::{EngineStats, ExplainedCandidate, Explanation};
use wtq_table::{Table, TableSummary};

/// The protocol version spoken by this build. Requests carrying any other
/// version are answered with [`ErrorCode::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u64 = 1;

/// Default upper bound on a frame's payload length (8 MiB). Servers reject
/// larger declared lengths with [`ErrorCode::FrameTooLarge`] *before*
/// allocating, so a hostile prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-prefix or mid-payload.
    Truncated,
    /// The declared payload length exceeds the negotiated maximum.
    TooLarge {
        /// Length the prefix declared.
        declared: u32,
        /// The maximum this endpoint accepts.
        max: u32,
    },
    /// An operating-system I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> FrameError {
        FrameError::Io(err)
    }
}

/// Write one frame: 4-byte big-endian length prefix, then the payload.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload over 4 GiB")
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Read one frame's payload, enforcing `max` on the declared length.
pub fn read_frame(reader: &mut impl Read, max: u32) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_or_eof(reader, &mut prefix, true)?;
    read_frame_after_prefix(reader, prefix, max)
}

/// Read just the 4-byte length prefix — the server's protocol sniffer uses
/// this to tell HTTP traffic from framed traffic before committing.
pub fn read_prefix(reader: &mut impl Read) -> Result<[u8; 4], FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_or_eof(reader, &mut prefix, true)?;
    Ok(prefix)
}

/// [`read_frame`] when the 4 prefix bytes were already consumed (the
/// server's protocol sniffer reads them to tell HTTP from framed traffic).
pub fn read_frame_after_prefix(
    reader: &mut impl Read,
    prefix: [u8; 4],
    max: u32,
) -> Result<Vec<u8>, FrameError> {
    let declared = u32::from_be_bytes(prefix);
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared as usize];
    read_exact_or_eof(reader, &mut payload, false)?;
    Ok(payload)
}

/// `read_exact` distinguishing a clean close (EOF before the first byte,
/// when `at_boundary`) from a truncated frame (EOF anywhere else).
fn read_exact_or_eof(
    reader: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------------

/// A client request: protocol version, correlation id and a typed body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version; must equal [`PROTOCOL_VERSION`].
    pub v: u64,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The request body.
    pub body: RequestBody,
}

/// The server's reply to one request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version of the responding server.
    pub v: u64,
    /// The request's correlation id (0 when the request was too malformed
    /// to carry one).
    pub id: u64,
    /// The response body.
    pub body: ResponseBody,
}

/// Typed request bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RequestBody {
    /// Explain one question over a registered table.
    Explain(ExplainBody),
    /// Explain a batch of questions on the server's worker pool.
    ExplainBatch(ExplainBatchBody),
    /// List the tables registered in the server's catalog.
    ListTables,
    /// Engine + server statistics (control plane: never queued or rejected).
    Stats,
}

/// One question addressed to a registered table by name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainBody {
    /// The natural-language question.
    pub question: String,
    /// Registry name of the table (see [`RequestBody::ListTables`]).
    pub table: String,
    /// Candidates to explain; the server's engine default when absent.
    pub top_k: Option<usize>,
}

/// A batch of questions, answered in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainBatchBody {
    /// The questions; capped by the server's `max_batch`.
    pub requests: Vec<ExplainBody>,
}

/// Typed response bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ResponseBody {
    /// The explained candidates of one question.
    Explanation(WireExplanation),
    /// Per-question results of a batch, in request order.
    Batch(WireBatch),
    /// The table registry listing.
    Tables(TablesBody),
    /// Engine + server statistics.
    Stats(StatsBody),
    /// A structured failure.
    Error(WireError),
}

/// Batch results, in request order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireBatch {
    /// One entry per batch request.
    pub explanations: Vec<WireExplanation>,
}

/// The table registry listing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TablesBody {
    /// Summaries of every registered table, in name order.
    pub tables: Vec<TableSummary>,
}

/// Engine + server statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsBody {
    /// Snapshot of the shared engine ([`wtq_core::Engine::stats`]).
    pub engine: EngineStats,
    /// Counters of the serving layer itself.
    pub server: ServerStats,
}

/// Counters of the serving layer (all monotonic except `in_flight`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted (TCP protocol and HTTP alike).
    pub connections: u64,
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests served through the HTTP adapter.
    pub http_requests: u64,
    /// Requests rejected because the in-flight queue was full.
    pub rejected_overload: u64,
    /// Requests rejected because one table had exhausted its share of the
    /// in-flight queue (`ServerConfig::max_table_in_flight`).
    pub rejected_table_busy: u64,
    /// Frames answered with a `Malformed`/`UnsupportedVersion`/
    /// `FrameTooLarge` error.
    pub protocol_errors: u64,
    /// Requests currently holding an in-flight slot.
    pub in_flight: u64,
    /// The in-flight queue bound (`ServerConfig::max_in_flight`).
    pub max_in_flight: u64,
    /// Per-table admission tokens (`ServerConfig::per_table_tokens`).
    pub per_table_tokens: u64,
    /// Registered tables.
    pub tables: u64,
}

/// A structured error response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Overloaded`]: how long the client should wait
    /// before retrying.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// An error with no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Machine-readable error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame's payload was not a valid request envelope.
    Malformed,
    /// The envelope's `v` differs from the server's [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The frame's declared length exceeds the server's limit; the server
    /// closes the connection after this error.
    FrameTooLarge,
    /// The bounded in-flight queue is full; retry after `retry_after_ms`.
    Overloaded,
    /// The request names a table absent from the registry.
    UnknownTable,
    /// The batch exceeds the server's `max_batch`.
    BatchTooLarge,
    /// The server is shutting down or a job failed internally.
    Internal,
}

// ---------------------------------------------------------------------------
// Explanations on the wire
// ---------------------------------------------------------------------------

/// One explained candidate, flattened for the wire: the formula and SQL as
/// their canonical text renderings, the answer as its structured form, and
/// the provenance highlights as the sampled plain-text rendering (§5.3)
/// plus per-class cell counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireCandidate {
    /// Canonical rendering of the lambda DCS formula.
    pub formula: String,
    /// The parser's score.
    pub score: f64,
    /// The candidate's answer on the table.
    pub answer: wtq_core::dcs::Answer,
    /// The NL utterance explaining the query (§5.1).
    pub utterance: String,
    /// SQL rendering, when the formula falls in the translatable fragment.
    pub sql: Option<String>,
    /// Sampled plain-text rendering of the highlighted table (§5.2–5.3).
    pub highlights: String,
    /// Cells highlighted as query output.
    pub output_cells: usize,
    /// Cells highlighted as execution provenance.
    pub execution_cells: usize,
    /// Cells highlighted as column provenance.
    pub column_cells: usize,
}

impl WireCandidate {
    /// Flatten one explained candidate against the table it was computed on.
    pub fn from_candidate(candidate: &ExplainedCandidate, table: &Table) -> WireCandidate {
        let (output_cells, execution_cells, column_cells) = candidate.highlights.class_counts();
        WireCandidate {
            formula: candidate.formula.to_string(),
            score: candidate.score,
            answer: candidate.answer.clone(),
            utterance: candidate.utterance.clone(),
            sql: candidate.sql.clone(),
            highlights: candidate.render_highlights(table, true),
            output_cells,
            execution_cells,
            column_cells,
        }
    }
}

/// The explained candidates of one question, as returned to clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireExplanation {
    /// The question asked.
    pub question: String,
    /// The registry name it was asked against.
    pub table: String,
    /// The explained top-k candidates, in rank order.
    pub candidates: Vec<WireCandidate>,
    /// Why the question produced no candidates, when it failed outright.
    pub error: Option<String>,
}

impl WireExplanation {
    /// Flatten a core [`Explanation`]; `table` must be the catalog table the
    /// explanation ran against (absent exactly when the explanation carries
    /// an unknown-table error).
    pub fn from_explanation(explanation: &Explanation, table: Option<&Table>) -> WireExplanation {
        let candidates = match table {
            Some(table) => explanation
                .candidates
                .iter()
                .map(|candidate| WireCandidate::from_candidate(candidate, table))
                .collect(),
            None => Vec::new(),
        };
        WireExplanation {
            question: explanation.question.clone(),
            table: explanation.table.clone(),
            candidates,
            error: explanation.error.clone(),
        }
    }

    /// Flatten the result of a direct [`wtq_core::Engine::explain_question`]
    /// call — the reference path integration tests compare server responses
    /// against, byte for byte.
    pub fn from_candidates(
        question: &str,
        table_name: &str,
        candidates: &[ExplainedCandidate],
        table: &Table,
    ) -> WireExplanation {
        WireExplanation {
            question: question.to_string(),
            table: table_name.to_string(),
            candidates: candidates
                .iter()
                .map(|candidate| WireCandidate::from_candidate(candidate, table))
                .collect(),
            error: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_and_truncated_frames_are_distinguished() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 32]).unwrap();
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor, 16),
            Err(FrameError::TooLarge {
                declared: 32,
                max: 16
            })
        ));
        // A prefix promising more bytes than the stream holds.
        let mut cursor = &buf[..20];
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Truncated)
        ));
        // A torn prefix.
        let mut cursor = &buf[..2];
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn envelopes_round_trip_through_json() {
        let request = RequestEnvelope {
            v: PROTOCOL_VERSION,
            id: 7,
            body: RequestBody::Explain(ExplainBody {
                question: "Which city hosted in 2008?".to_string(),
                table: "olympics".to_string(),
                top_k: Some(3),
            }),
        };
        let json = serde_json::to_string(&request).unwrap();
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back.v, PROTOCOL_VERSION);
        assert_eq!(back.id, 7);
        match back.body {
            RequestBody::Explain(body) => {
                assert_eq!(body.question, "Which city hosted in 2008?");
                assert_eq!(body.table, "olympics");
                assert_eq!(body.top_k, Some(3));
            }
            other => panic!("wrong body: {other:?}"),
        }

        // Unit variants serialize as bare strings.
        let stats = RequestEnvelope {
            v: PROTOCOL_VERSION,
            id: 1,
            body: RequestBody::Stats,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"Stats\""));
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert!(matches!(back.body, RequestBody::Stats));
    }

    #[test]
    fn error_codes_round_trip() {
        let err = WireError {
            code: ErrorCode::Overloaded,
            message: "queue full".to_string(),
            retry_after_ms: Some(50),
        };
        let json = serde_json::to_string(&ResponseBody::Error(err.clone())).unwrap();
        let back: ResponseBody = serde_json::from_str(&json).unwrap();
        match back {
            ResponseBody::Error(parsed) => assert_eq!(parsed, err),
            other => panic!("wrong body: {other:?}"),
        }
    }
}
