//! The wire format: length-prefixed JSON frames with versioned
//! request/response envelopes.
//!
//! A frame is a 4-byte big-endian payload length followed by that many bytes
//! of UTF-8 JSON. Both directions carry an *envelope* — `{v, id, body}` —
//! where `v` is the protocol version ([`PROTOCOL_VERSION`]), `id` is a
//! client-chosen correlation id echoed back in the response, and `body` is
//! one of the typed request/response bodies below. Frames are independent:
//! a client may pipeline several requests on one connection and match
//! responses by `id` (the server answers in request order).
//!
//! Every decode failure maps to a *structured* [`WireError`] response —
//! malformed JSON, an unknown body variant, an unsupported version or an
//! oversized frame never kill the connection's peer silently, and never the
//! server's accept loop. The only unrecoverable case is an oversized frame:
//! after rejecting it the server closes the connection, because the stream
//! position can no longer be trusted.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};
use wtq_core::{EngineStats, ExplainedCandidate, Explanation};
use wtq_table::{Table, TableSummary};

/// The protocol version spoken by this build. Requests carrying any other
/// version are answered with [`ErrorCode::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u64 = 1;

/// Default upper bound on a frame's payload length (8 MiB). Servers reject
/// larger declared lengths with [`ErrorCode::FrameTooLarge`] *before*
/// allocating, so a hostile prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-prefix or mid-payload.
    Truncated,
    /// The declared payload length exceeds the negotiated maximum.
    TooLarge {
        /// Length the prefix declared.
        declared: u32,
        /// The maximum this endpoint accepts.
        max: u32,
    },
    /// An operating-system I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> FrameError {
        FrameError::Io(err)
    }
}

/// Encode one frame into a buffer: 4-byte big-endian length prefix, then
/// the payload. The nonblocking serving path queues these bytes on a
/// connection's outbox instead of writing to a stream.
pub fn encode_frame(payload: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    encode_frame_into(payload, &mut buf)?;
    Ok(buf)
}

/// [`encode_frame`] into a caller-provided buffer — the reusable-buffer
/// variant the pooled serving path appends into (the buffer is *not*
/// cleared; callers clear recycled buffers themselves).
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload over 4 GiB")
    })?;
    out.reserve(4 + payload.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// A resumable frame decoder for nonblocking reads: feed it whatever bytes
/// the socket had — one at a time or many frames at once — and it hands
/// back complete payloads as they materialize, preserving the blocking
/// reader's robustness guarantees (an oversized declared length is
/// rejected *before* the payload is buffered, and the error is sticky:
/// the stream position is untrustworthy afterwards).
#[derive(Debug)]
pub struct FrameDecoder {
    max: u32,
    state: DecodeState,
}

#[derive(Debug)]
enum DecodeState {
    /// Collecting the 4-byte length prefix.
    Prefix { buf: [u8; 4], filled: usize },
    /// Collecting `declared` payload bytes.
    Payload { declared: usize, payload: Vec<u8> },
    /// A `TooLarge` frame was seen; every further feed re-errors.
    Poisoned { declared: u32 },
}

impl FrameDecoder {
    /// A decoder enforcing `max` on every declared payload length.
    pub fn new(max: u32) -> FrameDecoder {
        FrameDecoder {
            max,
            state: DecodeState::Prefix {
                buf: [0u8; 4],
                filled: 0,
            },
        }
    }

    /// Consume bytes from the front of `input` (the slice is advanced past
    /// what was eaten) until one frame completes or `input` runs dry.
    /// `Ok(Some(payload))` leaves any trailing bytes — the start of the
    /// next frame — in `input`, so callers loop until `Ok(None)`.
    pub fn feed(&mut self, input: &mut &[u8]) -> Result<Option<Vec<u8>>, FrameError> {
        loop {
            match &mut self.state {
                DecodeState::Prefix { buf, filled } => {
                    let take = input.len().min(4 - *filled);
                    buf[*filled..*filled + take].copy_from_slice(&input[..take]);
                    *filled += take;
                    *input = &input[take..];
                    if *filled < 4 {
                        return Ok(None);
                    }
                    let declared = u32::from_be_bytes(*buf);
                    if declared > self.max {
                        self.state = DecodeState::Poisoned { declared };
                        return Err(FrameError::TooLarge {
                            declared,
                            max: self.max,
                        });
                    }
                    self.state = DecodeState::Payload {
                        declared: declared as usize,
                        payload: Vec::with_capacity(declared as usize),
                    };
                }
                DecodeState::Payload { declared, payload } => {
                    let want = *declared - payload.len();
                    let take = input.len().min(want);
                    payload.extend_from_slice(&input[..take]);
                    *input = &input[take..];
                    if payload.len() < *declared {
                        return Ok(None);
                    }
                    let complete = std::mem::take(payload);
                    self.state = DecodeState::Prefix {
                        buf: [0u8; 4],
                        filled: 0,
                    };
                    return Ok(Some(complete));
                }
                DecodeState::Poisoned { declared } => {
                    return Err(FrameError::TooLarge {
                        declared: *declared,
                        max: self.max,
                    });
                }
            }
        }
    }

    /// Whether the decoder sits mid-frame — an EOF here is a truncation,
    /// not a clean close.
    pub fn mid_frame(&self) -> bool {
        match &self.state {
            DecodeState::Prefix { filled, .. } => *filled != 0,
            DecodeState::Payload { .. } => true,
            DecodeState::Poisoned { .. } => false,
        }
    }
}

/// Write one frame: 4-byte big-endian length prefix, then the payload.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload over 4 GiB")
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Read one frame's payload, enforcing `max` on the declared length.
pub fn read_frame(reader: &mut impl Read, max: u32) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_or_eof(reader, &mut prefix, true)?;
    read_frame_after_prefix(reader, prefix, max)
}

/// Read just the 4-byte length prefix. (The nonblocking server sniffs
/// protocols through [`FrameDecoder`] instead; this blocking form remains
/// for synchronous tooling.)
pub fn read_prefix(reader: &mut impl Read) -> Result<[u8; 4], FrameError> {
    let mut prefix = [0u8; 4];
    read_exact_or_eof(reader, &mut prefix, true)?;
    Ok(prefix)
}

/// [`read_frame`] when the 4 prefix bytes were already consumed (e.g. by
/// [`read_prefix`]).
pub fn read_frame_after_prefix(
    reader: &mut impl Read,
    prefix: [u8; 4],
    max: u32,
) -> Result<Vec<u8>, FrameError> {
    let declared = u32::from_be_bytes(prefix);
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared as usize];
    read_exact_or_eof(reader, &mut payload, false)?;
    Ok(payload)
}

/// `read_exact` distinguishing a clean close (EOF before the first byte,
/// when `at_boundary`) from a truncated frame (EOF anywhere else).
fn read_exact_or_eof(
    reader: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------------

/// A client request: protocol version, correlation id and a typed body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version; must equal [`PROTOCOL_VERSION`].
    pub v: u64,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The request body.
    pub body: RequestBody,
}

/// The server's reply to one request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version of the responding server.
    pub v: u64,
    /// The request's correlation id (0 when the request was too malformed
    /// to carry one).
    pub id: u64,
    /// The response body.
    pub body: ResponseBody,
}

/// Typed request bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RequestBody {
    /// Explain one question over a registered table.
    Explain(ExplainBody),
    /// Explain a batch of questions on the server's worker pool.
    ExplainBatch(ExplainBatchBody),
    /// List the tables registered in the server's catalog.
    ListTables,
    /// Engine + server statistics (control plane: never queued or rejected).
    Stats,
    /// Prometheus-style metrics text (control plane, like `Stats`).
    Metrics,
    /// Recent and slowest sampled request traces (control plane).
    TraceRecent,
}

/// One question addressed to a registered table by name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainBody {
    /// The natural-language question.
    pub question: String,
    /// Registry name of the table (see [`RequestBody::ListTables`]).
    pub table: String,
    /// Candidates to explain; the server's engine default when absent.
    pub top_k: Option<usize>,
}

/// A batch of questions, answered in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainBatchBody {
    /// The questions; capped by the server's `max_batch`.
    pub requests: Vec<ExplainBody>,
}

/// Typed response bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ResponseBody {
    /// The explained candidates of one question.
    Explanation(WireExplanation),
    /// Per-question results of a batch, in request order.
    Batch(WireBatch),
    /// The table registry listing.
    Tables(TablesBody),
    /// Engine + server statistics (boxed: the stats snapshot is by far
    /// the largest body and would otherwise size every response).
    Stats(Box<StatsBody>),
    /// The rendered metrics registry.
    Metrics(MetricsBody),
    /// Sampled request traces.
    TraceRecent(TraceRecentBody),
    /// A structured failure.
    Error(WireError),
}

/// Batch results, in request order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireBatch {
    /// One entry per batch request.
    pub explanations: Vec<WireExplanation>,
}

/// The table registry listing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TablesBody {
    /// Summaries of every registered table, in name order.
    pub tables: Vec<TableSummary>,
}

/// Engine + server statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsBody {
    /// Snapshot of the shared engine ([`wtq_core::Engine::stats`]).
    pub engine: EngineStats,
    /// Counters of the serving layer itself.
    pub server: ServerStats,
}

/// The metrics registry rendered as Prometheus exposition text (the same
/// bytes `GET /metrics` serves).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsBody {
    /// Prometheus text: `# HELP`/`# TYPE` comment lines plus samples.
    pub text: String,
}

/// Sampled request traces: the most recent window plus the slowest seen.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecentBody {
    /// The sampling period: 1 of every `sample_period` requests is traced
    /// (0 when tracing is disabled).
    pub sample_period: u64,
    /// Requests sampled into the rings since startup.
    pub sampled: u64,
    /// The most recent sampled traces, oldest first.
    pub recent: Vec<wtq_obs::TraceSnapshot>,
    /// The slowest sampled traces, fastest first.
    pub slowest: Vec<wtq_obs::TraceSnapshot>,
}

/// Counters of the serving layer (all monotonic except `in_flight`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted (TCP protocol and HTTP alike).
    pub connections: u64,
    /// Connections currently registered with a reactor (gauge) — the
    /// many-idle-clients capacity the epoll loop exists for.
    pub open_connections: u64,
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests served through the HTTP adapter.
    pub http_requests: u64,
    /// Requests rejected because the in-flight queue was full.
    pub rejected_overload: u64,
    /// Requests rejected because one table had exhausted its share of the
    /// in-flight queue (`ServerConfig::max_table_in_flight`).
    pub rejected_table_busy: u64,
    /// Frames answered with a `Malformed`/`UnsupportedVersion`/
    /// `FrameTooLarge` error.
    pub protocol_errors: u64,
    /// Requests currently holding an in-flight slot.
    pub in_flight: u64,
    /// The in-flight queue bound (`ServerConfig::max_in_flight`).
    pub max_in_flight: u64,
    /// Per-table admission tokens (`ServerConfig::per_table_tokens`).
    pub per_table_tokens: u64,
    /// Registered tables.
    pub tables: u64,
    /// Commands queued toward reactors but not yet applied (gauge) —
    /// overload observable at the I/O layer, not just the request queue.
    pub reactor_queue_depth: u64,
    /// Reactor (event-loop) threads serving all connections.
    pub reactor_threads: u64,
    /// Dispatch worker threads running requests — with the reactor model
    /// this, not the connection count, bounds the server's thread count.
    pub dispatch_threads: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// `Explain` requests handled (either protocol).
    pub explain_requests: u64,
    /// `ExplainBatch` requests handled.
    pub explain_batch_requests: u64,
    /// `Stats` requests handled.
    pub stats_requests: u64,
    /// `ListTables` requests handled.
    pub tables_requests: u64,
    /// `Metrics` requests handled.
    pub metrics_requests: u64,
    /// `TraceRecent` requests handled.
    pub trace_requests: u64,
}

/// A structured error response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Overloaded`]: how long the client should wait
    /// before retrying.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// An error with no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Machine-readable error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame's payload was not a valid request envelope.
    Malformed,
    /// The envelope's `v` differs from the server's [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The frame's declared length exceeds the server's limit; the server
    /// closes the connection after this error.
    FrameTooLarge,
    /// The bounded in-flight queue is full; retry after `retry_after_ms`.
    Overloaded,
    /// The request names a table absent from the registry.
    UnknownTable,
    /// The batch exceeds the server's `max_batch`.
    BatchTooLarge,
    /// The server is shutting down or a job failed internally.
    Internal,
}

// ---------------------------------------------------------------------------
// Explanations on the wire
// ---------------------------------------------------------------------------

// `WireCandidate` lives in `wtq-core` (see `wtq_core::wire`) so the
// caching layer can serialize a flight's candidates once, at completion
// time — the encode-once path. Re-exported here unchanged, so wire-format
// consumers keep their import path.
pub use wtq_core::wire::WireCandidate;

/// The explained candidates of one question, as returned to clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireExplanation {
    /// The question asked.
    pub question: String,
    /// The registry name it was asked against.
    pub table: String,
    /// The explained top-k candidates, in rank order.
    pub candidates: Vec<WireCandidate>,
    /// Why the question produced no candidates, when it failed outright.
    pub error: Option<String>,
}

impl WireExplanation {
    /// Flatten a core [`Explanation`]; `table` must be the catalog table the
    /// explanation ran against (absent exactly when the explanation carries
    /// an unknown-table error).
    pub fn from_explanation(explanation: &Explanation, table: Option<&Table>) -> WireExplanation {
        let candidates = match table {
            Some(table) => explanation
                .candidates
                .iter()
                .map(|candidate| WireCandidate::from_candidate(candidate, table))
                .collect(),
            None => Vec::new(),
        };
        WireExplanation {
            question: explanation.question.clone(),
            table: explanation.table.clone(),
            candidates,
            error: explanation.error.clone(),
        }
    }

    /// Flatten the result of a direct [`wtq_core::Engine::explain_question`]
    /// call — the reference path integration tests compare server responses
    /// against, byte for byte.
    pub fn from_candidates(
        question: &str,
        table_name: &str,
        candidates: &[ExplainedCandidate],
        table: &Table,
    ) -> WireExplanation {
        WireExplanation {
            question: question.to_string(),
            table: table_name.to_string(),
            candidates: candidates
                .iter()
                .map(|candidate| WireCandidate::from_candidate(candidate, table))
                .collect(),
            error: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Envelope splicing (the encode-once hit path)
// ---------------------------------------------------------------------------
//
// The vendored serde_json has no `RawValue`, so cached pre-serialized
// bytes cannot ride through a normal `to_string` call. Instead the hit
// path assembles envelopes by direct byte writing: a *head* (everything
// up to and including `"candidates":`), the cached candidates-array
// bytes, and a static *tail*. The writers below replicate the vendored
// serializer's string/number rendering exactly, and the proptests in
// `tests/` pin the spliced output byte-identical to a full
// `serde_json::to_string` of the equivalent envelope.

/// Tail of a spliced framed explanation envelope: everything after the
/// candidates array.
pub const SPLICE_ENVELOPE_TAIL: &[u8] = b",\"error\":null}}}";

/// Tail of a spliced bare [`ResponseBody::Explanation`] (the HTTP form).
pub const SPLICE_BODY_TAIL: &[u8] = b",\"error\":null}}";

/// Append `s` as a JSON string literal, byte-identical to the vendored
/// serde_json's string writer.
pub fn write_json_string(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                out.extend_from_slice(format!("\\u{:04x}", c as u32).as_bytes());
            }
            c => {
                let mut utf8 = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
            }
        }
    }
    out.push(b'"');
}

/// Append a `u64` as the vendored serde_json renders it: integers pass
/// through the `f64` value model, so very large ids round and huge ones
/// fall out of the integral fast path — replicated here exactly so
/// spliced envelopes match full serialization bit for bit.
pub fn write_json_u64(out: &mut Vec<u8>, n: u64) {
    let n = n as f64;
    if !n.is_finite() {
        out.extend_from_slice(b"null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.extend_from_slice(format!("{}", n as i64).as_bytes());
    } else {
        out.extend_from_slice(format!("{n}").as_bytes());
    }
}

/// Append the head of a spliced bare explanation body:
/// `{"Explanation":{"question":…,"table":…,"candidates":` — follow with
/// the cached candidates-array bytes and [`SPLICE_BODY_TAIL`].
pub fn splice_body_head(out: &mut Vec<u8>, question: &str, table: &str) {
    out.extend_from_slice(b"{\"Explanation\":{\"question\":");
    write_json_string(out, question);
    out.extend_from_slice(b",\"table\":");
    write_json_string(out, table);
    out.extend_from_slice(b",\"candidates\":");
}

/// Append the head of a spliced framed explanation envelope:
/// `{"v":1,"id":…,"body":{"Explanation":{…,"candidates":` — follow with
/// the cached candidates-array bytes and [`SPLICE_ENVELOPE_TAIL`].
pub fn splice_envelope_head(out: &mut Vec<u8>, id: u64, question: &str, table: &str) {
    out.extend_from_slice(b"{\"v\":");
    write_json_u64(out, PROTOCOL_VERSION);
    out.extend_from_slice(b",\"id\":");
    write_json_u64(out, id);
    out.extend_from_slice(b",\"body\":");
    splice_body_head(out, question, table);
}

/// Assemble the *frame head* of a spliced explanation response into
/// `out` (cleared first): the 4-byte length prefix covering head + the
/// `body_len` cached bytes + [`SPLICE_ENVELOPE_TAIL`], then the envelope
/// head. Returns `false` (leaving `out` empty) when the assembled
/// payload would overflow the `u32` frame prefix — the caller falls back
/// to a structured error.
pub fn spliced_frame_head(
    out: &mut Vec<u8>,
    id: u64,
    question: &str,
    table: &str,
    body_len: usize,
) -> bool {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    splice_envelope_head(out, id, question, table);
    let payload = (out.len() - 4)
        .saturating_add(body_len)
        .saturating_add(SPLICE_ENVELOPE_TAIL.len());
    match u32::try_from(payload) {
        Ok(len) => {
            out[..4].copy_from_slice(&len.to_be_bytes());
            true
        }
        Err(_) => {
            out.clear();
            false
        }
    }
}

/// Build one complete error-envelope frame (length prefix + JSON) by
/// direct byte writing. Infallible by construction — this is what the
/// serving layer emits when response serialization itself fails, so a
/// client always hears something structured rather than an empty frame.
pub fn error_frame(id: u64, error: &WireError) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + error.message.len());
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(b"{\"v\":");
    write_json_u64(&mut out, PROTOCOL_VERSION);
    out.extend_from_slice(b",\"id\":");
    write_json_u64(&mut out, id);
    out.extend_from_slice(b",\"body\":{\"Error\":{\"code\":");
    write_json_string(&mut out, error.code.wire_name());
    out.extend_from_slice(b",\"message\":");
    write_json_string(&mut out, &error.message);
    out.extend_from_slice(b",\"retry_after_ms\":");
    match error.retry_after_ms {
        Some(ms) => write_json_u64(&mut out, ms),
        None => out.extend_from_slice(b"null"),
    }
    out.extend_from_slice(b"}}}");
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_be_bytes());
    out
}

impl ErrorCode {
    /// The externally-tagged unit-variant name serde writes on the wire.
    fn wire_name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "Malformed",
            ErrorCode::UnsupportedVersion => "UnsupportedVersion",
            ErrorCode::FrameTooLarge => "FrameTooLarge",
            ErrorCode::Overloaded => "Overloaded",
            ErrorCode::UnknownTable => "UnknownTable",
            ErrorCode::BatchTooLarge => "BatchTooLarge",
            ErrorCode::Internal => "Internal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_and_truncated_frames_are_distinguished() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 32]).unwrap();
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor, 16),
            Err(FrameError::TooLarge {
                declared: 32,
                max: 16
            })
        ));
        // A prefix promising more bytes than the stream holds.
        let mut cursor = &buf[..20];
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Truncated)
        ));
        // A torn prefix.
        let mut cursor = &buf[..2];
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn decoder_handles_byte_at_a_time_feeding() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"worlds").unwrap();

        let mut decoder = FrameDecoder::new(64);
        let mut frames = Vec::new();
        for byte in &stream {
            let mut input = std::slice::from_ref(byte);
            // Keep polling until the byte is consumed *and* no further
            // frame completes — a zero-length frame materializes on its
            // last prefix byte with nothing left to feed.
            while let Some(frame) = decoder.feed(&mut input).unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(
            frames,
            vec![b"hello".to_vec(), b"".to_vec(), b"worlds".to_vec()]
        );
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn decoder_yields_multiple_frames_from_one_buffer() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"one").unwrap();
        write_frame(&mut stream, b"two").unwrap();
        let mut decoder = FrameDecoder::new(64);
        let mut input = &stream[..];
        assert_eq!(decoder.feed(&mut input).unwrap().unwrap(), b"one");
        assert_eq!(decoder.feed(&mut input).unwrap().unwrap(), b"two");
        assert!(decoder.feed(&mut input).unwrap().is_none());
        assert!(input.is_empty());
    }

    #[test]
    fn decoder_rejects_oversized_frames_before_buffering_and_stays_poisoned() {
        let mut decoder = FrameDecoder::new(16);
        let mut input: &[u8] = &4096u32.to_be_bytes();
        assert!(matches!(
            decoder.feed(&mut input),
            Err(FrameError::TooLarge {
                declared: 4096,
                max: 16
            })
        ));
        // Sticky: the stream position is untrustworthy now.
        let mut more: &[u8] = b"abcd";
        assert!(matches!(
            decoder.feed(&mut more),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn decoder_tracks_mid_frame_for_truncation_detection() {
        let mut decoder = FrameDecoder::new(64);
        assert!(!decoder.mid_frame());
        let mut input: &[u8] = &[0x00, 0x00];
        assert!(decoder.feed(&mut input).unwrap().is_none());
        assert!(decoder.mid_frame(), "half a prefix is mid-frame");
        let mut rest: &[u8] = &[0x00, 0x03, b'a'];
        assert!(decoder.feed(&mut rest).unwrap().is_none());
        assert!(decoder.mid_frame(), "a partial payload is mid-frame");
        let mut tail: &[u8] = b"bc";
        assert_eq!(decoder.feed(&mut tail).unwrap().unwrap(), b"abc");
        assert!(!decoder.mid_frame());
    }

    #[test]
    fn encode_frame_matches_write_frame() {
        let mut written = Vec::new();
        write_frame(&mut written, b"payload").unwrap();
        assert_eq!(encode_frame(b"payload").unwrap(), written);
    }

    #[test]
    fn envelopes_round_trip_through_json() {
        let request = RequestEnvelope {
            v: PROTOCOL_VERSION,
            id: 7,
            body: RequestBody::Explain(ExplainBody {
                question: "Which city hosted in 2008?".to_string(),
                table: "olympics".to_string(),
                top_k: Some(3),
            }),
        };
        let json = serde_json::to_string(&request).unwrap();
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back.v, PROTOCOL_VERSION);
        assert_eq!(back.id, 7);
        match back.body {
            RequestBody::Explain(body) => {
                assert_eq!(body.question, "Which city hosted in 2008?");
                assert_eq!(body.table, "olympics");
                assert_eq!(body.top_k, Some(3));
            }
            other => panic!("wrong body: {other:?}"),
        }

        // Unit variants serialize as bare strings.
        let stats = RequestEnvelope {
            v: PROTOCOL_VERSION,
            id: 1,
            body: RequestBody::Stats,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"Stats\""));
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert!(matches!(back.body, RequestBody::Stats));
    }

    #[test]
    fn error_codes_round_trip() {
        let err = WireError {
            code: ErrorCode::Overloaded,
            message: "queue full".to_string(),
            retry_after_ms: Some(50),
        };
        let json = serde_json::to_string(&ResponseBody::Error(err.clone())).unwrap();
        let back: ResponseBody = serde_json::from_str(&json).unwrap();
        match back {
            ResponseBody::Error(parsed) => assert_eq!(parsed, err),
            other => panic!("wrong body: {other:?}"),
        }
    }

    /// The full-serialization reference a spliced envelope must match.
    fn reference_envelope(
        id: u64,
        question: &str,
        table: &str,
        candidates: &[WireCandidate],
    ) -> (String, String) {
        let envelope = ResponseEnvelope {
            v: PROTOCOL_VERSION,
            id,
            body: ResponseBody::Explanation(WireExplanation {
                question: question.to_string(),
                table: table.to_string(),
                candidates: candidates.to_vec(),
                error: None,
            }),
        };
        let body = match &envelope.body {
            ResponseBody::Explanation(_) => serde_json::to_string(&envelope.body).unwrap(),
            _ => unreachable!(),
        };
        (serde_json::to_string(&envelope).unwrap(), body)
    }

    fn splice(
        id: u64,
        question: &str,
        table: &str,
        candidates: &[WireCandidate],
    ) -> (Vec<u8>, Vec<u8>) {
        let cached = serde_json::to_string(&candidates.to_vec())
            .unwrap()
            .into_bytes();
        let mut framed = Vec::new();
        splice_envelope_head(&mut framed, id, question, table);
        framed.extend_from_slice(&cached);
        framed.extend_from_slice(SPLICE_ENVELOPE_TAIL);
        let mut body = Vec::new();
        splice_body_head(&mut body, question, table);
        body.extend_from_slice(&cached);
        body.extend_from_slice(SPLICE_BODY_TAIL);
        (framed, body)
    }

    fn sample_candidate(seed: u64) -> WireCandidate {
        WireCandidate {
            formula: format!("count(rows {seed})"),
            score: seed as f64 * 0.25 - 1.5,
            answer: wtq_core::dcs::Answer::Number(seed as f64 + 0.5),
            utterance: format!("counts \"row\" #{seed}\nacross the table"),
            sql: seed.is_multiple_of(2).then(|| format!("SELECT COUNT(*) FROM t{seed}")),
            highlights: format!("| r{seed} |\t…"),
            output_cells: seed as usize,
            execution_cells: seed as usize * 2,
            column_cells: 1,
        }
    }

    #[test]
    fn spliced_envelopes_match_full_serialization() {
        let candidates: Vec<WireCandidate> = (0..3).map(sample_candidate).collect();
        for (id, question, table) in [
            (0u64, "plain question", "olympics"),
            (7, "with \"quotes\" and \\ backslash", "t\tname"),
            (u64::MAX, "newline\nand control\u{1}char", "ünïcødé 表"),
        ] {
            let (full_env, full_body) = reference_envelope(id, question, table, &candidates);
            let (framed, body) = splice(id, question, table, &candidates);
            assert_eq!(String::from_utf8(framed).unwrap(), full_env);
            assert_eq!(String::from_utf8(body).unwrap(), full_body);
        }
        // Empty candidate lists splice too.
        let (full_env, _) = reference_envelope(3, "q", "t", &[]);
        let (framed, _) = splice(3, "q", "t", &[]);
        assert_eq!(String::from_utf8(framed).unwrap(), full_env);
    }

    #[test]
    fn spliced_frame_head_prefixes_the_assembled_length() {
        let candidates: Vec<WireCandidate> = (0..2).map(sample_candidate).collect();
        let cached = serde_json::to_string(&candidates).unwrap().into_bytes();
        let mut head = vec![1, 2, 3]; // recycled buffer with leftovers
        assert!(spliced_frame_head(
            &mut head,
            42,
            "q?",
            "medals",
            cached.len()
        ));
        let mut frame = head.clone();
        frame.extend_from_slice(&cached);
        frame.extend_from_slice(SPLICE_ENVELOPE_TAIL);
        let declared = u32::from_be_bytes(frame[..4].try_into().unwrap());
        assert_eq!(declared as usize, frame.len() - 4);
        let (reference, _) = reference_envelope(42, "q?", "medals", &candidates);
        assert_eq!(encode_frame(reference.as_bytes()).unwrap(), frame);
    }

    #[test]
    fn error_frames_match_full_serialization() {
        for (id, code, message, retry) in [
            (
                0u64,
                ErrorCode::Internal,
                "handler panicked".to_string(),
                None,
            ),
            (
                9,
                ErrorCode::Overloaded,
                "queue \"full\"\n".to_string(),
                Some(50u64),
            ),
            (
                u64::MAX,
                ErrorCode::FrameTooLarge,
                "×\u{2}".to_string(),
                None,
            ),
        ] {
            let error = WireError {
                code,
                message,
                retry_after_ms: retry,
            };
            let envelope = ResponseEnvelope {
                v: PROTOCOL_VERSION,
                id,
                body: ResponseBody::Error(error.clone()),
            };
            let reference =
                encode_frame(serde_json::to_string(&envelope).unwrap().as_bytes()).unwrap();
            assert_eq!(error_frame(id, &error), reference);
        }
    }
}

#[cfg(test)]
mod splice_proptests {
    use super::*;
    use proptest::prelude::*;
    use proptest::string::string_regex;

    /// Text exercising every branch of the JSON escaper: the full printable
    /// ASCII range (includes `"` and `\`), escaped whitespace, raw control
    /// characters, and multi-byte unicode.
    fn arb_text(max_len: usize) -> proptest::string::RegexGeneratorStrategy {
        let pattern = format!("[ -~\\n\\r\\t\u{1}\u{2}\u{1f}àé表🙂]{{0,{max_len}}}");
        string_regex(&pattern).expect("valid escaper-coverage pattern")
    }

    fn arb_candidate() -> BoxedStrategy<WireCandidate> {
        (
            (arb_text(24), any::<f64>(), any::<f64>(), arb_text(40)),
            (
                prop_oneof![Just(None), arb_text(24).prop_map(Some),],
                arb_text(48),
                0usize..1000,
            ),
        )
            .prop_map(
                |((formula, score, answer, utterance), (sql, highlights, cells))| WireCandidate {
                    formula,
                    score,
                    answer: wtq_core::dcs::Answer::Number(answer),
                    utterance,
                    sql,
                    highlights,
                    output_cells: cells,
                    execution_cells: cells / 2,
                    column_cells: cells % 7,
                },
            )
            .boxed()
    }

    proptest! {
        /// The tentpole pin: across random ids, questions, table names and
        /// candidate payloads (quotes, backslashes, control characters,
        /// non-ASCII — everything the escaper handles), a spliced envelope
        /// is byte-identical to `serde_json::to_string` of the equivalent
        /// [`ResponseEnvelope`], and the spliced bare body to the
        /// equivalent [`ResponseBody`].
        #[test]
        fn spliced_envelopes_are_byte_identical_to_serde(
            id in any::<u64>(),
            question in arb_text(60),
            table in arb_text(30),
            candidates in proptest::collection::vec(arb_candidate(), 0..4),
        ) {
            let cached = serde_json::to_string(&candidates).unwrap().into_bytes();

            let envelope = ResponseEnvelope {
                v: PROTOCOL_VERSION,
                id,
                body: ResponseBody::Explanation(WireExplanation {
                    question: question.clone(),
                    table: table.clone(),
                    candidates: candidates.clone(),
                    error: None,
                }),
            };
            let full = serde_json::to_string(&envelope).unwrap();
            let mut spliced = Vec::new();
            splice_envelope_head(&mut spliced, id, &question, &table);
            spliced.extend_from_slice(&cached);
            spliced.extend_from_slice(SPLICE_ENVELOPE_TAIL);
            prop_assert_eq!(&spliced, full.as_bytes());

            let full_body = serde_json::to_string(&envelope.body).unwrap();
            let mut spliced_body = Vec::new();
            splice_body_head(&mut spliced_body, &question, &table);
            spliced_body.extend_from_slice(&cached);
            spliced_body.extend_from_slice(SPLICE_BODY_TAIL);
            prop_assert_eq!(&spliced_body, full_body.as_bytes());

            let mut head = vec![0xFFu8; 7]; // dirty recycled buffer
            prop_assert!(spliced_frame_head(&mut head, id, &question, &table, cached.len()));
            head.extend_from_slice(&cached);
            head.extend_from_slice(SPLICE_ENVELOPE_TAIL);
            prop_assert_eq!(&head, &encode_frame(full.as_bytes()).unwrap());
        }

        #[test]
        fn error_frames_are_byte_identical_to_serde(
            id in any::<u64>(),
            message in arb_text(60),
            retry in prop_oneof![Just(None), any::<u64>().prop_map(Some)],
            code_index in 0usize..7,
        ) {
            let code = [
                ErrorCode::Malformed,
                ErrorCode::UnsupportedVersion,
                ErrorCode::FrameTooLarge,
                ErrorCode::Overloaded,
                ErrorCode::UnknownTable,
                ErrorCode::BatchTooLarge,
                ErrorCode::Internal,
            ][code_index];
            let error = WireError { code, message, retry_after_ms: retry };
            let envelope = ResponseEnvelope {
                v: PROTOCOL_VERSION,
                id,
                body: ResponseBody::Error(error.clone()),
            };
            let reference =
                encode_frame(serde_json::to_string(&envelope).unwrap().as_bytes()).unwrap();
            prop_assert_eq!(error_frame(id, &error), reference);
        }
    }
}
