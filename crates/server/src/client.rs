//! A blocking client for the framed JSON protocol — what tests, benches and
//! the `serve` tooling use to talk to a [`crate::Server`].

use std::net::{TcpStream, ToSocketAddrs};

use wtq_table::TableSummary;

use crate::wire::{
    self, ExplainBatchBody, ExplainBody, FrameError, RequestBody, RequestEnvelope, ResponseBody,
    ResponseEnvelope, StatsBody, WireError, WireExplanation,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket-level failure.
    Io(std::io::Error),
    /// The connection broke mid-frame (or the server closed it).
    Frame(FrameError),
    /// The server answered something that is not the protocol (bad JSON,
    /// wrong version, mismatched correlation id, wrong body type).
    Protocol(String),
    /// The server answered with a structured error (backpressure,
    /// unknown table, …).
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::Frame(err) => write!(f, "framing error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server(err) => write!(f, "server error: {err}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> ClientError {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> ClientError {
        ClientError::Frame(err)
    }
}

/// A blocking connection to a server. One request is in flight at a time;
/// the client correlates responses by envelope id and checks the protocol
/// version on every reply.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_len: u32,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Raise (or lower) the largest response frame this client accepts —
    /// large batches over wide tables can exceed the
    /// [`wire::DEFAULT_MAX_FRAME_LEN`] default, and a frame over the limit
    /// is a connection-fatal [`FrameError::TooLarge`] (the payload is left
    /// unread, so the stream position cannot be trusted afterwards).
    pub fn set_max_frame_len(&mut self, max_frame_len: u32) {
        self.max_frame_len = max_frame_len;
    }

    /// Explain one question over the registered table `table`.
    pub fn explain(
        &mut self,
        question: &str,
        table: &str,
        top_k: Option<usize>,
    ) -> Result<WireExplanation, ClientError> {
        let body = RequestBody::Explain(ExplainBody {
            question: question.to_string(),
            table: table.to_string(),
            top_k,
        });
        match self.call(body)? {
            ResponseBody::Explanation(explanation) => Ok(explanation),
            other => Err(unexpected("Explanation", &other)),
        }
    }

    /// Explain a batch of questions; results come back in request order.
    pub fn explain_batch(
        &mut self,
        requests: Vec<ExplainBody>,
    ) -> Result<Vec<WireExplanation>, ClientError> {
        let body = RequestBody::ExplainBatch(ExplainBatchBody { requests });
        match self.call(body)? {
            ResponseBody::Batch(batch) => Ok(batch.explanations),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// List the tables registered on the server.
    pub fn list_tables(&mut self) -> Result<Vec<TableSummary>, ClientError> {
        match self.call(RequestBody::ListTables)? {
            ResponseBody::Tables(tables) => Ok(tables.tables),
            other => Err(unexpected("Tables", &other)),
        }
    }

    /// Engine + server statistics.
    pub fn stats(&mut self) -> Result<StatsBody, ClientError> {
        match self.call(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Send one request and read its response body. Structured server
    /// errors surface as [`ClientError::Server`].
    pub fn call(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = RequestEnvelope {
            v: wire::PROTOCOL_VERSION,
            id,
            body,
        };
        let json = serde_json::to_string(&envelope)
            .map_err(|err| ClientError::Protocol(format!("request serialization: {err}")))?;
        wire::write_frame(&mut self.stream, json.as_bytes())?;

        let payload = wire::read_frame(&mut self.stream, self.max_frame_len)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
        let response: ResponseEnvelope = serde_json::from_str(text)
            .map_err(|err| ClientError::Protocol(format!("response parse: {err}")))?;
        if response.v != wire::PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server speaks protocol version {}",
                response.v
            )));
        }
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        match response.body {
            ResponseBody::Error(err) => Err(ClientError::Server(err)),
            body => Ok(body),
        }
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    let variant = match got {
        ResponseBody::Explanation(_) => "Explanation",
        ResponseBody::Batch(_) => "Batch",
        ResponseBody::Tables(_) => "Tables",
        ResponseBody::Stats(_) => "Stats",
        ResponseBody::Error(_) => "Error",
    };
    ClientError::Protocol(format!("expected a {wanted} response, got {variant}"))
}
