//! A blocking client for the framed JSON protocol — what tests, benches and
//! the `serve` tooling use to talk to a [`crate::Server`].
//!
//! Production callers should prefer [`Client::connect_with`] (bounded
//! connect/read/write waits instead of indefinite blocking) and the
//! `*_with_retry` helpers, which honor the server's `retry_after_ms`
//! backpressure hint instead of forcing every caller to hand-roll the
//! backoff loop.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use wtq_table::TableSummary;

use crate::wire::{
    self, ExplainBatchBody, ExplainBody, FrameError, RequestBody, RequestEnvelope, ResponseBody,
    ResponseEnvelope, StatsBody, TraceRecentBody, WireError, WireExplanation,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket-level failure.
    Io(std::io::Error),
    /// The connection broke mid-frame (or the server closed it).
    Frame(FrameError),
    /// The server answered something that is not the protocol (bad JSON,
    /// wrong version, mismatched correlation id, wrong body type).
    Protocol(String),
    /// The server answered with a structured error (backpressure,
    /// unknown table, …).
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::Frame(err) => write!(f, "framing error: {err}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Server(err) => write!(f, "server error: {err}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> ClientError {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> ClientError {
        ClientError::Frame(err)
    }
}

/// Timeouts for [`Client::connect_with`]. `None` fields block
/// indefinitely, matching the plain [`Client::connect`] behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectOptions {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Bound on each socket read while awaiting a response.
    pub read_timeout: Option<Duration>,
    /// Bound on each socket write while sending a request.
    pub write_timeout: Option<Duration>,
}

/// How the `*_with_retry` helpers respond to `Overloaded` rejections.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (so `max_retries: 2` sends at
    /// most 3 requests).
    pub max_retries: u32,
    /// Backoff when the rejection carries no `retry_after_ms` hint.
    pub default_backoff: Duration,
    /// Upper bound on any single backoff sleep, whatever the server hints.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            default_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// A blocking connection to a server. One request is in flight at a time;
/// the client correlates responses by envelope id and checks the protocol
/// version on every reply.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_len: u32,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with(addr, ConnectOptions::default())
    }

    /// Connect to `addr` with explicit timeouts. A `connect_timeout`
    /// bounds each candidate address; read/write timeouts persist on the
    /// connection (a timed-out read surfaces as [`ClientError::Io`] with
    /// kind `WouldBlock`/`TimedOut`, and the connection should be dropped:
    /// a late response would desynchronize the stream).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: ConnectOptions,
    ) -> std::io::Result<Client> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
                let mut last_err = None;
                let mut connected = None;
                for candidate in addrs {
                    match TcpStream::connect_timeout(&candidate, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(err) => last_err = Some(err),
                    }
                }
                connected.ok_or_else(|| {
                    last_err.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to nothing",
                        )
                    })
                })?
            }
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        Ok(Client {
            stream,
            next_id: 1,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Change the per-read timeout on the live connection.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Raise (or lower) the largest response frame this client accepts —
    /// large batches over wide tables can exceed the
    /// [`wire::DEFAULT_MAX_FRAME_LEN`] default, and a frame over the limit
    /// is a connection-fatal [`FrameError::TooLarge`] (the payload is left
    /// unread, so the stream position cannot be trusted afterwards).
    pub fn set_max_frame_len(&mut self, max_frame_len: u32) {
        self.max_frame_len = max_frame_len;
    }

    /// Explain one question over the registered table `table`.
    pub fn explain(
        &mut self,
        question: &str,
        table: &str,
        top_k: Option<usize>,
    ) -> Result<WireExplanation, ClientError> {
        let body = RequestBody::Explain(ExplainBody {
            question: question.to_string(),
            table: table.to_string(),
            top_k,
        });
        match self.call(body)? {
            ResponseBody::Explanation(explanation) => Ok(explanation),
            other => Err(unexpected("Explanation", &other)),
        }
    }

    /// Explain a batch of questions; results come back in request order.
    pub fn explain_batch(
        &mut self,
        requests: Vec<ExplainBody>,
    ) -> Result<Vec<WireExplanation>, ClientError> {
        let body = RequestBody::ExplainBatch(ExplainBatchBody { requests });
        match self.call(body)? {
            ResponseBody::Batch(batch) => Ok(batch.explanations),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// List the tables registered on the server.
    pub fn list_tables(&mut self) -> Result<Vec<TableSummary>, ClientError> {
        match self.call(RequestBody::ListTables)? {
            ResponseBody::Tables(tables) => Ok(tables.tables),
            other => Err(unexpected("Tables", &other)),
        }
    }

    /// Engine + server statistics.
    pub fn stats(&mut self) -> Result<StatsBody, ClientError> {
        match self.call(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(*stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// The server's metrics registry as Prometheus exposition text — the
    /// same bytes `GET /metrics` serves.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(RequestBody::Metrics)? {
            ResponseBody::Metrics(metrics) => Ok(metrics.text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// The server's sampled request traces (recent + slowest rings).
    pub fn trace_recent(&mut self) -> Result<TraceRecentBody, ClientError> {
        match self.call(RequestBody::TraceRecent)? {
            ResponseBody::TraceRecent(traces) => Ok(traces),
            other => Err(unexpected("TraceRecent", &other)),
        }
    }

    /// [`Client::explain`] with backpressure retries: an `Overloaded`
    /// rejection sleeps out the server's `retry_after_ms` hint (bounded by
    /// the policy) and tries again. Rejections keep the connection alive,
    /// so retries reuse it.
    pub fn explain_with_retry(
        &mut self,
        question: &str,
        table: &str,
        top_k: Option<usize>,
        policy: &RetryPolicy,
    ) -> Result<WireExplanation, ClientError> {
        let body = RequestBody::Explain(ExplainBody {
            question: question.to_string(),
            table: table.to_string(),
            top_k,
        });
        match self.call_with_retry(body, policy)? {
            ResponseBody::Explanation(explanation) => Ok(explanation),
            other => Err(unexpected("Explanation", &other)),
        }
    }

    /// [`Client::explain_batch`] with backpressure retries (see
    /// [`Client::explain_with_retry`]).
    pub fn explain_batch_with_retry(
        &mut self,
        requests: Vec<ExplainBody>,
        policy: &RetryPolicy,
    ) -> Result<Vec<WireExplanation>, ClientError> {
        let body = RequestBody::ExplainBatch(ExplainBatchBody { requests });
        match self.call_with_retry(body, policy)? {
            ResponseBody::Batch(batch) => Ok(batch.explanations),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// [`Client::call`], but an [`ErrorCode::Overloaded`] rejection is
    /// retried up to `policy.max_retries` times, sleeping the server's
    /// `retry_after_ms` hint (or `policy.default_backoff` without one,
    /// always capped by `policy.max_backoff`) between attempts. Any other
    /// outcome — success, a different server error, an I/O failure —
    /// returns immediately; the final rejection is returned as-is when the
    /// budget runs out.
    pub fn call_with_retry(
        &mut self,
        body: RequestBody,
        policy: &RetryPolicy,
    ) -> Result<ResponseBody, ClientError> {
        let mut attempts_left = policy.max_retries;
        loop {
            match self.call(body.clone()) {
                Err(ClientError::Server(err))
                    if err.code == wire::ErrorCode::Overloaded && attempts_left > 0 =>
                {
                    attempts_left -= 1;
                    let backoff = err
                        .retry_after_ms
                        .map(Duration::from_millis)
                        .unwrap_or(policy.default_backoff)
                        .min(policy.max_backoff);
                    std::thread::sleep(backoff);
                }
                outcome => return outcome,
            }
        }
    }

    /// Send one request and read its response body. Structured server
    /// errors surface as [`ClientError::Server`].
    pub fn call(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = RequestEnvelope {
            v: wire::PROTOCOL_VERSION,
            id,
            body,
        };
        let json = serde_json::to_string(&envelope)
            .map_err(|err| ClientError::Protocol(format!("request serialization: {err}")))?;
        wire::write_frame(&mut self.stream, json.as_bytes())?;

        let payload = wire::read_frame(&mut self.stream, self.max_frame_len)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
        let response: ResponseEnvelope = serde_json::from_str(text)
            .map_err(|err| ClientError::Protocol(format!("response parse: {err}")))?;
        if response.v != wire::PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server speaks protocol version {}",
                response.v
            )));
        }
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        match response.body {
            ResponseBody::Error(err) => Err(ClientError::Server(err)),
            body => Ok(body),
        }
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    let variant = match got {
        ResponseBody::Explanation(_) => "Explanation",
        ResponseBody::Batch(_) => "Batch",
        ResponseBody::Tables(_) => "Tables",
        ResponseBody::Stats(_) => "Stats",
        ResponseBody::Metrics(_) => "Metrics",
        ResponseBody::TraceRecent(_) => "TraceRecent",
        ResponseBody::Error(_) => "Error",
    };
    ClientError::Protocol(format!("expected a {wanted} response, got {variant}"))
}
