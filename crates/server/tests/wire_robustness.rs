//! Wire-format robustness: malformed JSON, oversized frames, truncated
//! prefixes, unknown protocol versions and outright random bytes must all
//! produce structured errors (or a clean connection drop) — and must never
//! kill the accept loop.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use wtq_core::Engine;
use wtq_server::{
    wire, Client, ErrorCode, RequestBody, ResponseBody, ResponseEnvelope, Server, ServerConfig,
    ServerHandle,
};
use wtq_table::{samples, Catalog};

/// Boot a loopback server over the sample tables.
fn boot(config: ServerConfig) -> ServerHandle {
    let engine = Arc::new(Engine::new());
    let catalog: Arc<Catalog> = Arc::new(
        [samples::olympics(), samples::medals()]
            .into_iter()
            .collect(),
    );
    Server::bind("127.0.0.1:0", engine, catalog, config).expect("bind loopback")
}

/// Send one raw frame and read one response envelope off the same stream.
fn roundtrip_raw(stream: &mut TcpStream, payload: &[u8]) -> ResponseEnvelope {
    wire::write_frame(stream, payload).expect("write frame");
    let response = wire::read_frame(stream, wire::DEFAULT_MAX_FRAME_LEN).expect("read frame");
    let text = std::str::from_utf8(&response).expect("UTF-8 response");
    serde_json::from_str(text).expect("response envelope parses")
}

fn error_code(envelope: &ResponseEnvelope) -> Option<ErrorCode> {
    match &envelope.body {
        ResponseBody::Error(err) => Some(err.code),
        _ => None,
    }
}

/// The server stays reachable: a fresh connection completes a request.
fn assert_server_alive(handle: &ServerHandle) {
    let mut client = Client::connect(handle.local_addr()).expect("server accepts connections");
    let tables = client.list_tables().expect("list_tables succeeds");
    assert_eq!(tables.len(), 2);
}

#[test]
fn malformed_json_yields_a_structured_error_and_keeps_the_connection() {
    let handle = boot(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let response = roundtrip_raw(&mut stream, b"{this is not json");
    assert_eq!(error_code(&response), Some(ErrorCode::Malformed));

    // The same connection still serves a valid request afterwards.
    let valid = serde_json::to_string(&wtq_server::RequestEnvelope {
        v: wtq_server::PROTOCOL_VERSION,
        id: 9,
        body: RequestBody::ListTables,
    })
    .unwrap();
    let response = roundtrip_raw(&mut stream, valid.as_bytes());
    assert_eq!(response.id, 9);
    assert!(matches!(response.body, ResponseBody::Tables(_)));
    assert!(handle.server_stats().protocol_errors >= 1);
    handle.shutdown();
}

#[test]
fn unknown_protocol_version_is_rejected_with_the_request_id() {
    let handle = boot(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = serde_json::to_string(&wtq_server::RequestEnvelope {
        v: 99,
        id: 42,
        body: RequestBody::ListTables,
    })
    .unwrap();
    let response = roundtrip_raw(&mut stream, request.as_bytes());
    assert_eq!(response.id, 42);
    assert_eq!(error_code(&response), Some(ErrorCode::UnsupportedVersion));
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn unknown_body_variant_is_malformed_not_fatal() {
    let handle = boot(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let response = roundtrip_raw(
        &mut stream,
        br#"{"v": 1, "id": 3, "body": {"SelfDestruct": {}}}"#,
    );
    assert_eq!(error_code(&response), Some(ErrorCode::Malformed));
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn oversized_frame_is_rejected_then_the_connection_closes() {
    let config = ServerConfig {
        max_frame_len: 1024,
        ..ServerConfig::default()
    };
    let handle = boot(config);
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Declare a payload over the limit; send only the prefix.
    stream.write_all(&4096u32.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let response = wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN).expect("error frame");
    let envelope: ResponseEnvelope =
        serde_json::from_str(std::str::from_utf8(&response).unwrap()).unwrap();
    assert_eq!(error_code(&envelope), Some(ErrorCode::FrameTooLarge));
    // The stream position is untrustworthy, so the server closes.
    assert!(matches!(
        wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN),
        Err(wire::FrameError::Closed) | Err(wire::FrameError::Io(_))
    ));
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn truncated_prefix_drops_the_connection_without_killing_the_server() {
    let handle = boot(ServerConfig::default());
    {
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        // Two bytes of a length prefix, then a hard disconnect.
        stream.write_all(&[0x00, 0x01]).unwrap();
        stream.flush().unwrap();
    }
    {
        // A complete prefix promising a payload that never arrives.
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.write_all(&64u32.to_be_bytes()).unwrap();
        stream.write_all(&[0xAB; 10]).unwrap();
        stream.flush().unwrap();
    }
    assert_server_alive(&handle);
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte payloads framed correctly: every one draws a
    /// structured response (random bytes never parse as an envelope, so it
    /// is always an error), and the server survives to serve a real client.
    #[test]
    fn random_byte_frames_never_kill_the_accept_loop(payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let handle = boot(ServerConfig::default());
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        wire::write_frame(&mut stream, &payload).unwrap();
        let response = wire::read_frame(&mut stream, wire::DEFAULT_MAX_FRAME_LEN)
            .expect("a structured response comes back");
        let envelope: ResponseEnvelope =
            serde_json::from_str(std::str::from_utf8(&response).unwrap())
                .expect("response is a valid envelope");
        prop_assert!(error_code(&envelope).is_some());
        drop(stream);
        assert_server_alive(&handle);
        handle.shutdown();
    }

    /// Arbitrary *unframed* byte streams (including ones that sniff as
    /// HTTP-ish garbage) never take the server down.
    #[test]
    fn random_raw_streams_never_kill_the_accept_loop(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let handle = boot(ServerConfig::default());
        {
            let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
            let _ = stream.write_all(&bytes);
            let _ = stream.flush();
        }
        assert_server_alive(&handle);
        handle.shutdown();
    }
}
