//! Slow-writer robustness: many connections dribbling a valid frame one
//! byte at a time must not block other clients — the property the
//! incremental decoders + readiness loop exist for, and one that is
//! *impossible* under blocking `read_exact` with a thread per connection
//! pool bound (each dribbler would pin a thread for the whole dribble).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use wtq_core::Engine;
use wtq_server::{
    wire, Client, ConnectOptions, RequestBody, ResponseBody, ResponseEnvelope, Server,
    ServerConfig, ServerHandle,
};
use wtq_table::{samples, Catalog};

fn boot(config: ServerConfig) -> ServerHandle {
    let engine = Arc::new(Engine::new());
    let catalog: Arc<Catalog> = Arc::new(
        [samples::olympics(), samples::medals()]
            .into_iter()
            .collect(),
    );
    Server::bind("127.0.0.1:0", engine, catalog, config).expect("bind loopback")
}

/// A valid `ListTables` request as raw frame bytes.
fn list_tables_frame() -> Vec<u8> {
    let envelope = wtq_server::RequestEnvelope {
        v: wtq_server::PROTOCOL_VERSION,
        id: 1,
        body: RequestBody::ListTables,
    };
    let json = serde_json::to_string(&envelope).unwrap();
    wire::encode_frame(json.as_bytes()).unwrap()
}

#[test]
fn slow_loris_writers_do_not_starve_other_clients() {
    let handle = boot(ServerConfig::default());
    let addr = handle.local_addr();
    let frame = list_tables_frame();

    // Many connections, each fed every byte of a valid frame EXCEPT the
    // last — afterwards they all sit mid-frame, deterministically, the
    // exact state a blocking read_exact server would burn one stack each
    // on.
    const LORIS: usize = 32;
    let mut dribblers: Vec<TcpStream> = (0..LORIS)
        .map(|_| TcpStream::connect(addr).expect("loris connects"))
        .collect();
    let (head, last) = frame.split_at(frame.len() - 1);
    for byte in head {
        for stream in &mut dribblers {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            stream.flush().unwrap();
        }
    }

    // With every dribbler mid-frame, a normal client still completes real
    // work — repeatedly, across both protocols' shared dispatch core.
    let mut client = Client::connect_with(
        addr,
        ConnectOptions {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        },
    )
    .expect("normal client connects while dribblers hold their frames");
    for _ in 0..3 {
        let tables = client.list_tables().expect("control plane answers");
        assert_eq!(tables.len(), 2);
    }
    let explanation = client
        .explain("Which city hosted in 2008?", "olympics", Some(2))
        .expect("data plane answers");
    assert!(!explanation.candidates.is_empty());

    // The server really is holding all of them concurrently.
    let stats = handle.server_stats();
    assert!(
        stats.open_connections >= LORIS as u64,
        "expected ≥{LORIS} open connections, stats: {stats:?}"
    );

    // Release the last byte: every dribbled frame completes and gets a
    // correct, individually framed response — the decoders resumed exactly
    // where each connection left off.
    for stream in &mut dribblers {
        stream.write_all(last).unwrap();
        stream.flush().unwrap();
    }
    for stream in &mut dribblers {
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let payload =
            wire::read_frame(stream, wire::DEFAULT_MAX_FRAME_LEN).expect("dribbler gets an answer");
        let envelope: ResponseEnvelope =
            serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        assert_eq!(envelope.id, 1);
        assert!(
            matches!(envelope.body, ResponseBody::Tables(_)),
            "dribbled request must decode to the real request"
        );
    }
    handle.shutdown();
}

#[test]
fn slow_loris_http_request_completes_too() {
    let handle = boot(ServerConfig::default());
    let addr = handle.local_addr();
    let raw = b"GET /tables HTTP/1.1\r\nHost: x\r\n\r\n";

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for byte in raw {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    use std::io::Read;
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("\"olympics\""));
    handle.shutdown();
}

#[test]
fn read_timeout_bounds_a_stalled_connection() {
    // A listener that accepts and then never answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || listener.accept());

    let mut client = Client::connect_with(
        addr,
        ConnectOptions {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_millis(100)),
            write_timeout: Some(Duration::from_secs(5)),
        },
    )
    .expect("connect succeeds");
    let started = std::time::Instant::now();
    let outcome = client.list_tables();
    assert!(outcome.is_err(), "a silent server must not hang the client");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the read timeout must bound the wait, took {:?}",
        started.elapsed()
    );
    let _ = hold.join();
}
