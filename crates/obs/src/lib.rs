//! # wtq-obs
//!
//! The observability substrate of the serving stack: a [`Registry`] of
//! named counters, gauges and log-linear latency [`Histogram`]s that one
//! scrape surface (`GET /metrics`) renders in Prometheus text format, plus
//! sampled per-request traces ([`Tracer`] / [`RequestTrace`]) kept in a
//! fixed-size ring of recent and slowest requests (`GET /trace/recent`).
//!
//! Zero dependencies beyond `serde` (the workspace-wide serialization
//! baseline every stats snapshot already uses). Hot-path cost is designed
//! around relaxed atomics: a counter increment is one `fetch_add`, a
//! histogram observation is two `fetch_add`s plus a usually-quiet max
//! update, and an unsampled request never touches the trace ring.
//!
//! The registry is the *one source of truth for the scrape surface*: the
//! serving layer registers its native metrics (per-endpoint request
//! counters, stage latency histograms) directly, and re-registers the
//! pre-existing snapshot counters (`ServerStats`, `EngineStats`,
//! `PlannerStats`, `CacheStats`, the parse-stage timers) as mirrored
//! entries synced from their canonical atomics at scrape time — so the
//! subsystems keep their existing one-`fetch_add` write paths while
//! `/metrics` exposes everything under one coherent naming scheme.

pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{RequestTrace, SpanSnapshot, TraceSnapshot, Tracer};
