//! Sampled per-request traces: a [`Tracer`] decides which requests get a
//! [`RequestTrace`] handle, the handle accumulates named spans as the
//! request moves through the pipeline, and finished traces land in two
//! fixed-size rings — the most *recent* and the *slowest* — that the
//! `/trace/recent` surface snapshots.
//!
//! Sampling is deterministic every-Nth (`every = round(1 / rate)`): cheap
//! (one relaxed `fetch_add` per request), bias-free for steady workloads,
//! and exact at the common rates (1.0 → every request, 1/16 → every 16th).
//! A rate of zero disables the counter entirely, so the disabled
//! configuration pays nothing on the request path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One timed region inside a finished trace. Times are microseconds:
/// `start_us` is the offset from the start of the request, `duration_us`
/// the span length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanSnapshot {
    pub name: String,
    pub start_us: f64,
    pub duration_us: f64,
}

/// A finished, serializable trace. `seq` is the tracer-wide sample number
/// (monotonic, so clients can dedup across polls of `/trace/recent`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSnapshot {
    pub seq: u64,
    pub endpoint: String,
    pub detail: String,
    pub status: String,
    pub total_us: f64,
    pub spans: Vec<SpanSnapshot>,
}

/// A live trace for one sampled request. Created by [`Tracer::start`],
/// carried through the pipeline, and consumed by [`Tracer::finish`].
/// Span recording is plain vector pushes — no locks, no allocation beyond
/// the span names the caller already owns as `&'static str`s or `String`s.
#[derive(Debug)]
pub struct RequestTrace {
    seq: u64,
    started: Instant,
    endpoint: &'static str,
    detail: String,
    spans: Vec<Span>,
}

#[derive(Debug)]
struct Span {
    name: String,
    start_ns: u64,
    duration_ns: u64,
}

impl RequestTrace {
    /// Name the endpoint handling this request (`explain`, `metrics`, …).
    pub fn set_endpoint(&mut self, endpoint: &'static str) {
        self.endpoint = endpoint;
    }

    /// Attach a short free-form detail (e.g. the table id or question).
    pub fn set_detail(&mut self, detail: String) {
        self.detail = detail;
    }

    /// The instant this request entered the server (set by the tracer).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Record a span measured with two `Instant`s on the request clock.
    pub fn record(&mut self, name: impl Into<String>, start: Instant, end: Instant) {
        let start_ns = start.saturating_duration_since(self.started).as_nanos() as u64;
        let duration_ns = end.saturating_duration_since(start).as_nanos() as u64;
        self.spans.push(Span {
            name: name.into(),
            start_ns,
            duration_ns,
        });
    }

    /// Record a span from pre-measured offsets (used when the timing was
    /// captured before the trace existed, e.g. decode time on the reactor).
    pub fn record_ns(&mut self, name: impl Into<String>, start_ns: u64, duration_ns: u64) {
        self.spans.push(Span {
            name: name.into(),
            start_ns,
            duration_ns,
        });
    }

    fn into_snapshot(self, status: &str, total_ns: u64) -> TraceSnapshot {
        TraceSnapshot {
            seq: self.seq,
            endpoint: self.endpoint.to_string(),
            detail: self.detail,
            status: status.to_string(),
            total_us: total_ns as f64 / 1_000.0,
            spans: self
                .spans
                .into_iter()
                .map(|span| SpanSnapshot {
                    name: span.name,
                    start_us: span.start_ns as f64 / 1_000.0,
                    duration_us: span.duration_ns as f64 / 1_000.0,
                })
                .collect(),
        }
    }
}

#[derive(Default)]
struct Rings {
    /// Most recent finished traces, oldest first.
    recent: std::collections::VecDeque<TraceSnapshot>,
    /// Slowest finished traces, fastest first (so eviction pops index 0).
    slowest: Vec<TraceSnapshot>,
}

/// The per-server trace collector. Shared behind an `Arc` by every
/// connection; all methods take `&self`.
pub struct Tracer {
    /// Sample every Nth request; 0 disables tracing entirely.
    every: u64,
    ring_size: usize,
    requests: AtomicU64,
    sampled: AtomicU64,
    rings: Mutex<Rings>,
}

impl Tracer {
    /// `sample_rate` is the fraction of requests to trace (`0.0..=1.0`),
    /// realized as deterministic every-Nth sampling. `ring_size` caps both
    /// the recent and the slowest ring.
    pub fn new(sample_rate: f64, ring_size: usize) -> Tracer {
        let every = if sample_rate <= 0.0 {
            0
        } else {
            (1.0 / sample_rate.min(1.0)).round().max(1.0) as u64
        };
        Tracer {
            every,
            ring_size: ring_size.max(1),
            requests: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            rings: Mutex::new(Rings::default()),
        }
    }

    /// True when the configured rate samples nothing.
    pub fn disabled(&self) -> bool {
        self.every == 0
    }

    /// The effective every-Nth period (0 when disabled).
    pub fn period(&self) -> u64 {
        self.every
    }

    /// Count of traces sampled so far.
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Decide whether this request is sampled; if so, hand back a live
    /// trace anchored at `started` (the moment the request's first bytes
    /// arrived). Unsampled requests cost one relaxed `fetch_add`; with
    /// sampling disabled, nothing at all.
    pub fn start(&self, started: Instant) -> Option<RequestTrace> {
        if self.every == 0 {
            return None;
        }
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.every) {
            return None;
        }
        let seq = self.sampled.fetch_add(1, Ordering::Relaxed);
        Some(RequestTrace {
            seq,
            started,
            endpoint: "unknown",
            detail: String::new(),
            spans: Vec::with_capacity(8),
        })
    }

    /// File a finished trace into the rings. `total_ns` is the full
    /// request residency (first byte to response encoded).
    pub fn finish(&self, trace: RequestTrace, status: &str, total_ns: u64) {
        let snapshot = trace.into_snapshot(status, total_ns);
        let mut rings = self.rings.lock().expect("tracer poisoned");
        if rings.recent.len() == self.ring_size {
            rings.recent.pop_front();
        }
        rings.recent.push_back(snapshot.clone());
        let at = rings
            .slowest
            .partition_point(|t| t.total_us <= snapshot.total_us);
        rings.slowest.insert(at, snapshot);
        if rings.slowest.len() > self.ring_size {
            rings.slowest.remove(0);
        }
    }

    /// Copy out the rings: `(recent, slowest)`, recent newest-last and
    /// slowest slowest-last.
    pub fn snapshot(&self) -> (Vec<TraceSnapshot>, Vec<TraceSnapshot>) {
        let rings = self.rings.lock().expect("tracer poisoned");
        (
            rings.recent.iter().cloned().collect(),
            rings.slowest.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn finish_with_total(tracer: &Tracer, total_ns: u64) {
        let trace = tracer.start(Instant::now()).expect("sampled");
        tracer.finish(trace, "ok", total_ns);
    }

    #[test]
    fn rate_one_samples_every_request() {
        let tracer = Tracer::new(1.0, 8);
        assert_eq!(tracer.period(), 1);
        for _ in 0..5 {
            assert!(tracer.start(Instant::now()).is_some());
        }
        assert_eq!(tracer.sampled(), 5);
    }

    #[test]
    fn fractional_rate_samples_every_nth() {
        let tracer = Tracer::new(0.25, 8);
        assert_eq!(tracer.period(), 4);
        let sampled = (0..16)
            .filter(|_| tracer.start(Instant::now()).is_some())
            .count();
        assert_eq!(sampled, 4);
    }

    #[test]
    fn zero_rate_disables_sampling() {
        let tracer = Tracer::new(0.0, 8);
        assert!(tracer.disabled());
        for _ in 0..10 {
            assert!(tracer.start(Instant::now()).is_none());
        }
        assert_eq!(tracer.requests.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn spans_are_anchored_to_request_start() {
        let tracer = Tracer::new(1.0, 8);
        let started = Instant::now();
        let mut trace = tracer.start(started).expect("sampled");
        trace.set_endpoint("explain");
        trace.set_detail("t0".to_string());
        let a = started + Duration::from_micros(10);
        let b = started + Duration::from_micros(35);
        trace.record("eval", a, b);
        trace.record_ns("decode", 0, 5_000);
        tracer.finish(trace, "ok", 40_000);

        let (recent, slowest) = tracer.snapshot();
        assert_eq!(recent.len(), 1);
        assert_eq!(slowest.len(), 1);
        let t = &recent[0];
        assert_eq!(t.endpoint, "explain");
        assert_eq!(t.detail, "t0");
        assert_eq!(t.status, "ok");
        assert_eq!(t.total_us, 40.0);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].name, "eval");
        assert!((t.spans[0].start_us - 10.0).abs() < 0.5);
        assert!((t.spans[0].duration_us - 25.0).abs() < 0.5);
        assert_eq!(t.spans[1].duration_us, 5.0);
    }

    #[test]
    fn rings_cap_and_keep_the_slowest() {
        let tracer = Tracer::new(1.0, 3);
        for total_us in [5u64, 50, 1, 30, 2, 40] {
            finish_with_total(&tracer, total_us * 1_000);
        }
        let (recent, slowest) = tracer.snapshot();
        assert_eq!(recent.len(), 3);
        // Recent keeps the newest three, in arrival order.
        let recent_totals: Vec<f64> = recent.iter().map(|t| t.total_us).collect();
        assert_eq!(recent_totals, vec![30.0, 2.0, 40.0]);
        // Slowest keeps the global top three, ascending.
        let slow_totals: Vec<f64> = slowest.iter().map(|t| t.total_us).collect();
        assert_eq!(slow_totals, vec![30.0, 40.0, 50.0]);
    }

    #[test]
    fn seq_is_monotonic_for_dedup() {
        let tracer = Tracer::new(1.0, 8);
        for total in [3u64, 1, 2] {
            finish_with_total(&tracer, total);
        }
        let (recent, _) = tracer.snapshot();
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let tracer = Tracer::new(1.0, 4);
        let mut trace = tracer.start(Instant::now()).expect("sampled");
        trace.set_endpoint("explain");
        trace.record_ns("eval", 1_000, 2_000);
        tracer.finish(trace, "ok", 10_000);
        let (recent, _) = tracer.snapshot();
        let json = serde_json::to_string(&recent).expect("serializes");
        assert!(json.contains("\"endpoint\":\"explain\""));
        let back: Vec<TraceSnapshot> = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back[0].spans[0].name, "eval");
    }
}
