//! The metrics registry: named counters, gauges and log-linear bucketed
//! histograms, rendered as Prometheus text exposition.
//!
//! Handles are `Arc`s handed out at registration; the hot path touches
//! only the handle's atomics, never the registry lock. Registration is
//! idempotent — asking for an existing `(name, label)` returns the same
//! handle — so subsystems can register lazily without coordination.
//!
//! ## Histogram bucket scheme
//!
//! Log-linear, HDR-style: values below 8 get exact unit buckets, and every
//! power-of-two octave above is split into 8 linear sub-buckets, so the
//! relative bucket width is at most 12.5% across the full `u64` range.
//! Recording is `O(1)` bit arithmetic (no search) and percentiles are
//! derived from the bucket counts, clamped to the exactly-tracked maximum.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter. `set` exists for *mirrored* entries — registry
/// counters fed from another subsystem's canonical atomic at scrape time —
/// and must only ever be handed monotonic inputs.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with an absolute value (mirror sync only).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjust by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Unit buckets for 0..8, then 8 sub-buckets for each octave 2^3..2^63.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index of `value` — exact below [`SUB`], log-linear above.
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = ((value >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + ((exp - SUB_BITS) as usize) * SUB + sub
}

/// The inclusive lower bound of bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let octave = ((index - SUB) / SUB) as u32 + SUB_BITS;
    let sub = ((index - SUB) % SUB) as u64;
    (1u64 << octave) + sub * (1u64 << (octave - SUB_BITS))
}

/// The exclusive upper bound of bucket `index` (`u64::MAX` for the last).
fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1)
    }
}

/// A log-linear latency histogram over `u64` values (the serving layer
/// records nanoseconds). Recording is two relaxed `fetch_add`s (bucket +
/// sum) and a max update that loads without writing on the common path.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is fixed");
        Histogram {
            buckets,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if self.max.load(Ordering::Relaxed) < value {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// A consistent-enough snapshot (concurrent observations may tear
    /// between buckets and sum; each individual counter is exact).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((bucket_upper(index), n));
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: `(exclusive upper bound, count)` for every non-empty
/// bucket, in ascending bound order, plus exact total/sum/max.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`), derived from the bucket counts:
    /// the midpoint of the bucket holding the rank, clamped to the exact
    /// maximum. `0` when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        let mut lower = 0u64;
        for &(upper, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                let mid = lower + (upper.saturating_sub(lower)) / 2;
                return mid.min(self.max);
            }
            lower = upper;
        }
        self.max
    }

    /// Mean observed value (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// What a registry entry is.
enum Kind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: a family name, an optional single label pair
/// (several entries may share a family, e.g. per-endpoint counters), help
/// text and the live handle.
struct Entry {
    family: String,
    label: Option<(&'static str, String)>,
    help: &'static str,
    kind: Kind,
}

/// The metric registry. Registration takes the lock; recording never does
/// (handles are `Arc`s). Rendering sorts by `(family, label)` so scrape
/// output is deterministic and families stay adjacent.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, None, help)
    }

    /// Get or register a labeled counter, e.g.
    /// `counter_labeled("wtq_requests_total", "endpoint", "explain", …)`.
    pub fn counter_labeled(
        &self,
        name: &str,
        key: &'static str,
        value: &str,
        help: &'static str,
    ) -> Arc<Counter> {
        self.counter_with(name, Some((key, value.to_string())), help)
    }

    fn counter_with(
        &self,
        name: &str,
        label: Option<(&'static str, String)>,
        help: &'static str,
    ) -> Arc<Counter> {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(entry) = find(&entries, name, &label) {
            if let Kind::Counter(counter) = &entry.kind {
                return counter.clone();
            }
            panic!("metric {name} registered with a different type");
        }
        let counter = Arc::new(Counter::default());
        entries.push(Entry {
            family: name.to_string(),
            label,
            help,
            kind: Kind::Counter(counter.clone()),
        });
        counter
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(entry) = find(&entries, name, &None) {
            if let Kind::Gauge(gauge) = &entry.kind {
                return gauge.clone();
            }
            panic!("metric {name} registered with a different type");
        }
        let gauge = Arc::new(Gauge::default());
        entries.push(Entry {
            family: name.to_string(),
            label: None,
            help,
            kind: Kind::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, None, help)
    }

    /// Get or register a labeled histogram (e.g. per-stage latency).
    pub fn histogram_labeled(
        &self,
        name: &str,
        key: &'static str,
        value: &str,
        help: &'static str,
    ) -> Arc<Histogram> {
        self.histogram_with(name, Some((key, value.to_string())), help)
    }

    fn histogram_with(
        &self,
        name: &str,
        label: Option<(&'static str, String)>,
        help: &'static str,
    ) -> Arc<Histogram> {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(entry) = find(&entries, name, &label) {
            if let Kind::Histogram(histogram) = &entry.kind {
                return histogram.clone();
            }
            panic!("metric {name} registered with a different type");
        }
        let histogram = Arc::new(Histogram::default());
        entries.push(Entry {
            family: name.to_string(),
            label,
            help,
            kind: Kind::Histogram(histogram.clone()),
        });
        histogram
    }

    /// Render every registered metric as Prometheus text exposition
    /// (`# HELP` / `# TYPE` comments, one sample line per counter/gauge,
    /// cumulative `_bucket`/`_sum`/`_count` series per histogram with
    /// nanosecond values rendered as seconds).
    pub fn render(&self) -> String {
        let mut entries = self.entries.lock().expect("registry poisoned");
        entries.sort_by(|a, b| (&a.family, &a.label).cmp(&(&b.family, &b.label)));
        let mut out = String::with_capacity(4096);
        let mut last_family: Option<String> = None;
        for entry in entries.iter() {
            if last_family.as_deref() != Some(entry.family.as_str()) {
                out.push_str(&format!("# HELP {} {}\n", entry.family, entry.help));
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    entry.family,
                    entry.kind.type_name()
                ));
                last_family = Some(entry.family.clone());
            }
            let label = |extra: Option<(&str, String)>| -> String {
                let mut pairs = Vec::new();
                if let Some((key, value)) = &entry.label {
                    pairs.push(format!("{key}=\"{value}\""));
                }
                if let Some((key, value)) = extra {
                    pairs.push(format!("{key}=\"{value}\""));
                }
                if pairs.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", pairs.join(","))
                }
            };
            match &entry.kind {
                Kind::Counter(counter) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        entry.family,
                        label(None),
                        counter.get()
                    ));
                }
                Kind::Gauge(gauge) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        entry.family,
                        label(None),
                        gauge.get()
                    ));
                }
                Kind::Histogram(histogram) => {
                    let snapshot = histogram.snapshot();
                    let mut cumulative = 0u64;
                    for (upper, count) in &snapshot.buckets {
                        cumulative += count;
                        let le = *upper as f64 / 1e9;
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            entry.family,
                            label(Some(("le", format!("{le}")))),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        entry.family,
                        label(Some(("le", "+Inf".to_string()))),
                        snapshot.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        entry.family,
                        label(None),
                        snapshot.sum as f64 / 1e9
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        entry.family,
                        label(None),
                        snapshot.count
                    ));
                }
            }
        }
        out
    }
}

fn find<'a>(
    entries: &'a [Entry],
    name: &str,
    label: &Option<(&'static str, String)>,
) -> Option<&'a Entry> {
    entries
        .iter()
        .find(|entry| entry.family == name && &entry.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_bracket_values() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| {
                [0u64, 1, 3]
                    .into_iter()
                    .map(move |offset| (1u64 << shift).saturating_add(offset))
            })
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for value in values {
            let index = bucket_index(value);
            assert!(index >= last, "index regressed at {value}");
            last = index;
            assert!(bucket_lower(index) <= value, "lower > value at {value}");
            assert!(
                value < bucket_upper(index) || bucket_upper(index) == u64::MAX,
                "upper <= value at {value}"
            );
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for value in 0..8u64 {
            assert_eq!(bucket_index(value), value as usize);
            assert_eq!(bucket_lower(value as usize), value);
        }
    }

    #[test]
    fn histogram_percentiles_track_a_known_distribution() {
        let histogram = Histogram::default();
        // 100 observations: 1..=100 microseconds in nanoseconds.
        for i in 1..=100u64 {
            histogram.observe(i * 1_000);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 100);
        assert_eq!(snapshot.max, 100_000);
        let p50 = snapshot.percentile(0.50);
        let p99 = snapshot.percentile(0.99);
        // Log-linear buckets bound the relative error at 12.5%.
        assert!(
            (p50 as f64 - 50_000.0).abs() / 50_000.0 < 0.15,
            "p50 off: {p50}"
        );
        assert!(
            (p99 as f64 - 99_000.0).abs() / 99_000.0 < 0.15,
            "p99 off: {p99}"
        );
        assert_eq!(snapshot.percentile(1.0), snapshot.max);
        assert!(snapshot.percentile(0.0) > 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snapshot = Histogram::default().snapshot();
        assert_eq!(snapshot.count, 0);
        assert_eq!(snapshot.percentile(0.5), 0);
        assert_eq!(snapshot.mean(), 0.0);
    }

    #[test]
    fn registration_is_idempotent_and_type_checked() {
        let registry = Registry::new();
        let a = registry.counter("wtq_test_total", "help");
        let b = registry.counter("wtq_test_total", "help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let labeled = registry.counter_labeled("wtq_test_total", "kind", "x", "help");
        labeled.inc();
        assert_eq!(a.get(), 3, "labeled entry is distinct");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn re_registering_with_another_type_panics() {
        let registry = Registry::new();
        let _ = registry.counter("wtq_test_total", "help");
        let _ = registry.gauge("wtq_test_total", "help");
    }

    #[test]
    fn render_emits_prometheus_text() {
        let registry = Registry::new();
        registry.counter("wtq_b_total", "b help").add(7);
        registry.gauge("wtq_a_gauge", "a help").set(-3);
        registry
            .counter_labeled("wtq_req_total", "endpoint", "explain", "per endpoint")
            .add(2);
        registry
            .counter_labeled("wtq_req_total", "endpoint", "stats", "per endpoint")
            .add(1);
        let histogram = registry.histogram("wtq_latency_seconds", "latency");
        histogram.observe(1_000_000); // 1ms
        histogram.observe(2_000_000);

        let text = registry.render();
        assert!(text.contains("# TYPE wtq_a_gauge gauge\nwtq_a_gauge -3\n"));
        assert!(text.contains("# TYPE wtq_b_total counter\nwtq_b_total 7\n"));
        assert!(text.contains("wtq_req_total{endpoint=\"explain\"} 2"));
        assert!(text.contains("wtq_req_total{endpoint=\"stats\"} 1"));
        // One TYPE line per family, even with several labeled entries.
        assert_eq!(text.matches("# TYPE wtq_req_total counter").count(), 1);
        assert!(text.contains("# TYPE wtq_latency_seconds histogram"));
        assert!(text.contains("wtq_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wtq_latency_seconds_count 2"));
        assert!(text.contains("wtq_latency_seconds_sum 0.003"));
        // Every non-comment line is `name[{labels}] value` with a finite value.
        for line in text.lines().filter(|line| !line.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            let parsed: f64 = value.parse().expect("value parses");
            assert!(parsed.is_finite());
        }
    }
}
