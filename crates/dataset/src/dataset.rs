//! Dataset assembly: examples, disjoint-table splits and JSON persistence.
//!
//! Mirrors the WikiTableQuestions organization (§6.1): a pool of tables, a
//! set of `(question, table, gold answer)` examples, and a train/test split
//! in which the *tables* (not just the questions) are disjoint, so the test
//! parser faces relations and entities it never saw during training.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use wtq_dcs::{parse_formula, Answer, Formula};
use wtq_table::{Catalog, Table};

use crate::domains::all_domains;
use crate::questions::{generate_questions, QuestionFamily};
use crate::tablegen::generate_table;

/// One question–table–answer example. The gold formula is retained (as text,
/// for serializability) because the retraining experiments of §7.3 need
/// question–query annotations; the weakly-supervised parser itself only ever
/// reads the answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Example {
    /// Stable identifier.
    pub id: String,
    /// Name of the table the question is about (key into the catalog).
    pub table: String,
    /// The natural-language question.
    pub question: String,
    /// The gold lambda DCS formula, in concrete syntax.
    pub gold_formula: String,
    /// The gold answer.
    pub answer: Answer,
    /// Operator family of the gold query.
    pub family: QuestionFamily,
}

impl Example {
    /// Parse the gold formula back into an AST.
    pub fn formula(&self) -> Formula {
        parse_formula(&self.gold_formula).expect("stored gold formulas are well formed")
    }
}

/// Which side of the split an example belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Split {
    /// Training examples.
    Train,
    /// Held-out test examples (tables disjoint from training tables).
    Test,
}

/// A full synthetic dataset: tables plus examples plus the table-level split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Every generated table.
    pub tables: Vec<Table>,
    /// Every generated example.
    pub examples: Vec<Example>,
    /// Names of tables assigned to the test split.
    pub test_tables: Vec<String>,
}

/// Configuration for dataset generation.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of tables to generate.
    pub num_tables: usize,
    /// Questions generated per table.
    pub questions_per_table: usize,
    /// Fraction of tables (and hence questions) held out for testing
    /// (the benchmark holds out 20 % of tables).
    pub test_fraction: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_tables: 40,
            questions_per_table: 12,
            test_fraction: 0.2,
        }
    }
}

impl Dataset {
    /// Generate a dataset with the given configuration and RNG.
    pub fn generate<R: Rng>(config: &DatasetConfig, rng: &mut R) -> Dataset {
        let domains = all_domains();
        let mut tables = Vec::with_capacity(config.num_tables);
        for index in 0..config.num_tables {
            let domain = &domains[index % domains.len()];
            tables.push(generate_table(domain, index, rng));
        }

        // Table-level split: shuffle table names, hold out the last fraction.
        let mut names: Vec<String> = tables.iter().map(|t| t.name().to_string()).collect();
        names.shuffle(rng);
        let test_count = ((names.len() as f64) * config.test_fraction).round() as usize;
        let test_count = test_count.clamp(1, names.len().saturating_sub(1).max(1));
        let test_tables: Vec<String> = names.iter().rev().take(test_count).cloned().collect();

        let mut examples = Vec::new();
        for table in &tables {
            let questions = generate_questions(table, config.questions_per_table, rng);
            for (i, q) in questions.into_iter().enumerate() {
                examples.push(Example {
                    id: format!("{}-q{:02}", table.name(), i),
                    table: table.name().to_string(),
                    question: q.question,
                    gold_formula: q.formula.to_string(),
                    answer: q.answer,
                    family: q.family,
                });
            }
        }
        Dataset {
            tables,
            examples,
            test_tables,
        }
    }

    /// The catalog of all tables, for lookup by name.
    pub fn catalog(&self) -> Catalog {
        self.tables.iter().cloned().collect()
    }

    /// The split an example belongs to.
    pub fn split_of(&self, example: &Example) -> Split {
        if self.test_tables.iter().any(|t| t == &example.table) {
            Split::Test
        } else {
            Split::Train
        }
    }

    /// Examples of one split.
    pub fn examples_of(&self, split: Split) -> Vec<&Example> {
        self.examples
            .iter()
            .filter(|e| self.split_of(e) == split)
            .collect()
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataset serializes")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Dataset, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_dataset(seed: u64) -> Dataset {
        let config = DatasetConfig {
            num_tables: 12,
            questions_per_table: 6,
            test_fraction: 0.25,
        };
        Dataset::generate(&config, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    #[test]
    fn generates_tables_and_examples() {
        let dataset = small_dataset(1);
        assert_eq!(dataset.tables.len(), 12);
        assert!(
            dataset.examples.len() >= 12 * 4,
            "too few examples: {}",
            dataset.examples.len()
        );
        assert!(!dataset.test_tables.is_empty());
        assert!(dataset.test_tables.len() < dataset.tables.len());
    }

    #[test]
    fn train_and_test_tables_are_disjoint() {
        let dataset = small_dataset(2);
        let train_tables: std::collections::HashSet<&str> = dataset
            .examples_of(Split::Train)
            .iter()
            .map(|e| e.table.as_str())
            .collect();
        let test_tables: std::collections::HashSet<&str> = dataset
            .examples_of(Split::Test)
            .iter()
            .map(|e| e.table.as_str())
            .collect();
        assert!(train_tables.is_disjoint(&test_tables));
        assert!(!train_tables.is_empty());
        assert!(!test_tables.is_empty());
    }

    #[test]
    fn gold_formulas_reparse_and_reexecute_to_gold_answers() {
        let dataset = small_dataset(3);
        let catalog = dataset.catalog();
        for example in dataset.examples.iter().take(60) {
            let table = catalog.get(&example.table).expect("table exists");
            let formula = example.formula();
            let denotation = wtq_dcs::eval(&formula, table).expect("gold formula evaluates");
            assert_eq!(Answer::from_denotation(&denotation), example.answer);
        }
    }

    #[test]
    fn json_roundtrip_preserves_examples() {
        let dataset = small_dataset(4);
        let json = dataset.to_json();
        let restored = Dataset::from_json(&json).expect("roundtrip parses");
        assert_eq!(restored.tables.len(), dataset.tables.len());
        assert_eq!(restored.examples.len(), dataset.examples.len());
        assert_eq!(restored.test_tables, dataset.test_tables);
        assert_eq!(restored.examples[0].question, dataset.examples[0].question);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_dataset(7);
        let b = small_dataset(7);
        assert_eq!(a.examples.len(), b.examples.len());
        assert_eq!(a.examples[0].question, b.examples[0].question);
        assert_eq!(a.test_tables, b.test_tables);
    }

    #[test]
    fn example_ids_are_unique() {
        let dataset = small_dataset(5);
        let mut ids: Vec<&str> = dataset.examples.iter().map(|e| e.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn default_config_matches_benchmark_shape() {
        let config = DatasetConfig::default();
        assert!(config.test_fraction > 0.1 && config.test_fraction < 0.4);
        assert!(config.num_tables >= 20);
    }
}
