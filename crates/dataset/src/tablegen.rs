//! Random table generation from a domain specification.
//!
//! Generated tables follow the WikiTableQuestions construction constraints
//! (§6.1): at least 8 rows and 5 columns, mixed column types, realistic
//! vocabulary. Category values repeat across rows (so counting and
//! most-common questions are non-trivial) while name columns are mostly
//! unique.

use rand::seq::SliceRandom;
use rand::Rng;

use wtq_table::{Table, TableBuilder, Value};

use crate::domains::{ColumnKind, ColumnSpec, Domain};

/// Minimum number of rows a generated table has (matching the benchmark's
/// "at least 8 rows" constraint).
pub const MIN_ROWS: usize = 8;

/// Maximum number of rows a generated table has.
pub const MAX_ROWS: usize = 18;

/// Generate one table from `domain` with a random number of rows.
pub fn generate_table<R: Rng>(domain: &Domain, table_index: usize, rng: &mut R) -> Table {
    let rows = rng.gen_range(MIN_ROWS..=MAX_ROWS);
    generate_table_with_rows(domain, table_index, rows, rng)
}

/// Generate one table from `domain` with exactly `rows` rows.
pub fn generate_table_with_rows<R: Rng>(
    domain: &Domain,
    table_index: usize,
    rows: usize,
    rng: &mut R,
) -> Table {
    let name = format!("{}_{:03}", domain.name, table_index);
    let mut builder =
        TableBuilder::new(name).columns(domain.columns.iter().map(|c| c.name.to_string()));
    // Name columns shuffle their vocabulary so values stay (mostly) unique.
    let mut name_pools: Vec<Vec<&str>> = domain
        .columns
        .iter()
        .map(|c| {
            let mut pool: Vec<&str> = c.vocabulary.to_vec();
            pool.shuffle(rng);
            pool
        })
        .collect();
    for row in 0..rows {
        let mut values = Vec::with_capacity(domain.columns.len());
        for (column_idx, column) in domain.columns.iter().enumerate() {
            values.push(generate_value(
                column,
                row,
                &mut name_pools[column_idx],
                rng,
            ));
        }
        builder = builder
            .row(values)
            .expect("generated row matches column count");
    }
    builder
        .build()
        .expect("generated tables always have columns")
}

fn generate_value<R: Rng>(
    column: &ColumnSpec,
    row: usize,
    name_pool: &mut [&str],
    rng: &mut R,
) -> Value {
    match column.kind {
        ColumnKind::Category => {
            let value = column.vocabulary.choose(rng).expect("non-empty vocabulary");
            Value::str(*value)
        }
        ColumnKind::Name => {
            // Draw without replacement while the pool lasts, then recycle with
            // a numeric suffix so names stay distinct.
            if row < name_pool.len() {
                Value::str(name_pool[row])
            } else {
                let base = column.vocabulary[row % column.vocabulary.len()];
                Value::str(format!("{base} {}", row / column.vocabulary.len() + 1))
            }
        }
        ColumnKind::Integer { min, max } => Value::num(rng.gen_range(min..=max) as f64),
        ColumnKind::Year { min, max } => Value::num(f64::from(rng.gen_range(min..=max))),
        ColumnKind::Decimal { min, max } => {
            let raw: f64 = rng.gen_range(min..max);
            Value::num((raw * 10.0).round() / 10.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn tables_meet_benchmark_shape_constraints() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for domain in all_domains() {
            let table = generate_table(&domain, 0, &mut rng);
            assert!(
                table.num_records() >= MIN_ROWS,
                "{} too small",
                table.name()
            );
            assert!(table.num_columns() >= 5, "{} too narrow", table.name());
        }
    }

    #[test]
    fn generation_is_deterministic_given_a_seed() {
        let domain = &all_domains()[0];
        let a = generate_table(domain, 3, &mut ChaCha8Rng::seed_from_u64(42));
        let b = generate_table(domain, 3, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = generate_table(domain, 3, &mut ChaCha8Rng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn numeric_columns_are_numbers_and_categories_repeat() {
        let domain = all_domains()
            .into_iter()
            .find(|d| d.name == "medal_table")
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let table = generate_table_with_rows(&domain, 0, 16, &mut rng);
        let gold = table.column_index("Gold").unwrap();
        for record in table.record_indices() {
            assert!(table.value_at(record, gold).unwrap().is_num());
        }
        // With 16 rows over a 14-nation vocabulary at least one value repeats
        // or the column has fewer distinct values than rows.
        let nation = table.column_index("Nation").unwrap();
        assert!(table.distinct_column_values(nation).len() <= table.num_records());
    }

    #[test]
    fn name_columns_stay_distinct() {
        let domain = all_domains()
            .into_iter()
            .find(|d| d.name == "national_squad")
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let table = generate_table_with_rows(&domain, 0, 18, &mut rng);
        let name = table.column_index("Name").unwrap();
        assert_eq!(
            table.distinct_column_values(name).len(),
            table.num_records()
        );
    }

    #[test]
    fn table_names_encode_domain_and_index() {
        let domain = &all_domains()[0];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let table = generate_table(domain, 12, &mut rng);
        assert_eq!(table.name(), "olympic_games_012");
    }
}
