//! # wtq-dataset
//!
//! Synthetic WikiTableQuestions-style dataset (the substitution for the
//! benchmark of §6.1, documented in DESIGN.md).
//!
//! The real WikiTableQuestions corpus pairs 22,033 crowd-sourced questions
//! with ~2,100 Wikipedia tables (each at least 8 rows × 5 columns) and keeps
//! the train and test tables disjoint. This crate generates data with the
//! same structural profile so the rest of the reproduction (semantic parser,
//! user study, retraining experiments) can run offline:
//!
//! * [`domains`] — a catalogue of table schemas across distinct domains
//!   (sports, geography, media, commerce, …) with realistic vocabulary,
//! * [`tablegen`] — random table generation from a domain (≥ 8 rows, ≥ 5
//!   columns, mixed string / number / date columns),
//! * [`questions`] — templated question families covering the operator mix of
//!   the paper (lookup, aggregation, superlatives, arithmetic difference,
//!   previous/next row, counting, comparisons, intersection, union), each
//!   producing an NL question, its gold lambda DCS formula and gold answer,
//! * [`dataset`] — example records, disjoint-table train/test splits and JSON
//!   persistence.
//!
//! All generation is seeded and deterministic.

pub mod dataset;
pub mod domains;
pub mod questions;
pub mod tablegen;

pub use dataset::{Dataset, Example, Split};
pub use domains::{all_domains, Domain};
pub use questions::{generate_questions, QuestionFamily};
pub use tablegen::generate_table;
