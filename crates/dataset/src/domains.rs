//! Domain catalogue for synthetic table generation.
//!
//! WikiTableQuestions covers thousands of distinct column headers across many
//! domains; the correctness numbers of the paper hinge on the parser having
//! to generalize to *unseen* relations at test time. To reproduce that
//! pressure the generator draws from several unrelated domains, each with its
//! own column headers and vocabulary, and the train/test split keeps whole
//! tables (hence whole domains' vocabularies) apart.

/// Kind of data a generated column holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnKind {
    /// A categorical string column drawn from a fixed vocabulary (entities
    /// such as nations, clubs, people).
    Category,
    /// A free-form name column (mostly unique per row).
    Name,
    /// An integer column in a given range.
    Integer { min: i64, max: i64 },
    /// A year column in a given range.
    Year { min: i32, max: i32 },
    /// A decimal column in a given range.
    Decimal { min: f64, max: f64 },
}

/// Specification of one column of a domain.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Header text.
    pub name: &'static str,
    /// What the column holds.
    pub kind: ColumnKind,
    /// Vocabulary for [`ColumnKind::Category`] / [`ColumnKind::Name`] columns.
    pub vocabulary: &'static [&'static str],
}

/// A table schema plus vocabulary: the unit the generator instantiates.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Short identifier used in generated table names.
    pub name: &'static str,
    /// Columns of every table generated from this domain.
    pub columns: Vec<ColumnSpec>,
}

impl Domain {
    /// Index of the first category column (used as the default selection
    /// column by question templates).
    pub fn category_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.kind, ColumnKind::Category))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indexes of numeric (integer / decimal / year) columns.
    pub fn numeric_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                matches!(
                    c.kind,
                    ColumnKind::Integer { .. }
                        | ColumnKind::Decimal { .. }
                        | ColumnKind::Year { .. }
                )
            })
            .map(|(i, _)| i)
            .collect()
    }
}

const NATIONS: &[&str] = &[
    "New Caledonia",
    "Tahiti",
    "Fiji",
    "Samoa",
    "Tonga",
    "Nauru",
    "Papua New Guinea",
    "Cook Islands",
    "Vanuatu",
    "Kiribati",
    "Palau",
    "Guam",
    "Solomon Islands",
    "Tuvalu",
];

const CITIES: &[&str] = &[
    "Athens",
    "Paris",
    "London",
    "Beijing",
    "Sydney",
    "Atlanta",
    "Barcelona",
    "Seoul",
    "Moscow",
    "Montreal",
    "Munich",
    "Tokyo",
    "Rome",
    "Helsinki",
    "Rio de Janeiro",
];

const COUNTRIES: &[&str] = &[
    "Greece",
    "France",
    "UK",
    "China",
    "Australia",
    "USA",
    "Spain",
    "South Korea",
    "Russia",
    "Canada",
    "Germany",
    "Japan",
    "Italy",
    "Finland",
    "Brazil",
];

const CLUBS: &[&str] = &[
    "Grasshoppers",
    "Servette",
    "FC St. Gallen",
    "Toulouse",
    "FC Nuremburg",
    "Young Boys",
    "Basel",
    "Lausanne",
    "Zurich",
    "Lugano",
];

const POSITIONS: &[&str] = &["GK", "DF", "MF", "FW"];

const PLAYER_NAMES: &[&str] = &[
    "Erich Burgener",
    "Roger Berbig",
    "Charly In-Albon",
    "Beat Rietmann",
    "Andy Egli",
    "Marcel Koller",
    "Rene Botteron",
    "Heinz Hermann",
    "Roger Wehrli",
    "Lucien Favre",
    "Alain Geiger",
    "Umberto Barberis",
    "Claudio Sulser",
    "Raimondo Ponte",
    "Manfred Braschler",
    "Georges Bregy",
    "Jean-Paul Brigger",
    "Markus Tanner",
    "Hanspeter Zwicker",
    "Ruedi Elsener",
];

const LAKES: &[&str] = &[
    "Lake Huron",
    "Lake Michigan",
    "Lake Superior",
    "Lake Erie",
    "Lake Ontario",
];

const VESSEL_TYPES: &[&str] = &[
    "Steamer",
    "Barge",
    "Schooner",
    "Lightship",
    "Tug",
    "Freighter",
];

const SHIP_NAMES: &[&str] = &[
    "Argus",
    "Hydrus",
    "Plymouth",
    "Wexford",
    "Leafield",
    "James Carruthers",
    "Regina",
    "Charles S. Price",
    "John A. McGean",
    "Isaac M. Scott",
    "Henry B. Smith",
    "Halsted",
    "Nottingham",
    "Atlanta",
    "Major",
    "Senator",
];

const LEAGUES: &[&str] = &[
    "USL A-League",
    "USL First Division",
    "USSF D-2 Pro League",
    "NASL",
    "MLS Reserve League",
];

const CUP_RESULTS: &[&str] = &[
    "Did not qualify",
    "1st Round",
    "2nd Round",
    "3rd Round",
    "4th Round",
    "Quarterfinals",
    "Semifinals",
    "Final",
];

const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Documentary",
    "Reality",
    "News",
    "Sports",
];

const EPISODE_TITLES: &[&str] = &[
    "Pilot",
    "The Return",
    "Homecoming",
    "Crossroads",
    "The Storm",
    "Aftermath",
    "Reunion",
    "Countdown",
    "The Verdict",
    "Fallout",
    "New Beginnings",
    "The Long Night",
    "Endgame",
    "Turning Point",
    "The Visit",
    "Second Chances",
];

const SURFACES: &[&str] = &["Hard", "Clay", "Grass", "Carpet"];

const TOURNAMENTS: &[&str] = &[
    "Auckland Open",
    "Madrid Masters",
    "Rome Masters",
    "Halle Open",
    "Queens Club",
    "Indian Wells",
    "Miami Open",
    "Basel Indoors",
    "Stockholm Open",
    "Tokyo Open",
];

const OPPONENTS: &[&str] = &[
    "Maria Petrova",
    "Elena Kovacs",
    "Ana Silva",
    "Lucie Novak",
    "Sofia Rossi",
    "Emma Larsen",
    "Julia Weber",
    "Nina Horvat",
    "Clara Dubois",
    "Iris Tanaka",
];

const PRODUCTS: &[&str] = &[
    "Laptop Pro",
    "Desk Lamp",
    "Office Chair",
    "Monitor 27",
    "Mechanical Keyboard",
    "USB Dock",
    "Webcam HD",
    "Noise-cancelling Headset",
    "Standing Desk",
    "Tablet Mini",
];

const REGIONS: &[&str] = &[
    "North", "South", "East", "West", "Central", "Pacific", "Mountain", "Atlantic",
];

const MOUNTAINS: &[&str] = &[
    "Mont Blanc",
    "Matterhorn",
    "Monte Rosa",
    "Eiger",
    "Jungfrau",
    "Dom",
    "Weisshorn",
    "Gran Paradiso",
    "Piz Bernina",
    "Ortler",
    "Grossglockner",
    "Triglav",
];

const RANGES: &[&str] = &[
    "Pennine Alps",
    "Bernese Alps",
    "Graian Alps",
    "Eastern Alps",
    "Julian Alps",
];

/// The full domain catalogue. Each call builds a fresh copy (domains are
/// cheap and immutable).
pub fn all_domains() -> Vec<Domain> {
    vec![
        Domain {
            name: "olympic_games",
            columns: vec![
                ColumnSpec {
                    name: "Year",
                    kind: ColumnKind::Year {
                        min: 1896,
                        max: 2020,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Country",
                    kind: ColumnKind::Category,
                    vocabulary: COUNTRIES,
                },
                ColumnSpec {
                    name: "City",
                    kind: ColumnKind::Category,
                    vocabulary: CITIES,
                },
                ColumnSpec {
                    name: "Athletes",
                    kind: ColumnKind::Integer {
                        min: 200,
                        max: 12000,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Events",
                    kind: ColumnKind::Integer { min: 40, max: 340 },
                    vocabulary: &[],
                },
            ],
        },
        Domain {
            name: "medal_table",
            columns: vec![
                ColumnSpec {
                    name: "Rank",
                    kind: ColumnKind::Integer { min: 1, max: 20 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Nation",
                    kind: ColumnKind::Category,
                    vocabulary: NATIONS,
                },
                ColumnSpec {
                    name: "Gold",
                    kind: ColumnKind::Integer { min: 0, max: 130 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Silver",
                    kind: ColumnKind::Integer { min: 0, max: 110 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Bronze",
                    kind: ColumnKind::Integer { min: 0, max: 80 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Total",
                    kind: ColumnKind::Integer { min: 1, max: 300 },
                    vocabulary: &[],
                },
            ],
        },
        Domain {
            name: "national_squad",
            columns: vec![
                ColumnSpec {
                    name: "Name",
                    kind: ColumnKind::Name,
                    vocabulary: PLAYER_NAMES,
                },
                ColumnSpec {
                    name: "Position",
                    kind: ColumnKind::Category,
                    vocabulary: POSITIONS,
                },
                ColumnSpec {
                    name: "Games",
                    kind: ColumnKind::Integer { min: 0, max: 30 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Goals",
                    kind: ColumnKind::Integer { min: 0, max: 12 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Club",
                    kind: ColumnKind::Category,
                    vocabulary: CLUBS,
                },
            ],
        },
        Domain {
            name: "shipwrecks",
            columns: vec![
                ColumnSpec {
                    name: "Ship",
                    kind: ColumnKind::Name,
                    vocabulary: SHIP_NAMES,
                },
                ColumnSpec {
                    name: "Vessel",
                    kind: ColumnKind::Category,
                    vocabulary: VESSEL_TYPES,
                },
                ColumnSpec {
                    name: "Lake",
                    kind: ColumnKind::Category,
                    vocabulary: LAKES,
                },
                ColumnSpec {
                    name: "Lives lost",
                    kind: ColumnKind::Integer { min: 0, max: 40 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Tonnage",
                    kind: ColumnKind::Integer {
                        min: 300,
                        max: 8000,
                    },
                    vocabulary: &[],
                },
            ],
        },
        Domain {
            name: "team_seasons",
            columns: vec![
                ColumnSpec {
                    name: "Year",
                    kind: ColumnKind::Year {
                        min: 1996,
                        max: 2018,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "League",
                    kind: ColumnKind::Category,
                    vocabulary: LEAGUES,
                },
                ColumnSpec {
                    name: "Attendance",
                    kind: ColumnKind::Integer {
                        min: 2500,
                        max: 25000,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Open Cup",
                    kind: ColumnKind::Category,
                    vocabulary: CUP_RESULTS,
                },
                ColumnSpec {
                    name: "Wins",
                    kind: ColumnKind::Integer { min: 0, max: 30 },
                    vocabulary: &[],
                },
            ],
        },
        Domain {
            name: "tv_episodes",
            columns: vec![
                ColumnSpec {
                    name: "Episode",
                    kind: ColumnKind::Name,
                    vocabulary: EPISODE_TITLES,
                },
                ColumnSpec {
                    name: "Genre",
                    kind: ColumnKind::Category,
                    vocabulary: GENRES,
                },
                ColumnSpec {
                    name: "Rating",
                    kind: ColumnKind::Decimal { min: 1.0, max: 9.9 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Viewers",
                    kind: ColumnKind::Decimal {
                        min: 0.4,
                        max: 14.0,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Season",
                    kind: ColumnKind::Integer { min: 1, max: 9 },
                    vocabulary: &[],
                },
            ],
        },
        Domain {
            name: "tournaments",
            columns: vec![
                ColumnSpec {
                    name: "Tournament",
                    kind: ColumnKind::Category,
                    vocabulary: TOURNAMENTS,
                },
                ColumnSpec {
                    name: "Surface",
                    kind: ColumnKind::Category,
                    vocabulary: SURFACES,
                },
                ColumnSpec {
                    name: "Opponent",
                    kind: ColumnKind::Name,
                    vocabulary: OPPONENTS,
                },
                ColumnSpec {
                    name: "Prize",
                    kind: ColumnKind::Integer {
                        min: 10000,
                        max: 250000,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Year",
                    kind: ColumnKind::Year {
                        min: 1998,
                        max: 2018,
                    },
                    vocabulary: &[],
                },
            ],
        },
        Domain {
            name: "sales",
            columns: vec![
                ColumnSpec {
                    name: "Product",
                    kind: ColumnKind::Category,
                    vocabulary: PRODUCTS,
                },
                ColumnSpec {
                    name: "Region",
                    kind: ColumnKind::Category,
                    vocabulary: REGIONS,
                },
                ColumnSpec {
                    name: "Units",
                    kind: ColumnKind::Integer { min: 5, max: 900 },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Revenue",
                    kind: ColumnKind::Integer {
                        min: 1000,
                        max: 90000,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Quarter",
                    kind: ColumnKind::Integer { min: 1, max: 4 },
                    vocabulary: &[],
                },
            ],
        },
        Domain {
            name: "mountains",
            columns: vec![
                ColumnSpec {
                    name: "Mountain",
                    kind: ColumnKind::Name,
                    vocabulary: MOUNTAINS,
                },
                ColumnSpec {
                    name: "Range",
                    kind: ColumnKind::Category,
                    vocabulary: RANGES,
                },
                ColumnSpec {
                    name: "Height",
                    kind: ColumnKind::Integer {
                        min: 2800,
                        max: 4810,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "Prominence",
                    kind: ColumnKind::Integer {
                        min: 100,
                        max: 4000,
                    },
                    vocabulary: &[],
                },
                ColumnSpec {
                    name: "First ascent",
                    kind: ColumnKind::Year {
                        min: 1786,
                        max: 1960,
                    },
                    vocabulary: &[],
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_diverse_and_well_formed() {
        let domains = all_domains();
        assert!(domains.len() >= 8, "need several distinct domains");
        let mut names: Vec<&str> = domains.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), domains.len(), "domain names must be unique");
        for domain in &domains {
            assert!(
                domain.columns.len() >= 5,
                "{} needs >= 5 columns",
                domain.name
            );
            assert!(!domain.category_columns().is_empty() || domain.name == "mountains");
            assert!(
                !domain.numeric_columns().is_empty(),
                "{} needs numeric columns",
                domain.name
            );
            for column in &domain.columns {
                match column.kind {
                    ColumnKind::Category | ColumnKind::Name => {
                        assert!(
                            column.vocabulary.len() >= 4,
                            "{}.{} vocabulary too small",
                            domain.name,
                            column.name
                        );
                    }
                    ColumnKind::Integer { min, max } => assert!(min < max),
                    ColumnKind::Year { min, max } => assert!(min < max),
                    ColumnKind::Decimal { min, max } => assert!(min < max),
                }
            }
        }
    }

    #[test]
    fn column_headers_are_unique_within_a_domain() {
        for domain in all_domains() {
            let mut headers: Vec<&str> = domain.columns.iter().map(|c| c.name).collect();
            headers.sort_unstable();
            let before = headers.len();
            headers.dedup();
            assert_eq!(before, headers.len(), "duplicate header in {}", domain.name);
        }
    }
}
