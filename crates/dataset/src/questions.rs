//! Templated question generation with gold lambda DCS queries.
//!
//! Each [`QuestionFamily`] covers one operator family of the paper's
//! evaluation (Table 1 lists the kinds of questions WikiTableQuestions
//! contains: lookups, aggregation, superlatives, arithmetic differences,
//! next/previous rows, counting, comparisons). A generated question carries
//! its gold formula; the gold answer is obtained by executing the formula,
//! and degenerate questions (empty or failing answers) are discarded.
//!
//! Surface forms vary per family (two to three paraphrases each) so the
//! semantic parser cannot memorize a single template.

use rand::seq::SliceRandom;
use rand::Rng;

use wtq_dcs::{eval, Answer, Formula};
use wtq_table::{ColumnType, Table, Value};

/// The operator family a question exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum QuestionFamily {
    /// `R[target].sel.v`
    Lookup,
    /// `max(R[num].sel.v)` / `min(...)`
    ExtremeValue,
    /// `sum(R[num].sel.v)`
    SumValue,
    /// `count(sel.v)`
    CountRows,
    /// `R[target].argmax(Rows, num)` / argmin
    SuperlativeLookup,
    /// `sub(R[num].sel.v1, R[num].sel.v2)`
    DifferenceOfValues,
    /// `sub(count(sel.v1), count(sel.v2))`
    DifferenceOfCounts,
    /// `R[target].R[Prev].sel.v` / `R[target].Prev.sel.v`
    AdjacentRow,
    /// `R[target].last(sel.v)` / `first`
    FirstLastRow,
    /// `count(num.(> t))`
    ComparisonCount,
    /// `most_common(R[sel].Rows, sel)`
    MostCommon,
    /// `compare_max((v1 or v2), num, sel)`
    CompareTwoValues,
    /// `count((sel.v1 or sel.v2))`
    UnionCount,
    /// `count((sel1.v1 and sel2.v2))`
    IntersectionCount,
}

impl QuestionFamily {
    /// All families, in a stable order.
    pub fn all() -> Vec<QuestionFamily> {
        use QuestionFamily::*;
        vec![
            Lookup,
            ExtremeValue,
            SumValue,
            CountRows,
            SuperlativeLookup,
            DifferenceOfValues,
            DifferenceOfCounts,
            AdjacentRow,
            FirstLastRow,
            ComparisonCount,
            MostCommon,
            CompareTwoValues,
            UnionCount,
            IntersectionCount,
        ]
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        use QuestionFamily::*;
        match self {
            Lookup => "lookup",
            ExtremeValue => "extreme_value",
            SumValue => "sum_value",
            CountRows => "count_rows",
            SuperlativeLookup => "superlative_lookup",
            DifferenceOfValues => "difference_values",
            DifferenceOfCounts => "difference_counts",
            AdjacentRow => "adjacent_row",
            FirstLastRow => "first_last_row",
            ComparisonCount => "comparison_count",
            MostCommon => "most_common",
            CompareTwoValues => "compare_two_values",
            UnionCount => "union_count",
            IntersectionCount => "intersection_count",
        }
    }
}

/// A generated question with its gold query and answer.
#[derive(Debug, Clone)]
pub struct GeneratedQuestion {
    /// The natural-language question.
    pub question: String,
    /// The gold lambda DCS formula.
    pub formula: Formula,
    /// The gold answer (the formula's execution result on the table).
    pub answer: Answer,
    /// The operator family exercised.
    pub family: QuestionFamily,
}

/// Generate up to `count` questions about `table`, cycling through the
/// question families and skipping degenerate instances.
pub fn generate_questions<R: Rng>(
    table: &Table,
    count: usize,
    rng: &mut R,
) -> Vec<GeneratedQuestion> {
    let families = QuestionFamily::all();
    let mut out: Vec<GeneratedQuestion> = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 12 {
        let family = families[attempts % families.len()];
        attempts += 1;
        let Some(candidate) = generate_for_family(table, family, rng) else {
            continue;
        };
        if out.iter().any(|q| q.question == candidate.question) {
            continue;
        }
        out.push(candidate);
    }
    out
}

/// Generate a single question of the given family, if the table supports it.
pub fn generate_for_family<R: Rng>(
    table: &Table,
    family: QuestionFamily,
    rng: &mut R,
) -> Option<GeneratedQuestion> {
    let formula_and_text = build(table, family, rng)?;
    let (question, formula) = formula_and_text;
    let denotation = eval(&formula, table).ok()?;
    if denotation.is_empty() {
        return None;
    }
    let answer = Answer::from_denotation(&denotation);
    if answer.is_empty() || answer.len() > 6 {
        return None;
    }
    Some(GeneratedQuestion {
        question,
        formula,
        answer,
        family,
    })
}

/// Columns usable as selection columns: categorical / name columns with at
/// least two distinct values.
fn selection_columns(table: &Table) -> Vec<usize> {
    (0..table.num_columns())
        .filter(|&c| {
            matches!(table.column_type(c), ColumnType::Text | ColumnType::Mixed)
                && table.distinct_column_values(c).len() >= 2
        })
        .collect()
}

fn numeric_columns(table: &Table) -> Vec<usize> {
    (0..table.num_columns())
        .filter(|&c| matches!(table.column_type(c), ColumnType::Number | ColumnType::Date))
        .collect()
}

fn pick<'a, R: Rng, T>(items: &'a [T], rng: &mut R) -> Option<&'a T> {
    items.choose(rng)
}

fn pick_value<R: Rng>(table: &Table, column: usize, rng: &mut R) -> Option<Value> {
    let values = table.distinct_column_values(column);
    values.choose(rng).cloned()
}

fn pick_two_values<R: Rng>(table: &Table, column: usize, rng: &mut R) -> Option<(Value, Value)> {
    let values = table.distinct_column_values(column);
    if values.len() < 2 {
        return None;
    }
    let mut chosen: Vec<&Value> = values.choose_multiple(rng, 2).collect();
    chosen.shuffle(rng);
    Some((chosen[0].clone(), chosen[1].clone()))
}

fn join(column: &str, value: &Value) -> Formula {
    Formula::Join {
        column: column.to_string(),
        values: Box::new(Formula::Const(value.clone())),
    }
}

#[allow(clippy::too_many_lines)]
fn build<R: Rng>(table: &Table, family: QuestionFamily, rng: &mut R) -> Option<(String, Formula)> {
    let selections = selection_columns(table);
    let numerics = numeric_columns(table);
    let column_name = |c: usize| table.column_name(c).to_string();
    match family {
        QuestionFamily::Lookup => {
            let sel = *pick(&selections, rng)?;
            let target = (0..table.num_columns()).find(|&c| c != sel)?;
            let value = pick_value(table, sel, rng)?;
            let (sel_name, target_name) = (column_name(sel), column_name(target));
            let question = match rng.gen_range(0..3) {
                0 => format!("What is the {target_name} when the {sel_name} is {value}?"),
                1 => format!("Which {target_name} is listed for {sel_name} {value}?"),
                _ => format!("Tell me the {target_name} of the rows whose {sel_name} is {value}."),
            };
            let formula = Formula::column_values(&target_name, join(&sel_name, &value));
            Some((question, formula))
        }
        QuestionFamily::ExtremeValue => {
            let sel = *pick(&selections, rng)?;
            let num = *pick(&numerics, rng)?;
            let value = pick_value(table, sel, rng)?;
            let (sel_name, num_name) = (column_name(sel), column_name(num));
            let highest = rng.gen_bool(0.5);
            let op = if highest {
                wtq_dcs::AggregateOp::Max
            } else {
                wtq_dcs::AggregateOp::Min
            };
            let adjective = if highest { "highest" } else { "lowest" };
            let question = match rng.gen_range(0..2) {
                0 => format!("What is the {adjective} {num_name} where the {sel_name} is {value}?"),
                _ => format!("For {sel_name} {value}, what is the {adjective} {num_name}?"),
            };
            let formula = Formula::aggregate(
                op,
                Formula::column_values(&num_name, join(&sel_name, &value)),
            );
            Some((question, formula))
        }
        QuestionFamily::SumValue => {
            let sel = *pick(&selections, rng)?;
            let num = *pick(&numerics, rng)?;
            let value = pick_value(table, sel, rng)?;
            let (sel_name, num_name) = (column_name(sel), column_name(num));
            let question = match rng.gen_range(0..2) {
                0 => format!("What is the total {num_name} for {sel_name} {value}?"),
                _ => format!("How much {num_name} in total do rows with {sel_name} {value} have?"),
            };
            let formula = Formula::aggregate(
                wtq_dcs::AggregateOp::Sum,
                Formula::column_values(&num_name, join(&sel_name, &value)),
            );
            Some((question, formula))
        }
        QuestionFamily::CountRows => {
            let sel = *pick(&selections, rng)?;
            let value = pick_value(table, sel, rng)?;
            let sel_name = column_name(sel);
            let question = match rng.gen_range(0..3) {
                0 => format!("How many rows have {sel_name} {value}?"),
                1 => format!("How many times does {value} appear in the {sel_name} column?"),
                _ => format!("What is the number of entries whose {sel_name} is {value}?"),
            };
            let formula = Formula::aggregate(wtq_dcs::AggregateOp::Count, join(&sel_name, &value));
            Some((question, formula))
        }
        QuestionFamily::SuperlativeLookup => {
            let target = *pick(&selections, rng)?;
            let num = *pick(&numerics, rng)?;
            let (target_name, num_name) = (column_name(target), column_name(num));
            let highest = rng.gen_bool(0.5);
            let op = if highest {
                wtq_dcs::SuperlativeOp::Argmax
            } else {
                wtq_dcs::SuperlativeOp::Argmin
            };
            let adjective = if highest { "highest" } else { "lowest" };
            let question = match rng.gen_range(0..2) {
                0 => format!("Which {target_name} has the {adjective} {num_name}?"),
                _ => format!("What {target_name} holds the {adjective} value of {num_name}?"),
            };
            let formula = Formula::column_values(
                &target_name,
                Formula::SuperlativeRecords {
                    op,
                    records: Box::new(Formula::AllRecords),
                    column: num_name,
                },
            );
            Some((question, formula))
        }
        QuestionFamily::DifferenceOfValues => {
            let sel = *pick(&selections, rng)?;
            let num = *pick(&numerics, rng)?;
            let (v1, v2) = pick_two_values(table, sel, rng)?;
            let (sel_name, num_name) = (column_name(sel), column_name(num));
            let question = match rng.gen_range(0..2) {
                0 => format!(
                    "What is the difference in {num_name} between {sel_name} {v1} and {sel_name} {v2}?"
                ),
                _ => format!("How much more {num_name} does {v1} have than {v2}?"),
            };
            let formula = Formula::Sub(
                Box::new(Formula::column_values(&num_name, join(&sel_name, &v1))),
                Box::new(Formula::column_values(&num_name, join(&sel_name, &v2))),
            );
            Some((question, formula))
        }
        QuestionFamily::DifferenceOfCounts => {
            let sel = *pick(&selections, rng)?;
            let (v1, v2) = pick_two_values(table, sel, rng)?;
            let sel_name = column_name(sel);
            let question = match rng.gen_range(0..2) {
                0 => format!("How many more rows have {sel_name} {v1} than {sel_name} {v2}?"),
                _ => format!(
                    "In column {sel_name}, what is the difference between the number of {v1} rows and {v2} rows?"
                ),
            };
            let formula = Formula::Sub(
                Box::new(Formula::aggregate(
                    wtq_dcs::AggregateOp::Count,
                    join(&sel_name, &v1),
                )),
                Box::new(Formula::aggregate(
                    wtq_dcs::AggregateOp::Count,
                    join(&sel_name, &v2),
                )),
            );
            Some((question, formula))
        }
        QuestionFamily::AdjacentRow => {
            let sel = *pick(&selections, rng)?;
            let target = (0..table.num_columns()).find(|&c| c != sel)?;
            let value = pick_value(table, sel, rng)?;
            let (sel_name, target_name) = (column_name(sel), column_name(target));
            let below = rng.gen_bool(0.5);
            let direction = if below { "after" } else { "before" };
            let question = format!(
                "What is the {target_name} right {direction} the row where {sel_name} is {value}?"
            );
            let records = join(&sel_name, &value);
            let shifted = if below {
                Formula::Next(Box::new(records))
            } else {
                Formula::Prev(Box::new(records))
            };
            Some((question, Formula::column_values(&target_name, shifted)))
        }
        QuestionFamily::FirstLastRow => {
            let sel = *pick(&selections, rng)?;
            let target = (0..table.num_columns()).find(|&c| c != sel)?;
            let value = pick_value(table, sel, rng)?;
            let (sel_name, target_name) = (column_name(sel), column_name(target));
            let last = rng.gen_bool(0.5);
            let op = if last {
                wtq_dcs::SuperlativeOp::Argmax
            } else {
                wtq_dcs::SuperlativeOp::Argmin
            };
            let position = if last { "last" } else { "first" };
            let question = format!(
                "What is the {target_name} of the {position} row whose {sel_name} is {value}?"
            );
            let formula = Formula::column_values(
                &target_name,
                Formula::RecordIndexSuperlative {
                    op,
                    records: Box::new(join(&sel_name, &value)),
                },
            );
            Some((question, formula))
        }
        QuestionFamily::ComparisonCount => {
            let num = *pick(&numerics, rng)?;
            let num_name = column_name(num);
            let values: Vec<f64> = table
                .record_indices()
                .filter_map(|r| table.number_at(r, num))
                .collect();
            if values.is_empty() {
                return None;
            }
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let threshold = sorted[sorted.len() / 2];
            let more = rng.gen_bool(0.5);
            let op = if more {
                wtq_dcs::CompareOp::Gt
            } else {
                wtq_dcs::CompareOp::Lt
            };
            let word = if more { "more" } else { "less" };
            let threshold_value = Value::Num(threshold);
            let question = format!("How many rows have {num_name} {word} than {threshold_value}?");
            let formula = Formula::aggregate(
                wtq_dcs::AggregateOp::Count,
                Formula::CompareJoin {
                    column: num_name,
                    op,
                    value: Box::new(Formula::Const(threshold_value)),
                },
            );
            Some((question, formula))
        }
        QuestionFamily::MostCommon => {
            let sel = *pick(&selections, rng)?;
            let sel_name = column_name(sel);
            let question = match rng.gen_range(0..2) {
                0 => format!("Which {sel_name} appears the most in the table?"),
                _ => format!("What is the most common value of {sel_name}?"),
            };
            let formula = Formula::MostCommonValue {
                op: wtq_dcs::SuperlativeOp::Argmax,
                values: Box::new(Formula::column_values(&sel_name, Formula::AllRecords)),
                column: sel_name,
            };
            Some((question, formula))
        }
        QuestionFamily::CompareTwoValues => {
            let sel = *pick(&selections, rng)?;
            let num = *pick(&numerics, rng)?;
            let (v1, v2) = pick_two_values(table, sel, rng)?;
            let (sel_name, num_name) = (column_name(sel), column_name(num));
            let higher = rng.gen_bool(0.5);
            let op = if higher {
                wtq_dcs::SuperlativeOp::Argmax
            } else {
                wtq_dcs::SuperlativeOp::Argmin
            };
            let adjective = if higher { "higher" } else { "lower" };
            let question = format!("Which has the {adjective} {num_name}, {v1} or {v2}?");
            let formula = Formula::CompareValues {
                op,
                values: Box::new(Formula::Union(
                    Box::new(Formula::Const(v1)),
                    Box::new(Formula::Const(v2)),
                )),
                key_column: num_name,
                value_column: sel_name,
            };
            Some((question, formula))
        }
        QuestionFamily::UnionCount => {
            let sel = *pick(&selections, rng)?;
            let (v1, v2) = pick_two_values(table, sel, rng)?;
            let sel_name = column_name(sel);
            let question = format!("How many rows have {sel_name} {v1} or {v2}?");
            let formula = Formula::aggregate(
                wtq_dcs::AggregateOp::Count,
                Formula::Union(
                    Box::new(join(&sel_name, &v1)),
                    Box::new(join(&sel_name, &v2)),
                ),
            );
            Some((question, formula))
        }
        QuestionFamily::IntersectionCount => {
            if selections.len() < 2 {
                return None;
            }
            let mut chosen: Vec<usize> = selections.choose_multiple(rng, 2).copied().collect();
            chosen.shuffle(rng);
            let (sel1, sel2) = (chosen[0], chosen[1]);
            let v1 = pick_value(table, sel1, rng)?;
            let v2 = pick_value(table, sel2, rng)?;
            let (name1, name2) = (column_name(sel1), column_name(sel2));
            let question = format!("How many rows have {name1} {v1} and also {name2} {v2}?");
            let formula = Formula::aggregate(
                wtq_dcs::AggregateOp::Count,
                Formula::Intersect(Box::new(join(&name1, &v1)), Box::new(join(&name2, &v2))),
            );
            Some((question, formula))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;
    use crate::tablegen::generate_table;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wtq_table::samples;

    #[test]
    fn generates_questions_for_every_family_somewhere() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen: std::collections::HashSet<QuestionFamily> = std::collections::HashSet::new();
        for domain in all_domains() {
            let table = generate_table(&domain, 0, &mut rng);
            for family in QuestionFamily::all() {
                for _ in 0..4 {
                    if let Some(q) = generate_for_family(&table, family, &mut rng) {
                        seen.insert(q.family);
                        break;
                    }
                }
            }
        }
        assert_eq!(
            seen.len(),
            QuestionFamily::all().len(),
            "some family never generated"
        );
    }

    #[test]
    fn gold_answers_match_gold_formula_execution() {
        let table = samples::medals();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let questions = generate_questions(&table, 20, &mut rng);
        assert!(questions.len() >= 10);
        for q in &questions {
            let denotation = eval(&q.formula, &table).expect("gold formula evaluates");
            assert_eq!(
                Answer::from_denotation(&denotation),
                q.answer,
                "mismatch for {}",
                q.question
            );
            assert!(!q.question.is_empty());
        }
    }

    #[test]
    fn questions_mention_the_constants_they_ask_about() {
        // The lexicon-based parser relies on question tokens anchoring to the
        // table, so generated questions must surface their constants.
        let table = samples::shipwrecks();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _ in 0..10 {
            if let Some(q) = generate_for_family(&table, QuestionFamily::CountRows, &mut rng) {
                let Formula::Aggregate { sub, .. } = &q.formula else {
                    panic!("unexpected shape")
                };
                let Formula::Join { values, .. } = sub.as_ref() else {
                    panic!("unexpected shape")
                };
                let Formula::Const(value) = values.as_ref() else {
                    panic!("unexpected shape")
                };
                assert!(
                    q.question
                        .to_lowercase()
                        .contains(&value.to_string().to_lowercase()),
                    "question {:?} does not mention {}",
                    q.question,
                    value
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let table = samples::olympics();
        let a = generate_questions(&table, 15, &mut ChaCha8Rng::seed_from_u64(5));
        let b = generate_questions(&table, 15, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.formula, y.formula);
        }
    }

    #[test]
    fn questions_are_distinct() {
        let table = samples::usl_league();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let questions = generate_questions(&table, 25, &mut rng);
        let mut texts: Vec<&str> = questions.iter().map(|q| q.question.as_str()).collect();
        texts.sort_unstable();
        let before = texts.len();
        texts.dedup();
        assert_eq!(before, texts.len());
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<&str> = QuestionFamily::all().iter().map(|f| f.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
