//! The readiness poller: a level-triggered wrapper over `epoll` (Linux) or
//! `poll(2)` (other unixes), with explicit per-fd interest management.
//!
//! Level-triggered on purpose: the reactor re-polls until its reads and
//! writes hit `WouldBlock`, so a level-triggered poller cannot lose a
//! wakeup the way a mishandled edge-triggered one can — correctness first,
//! and the syscall count is identical for the request-sized frames this
//! server moves.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read, or the peer closed / errored (reading
    /// surfaces the exact condition, so error states map to readable).
    pub readable: bool,
    /// The fd can accept bytes.
    pub writable: bool,
}

/// A level-triggered readiness poller over raw fds.
///
/// The caller keeps fd ownership; the poller only watches. Registrations
/// are keyed by caller-chosen `u64` tokens, echoed back in [`Event`]s.
#[derive(Debug)]
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// A fresh poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    /// Start watching `fd` under `token`.
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Change what an already-registered `fd` is woken for.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stop watching `fd`. Must be called *before* the fd is closed — a
    /// closed fd is silently dropped by epoll but would poison the `poll`
    /// fallback's array.
    pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// expires (`None` blocks indefinitely), appending readiness to
    /// `events` (cleared first). Returns the number of events delivered.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout)
    }
}

/// Clamp an optional timeout to the C `int` milliseconds `epoll_wait` and
/// `poll` take (`-1` blocks).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(duration) => duration.as_millis().min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use crate::sys::{self, epoll};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub struct Poller {
        epfd: RawFd,
        /// Scratch buffer reused across waits.
        buf: Vec<epoll::epoll_event>,
    }

    impl std::fmt::Debug for Poller {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Poller").field("epfd", &self.epfd).finish()
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut mask = 0;
        if interest.readable {
            // RDHUP rides with read interest only: a connection that has
            // already seen EOF parks with an empty mask, and a half-closed
            // peer cannot spin the reactor while its request is in flight.
            mask |= epoll::EPOLLIN | epoll::EPOLLRDHUP;
        }
        if interest.writable {
            mask |= epoll::EPOLLOUT;
        }
        mask
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = sys::cvt(unsafe { epoll::epoll_create1(epoll::EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![epoll::epoll_event { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = epoll::epoll_event {
                events: mask(interest),
                data: token,
            };
            sys::cvt(unsafe { epoll::epoll_ctl(self.epfd, op, fd, &mut event) })?;
            Ok(())
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let mut event = epoll::epoll_event { events: 0, data: 0 };
            sys::cvt(unsafe { epoll::epoll_ctl(self.epfd, epoll::EPOLL_CTL_DEL, fd, &mut event) })?;
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let n = loop {
                let rc = unsafe {
                    epoll::epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = sys::last_errno();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.buf[..n] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits
                        & (epoll::EPOLLIN | epoll::EPOLLHUP | epoll::EPOLLERR | epoll::EPOLLRDHUP)
                        != 0,
                    writable: bits & (epoll::EPOLLOUT | epoll::EPOLLERR) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { sys::close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use crate::sys::{self, poll};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// O(n)-per-wait fallback for development on non-Linux unixes; the
    /// production target is the epoll backend above.
    #[derive(Debug)]
    pub struct Poller {
        entries: Vec<(RawFd, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                entries: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.entries.iter().any(|(other, _, _)| *other == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd registered",
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for entry in &mut self.entries {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|(other, _, _)| *other != fd);
            if self.entries.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds: Vec<poll::pollfd> = self
                .entries
                .iter()
                .map(|(fd, _, interest)| poll::pollfd {
                    fd: *fd,
                    events: (if interest.readable { poll::POLLIN } else { 0 })
                        | (if interest.writable { poll::POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            loop {
                let rc = unsafe {
                    poll::poll(
                        fds.as_mut_ptr(),
                        fds.len() as sys::nfds_t,
                        timeout_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break;
                }
                let err = sys::last_errno();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (slot, (_, token, _)) in fds.iter().zip(&self.entries) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token: *token,
                    readable: bits & (poll::POLLIN | poll::POLLHUP | poll::POLLERR) != 0,
                    writable: bits & (poll::POLLOUT | poll::POLLERR) != 0,
                });
            }
            Ok(events.len())
        }
    }
}
