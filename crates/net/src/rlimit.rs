//! Open-file limit helpers for many-connection servers and benches.
//!
//! A 5000-idle-connection bench needs ~2 fds per loopback connection in
//! one process; the default soft `RLIMIT_NOFILE` (often 1024) would kill
//! it at accept time. The soft limit can be raised to the hard limit
//! without privileges, so benches call [`raise_nofile_limit`] and clamp
//! their connection counts to what they actually got.

use std::io;

use crate::sys;

/// The current `(soft, hard)` open-file limits.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut limit = sys::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    sys::cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut limit) })?;
    Ok((limit.rlim_cur, limit.rlim_max))
}

/// Raise the soft open-file limit toward `wanted` (capped by the hard
/// limit, which unprivileged processes cannot exceed). Returns the soft
/// limit actually in effect afterwards; never lowers it.
pub fn raise_nofile_limit(wanted: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if wanted <= soft {
        return Ok(soft);
    }
    let target = wanted.min(hard);
    let limit = sys::rlimit {
        rlim_cur: target,
        rlim_max: hard,
    };
    sys::cvt(unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &limit) })?;
    Ok(target)
}
