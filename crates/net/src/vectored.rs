//! Vectored (gather) writes over raw fds — `writev(2)` declared by hand
//! like the rest of [`crate::sys`].
//!
//! The serving layer's encode-once hit path keeps a response as up to a
//! few discontiguous segments (pooled frame head, shared cached body,
//! static tail). A single [`write_vectored`] call pushes all of them into
//! the socket in one syscall, without first concatenating them into a
//! fresh allocation — the kernel gathers straight from the segments.

use std::io;
use std::os::unix::io::RawFd;

use crate::sys;

/// The most segments one call hands to the kernel. POSIX guarantees
/// `IOV_MAX >= 16`; responses use at most a handful of segments, and any
/// excess is simply reported as a short write for the caller to resume.
pub const MAX_SEGMENTS: usize = 8;

/// Write as much of `segments` (in order) as the fd accepts in one
/// `writev(2)` call, returning the number of bytes consumed. Empty
/// segments are skipped; segments beyond [`MAX_SEGMENTS`] wait for the
/// next call (a short write, exactly as if the socket buffer had filled).
///
/// The fd is used for the duration of the call only; the caller keeps
/// ownership. On nonblocking sockets a full buffer surfaces as
/// [`io::ErrorKind::WouldBlock`], like `write(2)`.
pub fn write_vectored(fd: RawFd, segments: &[&[u8]]) -> io::Result<usize> {
    let mut iov = [sys::iovec {
        iov_base: std::ptr::null(),
        iov_len: 0,
    }; MAX_SEGMENTS];
    let mut count = 0;
    for segment in segments {
        if segment.is_empty() {
            continue;
        }
        if count == MAX_SEGMENTS {
            break;
        }
        iov[count] = sys::iovec {
            iov_base: segment.as_ptr(),
            iov_len: segment.len(),
        };
        count += 1;
    }
    if count == 0 {
        return Ok(0);
    }
    let rc = unsafe { sys::writev(fd, iov.as_ptr(), count as sys::c_int) };
    if rc < 0 {
        Err(sys::last_errno())
    } else {
        Ok(rc as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn gathers_segments_in_order() {
        let (client, mut server) = socket_pair();
        let written =
            write_vectored(client.as_raw_fd(), &[b"head|", b"", b"body|", b"tail"]).unwrap();
        assert_eq!(written, 14);
        drop(client);
        let mut received = Vec::new();
        server.read_to_end(&mut received).unwrap();
        assert_eq!(received, b"head|body|tail");
    }

    #[test]
    fn all_empty_segments_write_nothing() {
        let (client, _server) = socket_pair();
        assert_eq!(write_vectored(client.as_raw_fd(), &[b"", b""]).unwrap(), 0);
        assert_eq!(write_vectored(client.as_raw_fd(), &[]).unwrap(), 0);
    }

    #[test]
    fn full_nonblocking_socket_reports_would_block() {
        let (client, _server) = socket_pair();
        client.set_nonblocking(true).unwrap();
        let chunk = vec![0u8; 1 << 20];
        let err = loop {
            match write_vectored(client.as_raw_fd(), &[&chunk, &chunk]) {
                Ok(_) => continue,
                Err(err) => break err,
            }
        };
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }
}
