//! Cross-thread reactor wakeup over a nonblocking pipe.
//!
//! A reactor blocked in [`crate::Poller::wait`] cannot see work queued by
//! other threads (a completed response, a new connection, shutdown). The
//! waker is the classic self-pipe: the reactor registers the read end in
//! its poller; any thread holding a [`Waker`] writes one byte to the write
//! end, turning the queued work into a readiness event.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

use crate::sys;

/// The write end of the wakeup pipe — cheap to clone, safe to use from any
/// thread.
#[derive(Debug, Clone)]
pub struct Waker {
    write_fd: Arc<OwnedFd>,
}

/// The read end, owned by the reactor that registered it.
#[derive(Debug)]
pub struct WakeReceiver {
    read_fd: OwnedFd,
}

#[derive(Debug)]
struct OwnedFd(RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

/// A connected waker pair.
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (read_fd, write_fd) = sys::nonblocking_pipe()?;
    Ok((
        Waker {
            write_fd: Arc::new(OwnedFd(write_fd)),
        },
        WakeReceiver {
            read_fd: OwnedFd(read_fd),
        },
    ))
}

impl Waker {
    /// Make the paired receiver's fd readable. A full pipe means a wakeup
    /// is already pending, which is exactly the state we want — the
    /// `WouldBlock` is success, not failure.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { sys::write(self.write_fd.0, &byte, 1) };
    }
}

impl WakeReceiver {
    /// The fd to register for readability.
    pub fn fd(&self) -> RawFd {
        self.read_fd.0
    }

    /// Consume all pending wakeups so a level-triggered poller stops
    /// reporting the pipe readable.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd.0, sink.as_mut_ptr(), sink.len()) };
            if n <= 0 || (n as usize) < sink.len() {
                break;
            }
        }
    }
}
