//! Raw syscall bindings for the poller — declared by hand because the build
//! environment vendors no `libc` crate. `std` already links the platform C
//! library, so these `extern "C"` declarations resolve against it at link
//! time; only the tiny slice of the API the reactor needs is declared.
//!
//! Everything here is `#[cfg(unix)]`; the epoll surface is additionally
//! Linux-only (see [`crate::poller`] for the portable `poll(2)` fallback).

#![allow(non_camel_case_types)]

use std::os::unix::io::RawFd;

pub type c_int = i32;
#[cfg(target_os = "linux")]
pub type nfds_t = u64;
#[cfg(all(unix, not(target_os = "linux")))]
pub type nfds_t = u32;

// -- errno ------------------------------------------------------------------

/// The calling thread's `errno` as a Rust error.
pub fn last_errno() -> std::io::Error {
    std::io::Error::last_os_error()
}

/// `Err(errno)` when `rc` is negative, `Ok(rc)` otherwise — the usual
/// C return-code convention.
pub fn cvt(rc: c_int) -> std::io::Result<c_int> {
    if rc < 0 {
        Err(last_errno())
    } else {
        Ok(rc)
    }
}

// -- epoll (Linux) ----------------------------------------------------------

#[cfg(target_os = "linux")]
pub mod epoll {
    use super::{c_int, RawFd};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`. The kernel ABI packs this to 12 bytes on
    /// x86-64 (a plain `repr(C)` would pad `data` to an 8-byte boundary
    /// and corrupt every event after the first in `epoll_wait`'s array).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: RawFd, op: c_int, fd: RawFd, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: RawFd,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
    }
}

// -- poll (portable fallback) ----------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
pub mod poll {
    use super::{c_int, nfds_t, RawFd};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout_ms: c_int) -> c_int;
    }
}

// -- pipes, fds -------------------------------------------------------------

#[cfg(target_os = "linux")]
pub const O_NONBLOCK: c_int = 0o4000;
#[cfg(target_os = "linux")]
pub const O_CLOEXEC: c_int = 0o2000000;
#[cfg(all(unix, not(target_os = "linux")))]
pub const O_NONBLOCK: c_int = 0x0004;
pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;

/// `struct iovec` for `writev(2)` — one gather segment.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct iovec {
    pub iov_base: *const u8,
    pub iov_len: usize,
}

extern "C" {
    pub fn close(fd: RawFd) -> c_int;
    pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
    pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
    pub fn writev(fd: RawFd, iov: *const iovec, iovcnt: c_int) -> isize;
    pub fn fcntl(fd: RawFd, cmd: c_int, arg: c_int) -> c_int;
    #[cfg(target_os = "linux")]
    pub fn pipe2(fds: *mut RawFd, flags: c_int) -> c_int;
    #[cfg(not(target_os = "linux"))]
    pub fn pipe(fds: *mut RawFd) -> c_int;
}

/// A nonblocking, close-on-exec pipe: `(read_end, write_end)`.
pub fn nonblocking_pipe() -> std::io::Result<(RawFd, RawFd)> {
    let mut fds: [RawFd; 2] = [-1; 2];
    #[cfg(target_os = "linux")]
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    #[cfg(not(target_os = "linux"))]
    {
        cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
        for fd in fds {
            let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
            cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
        }
    }
    Ok((fds[0], fds[1]))
}

// -- rlimit -----------------------------------------------------------------

#[cfg(target_os = "linux")]
pub const RLIMIT_NOFILE: c_int = 7;
#[cfg(all(unix, not(target_os = "linux")))]
pub const RLIMIT_NOFILE: c_int = 8;

#[repr(C)]
#[derive(Clone, Copy)]
pub struct rlimit {
    pub rlim_cur: u64,
    pub rlim_max: u64,
}

extern "C" {
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}
