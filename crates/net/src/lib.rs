//! # wtq-net
//!
//! Hand-rolled nonblocking I/O primitives for the serving layer — the
//! pieces a readiness-driven reactor is built from, with **zero external
//! crates** (the build environment is offline: no tokio, no mio, not even
//! `libc` — the few syscalls needed are declared by hand in [`sys`] and
//! resolve against the C library `std` already links).
//!
//! * [`Poller`] — a level-triggered readiness poller: `epoll` on Linux,
//!   a `poll(2)` fallback elsewhere. Caller-owned fds, `u64` tokens,
//!   explicit per-fd [`Interest`] management.
//! * [`Waker`]/[`WakeReceiver`] — a self-pipe wakeup so other threads
//!   (worker pools completing responses, acceptors handing off sockets,
//!   shutdown) can interrupt a blocked [`Poller::wait`].
//! * [`rlimit`] — `RLIMIT_NOFILE` helpers so many-connection benches can
//!   raise the soft fd limit and clamp honestly to what they got.
//! * [`write_vectored`] — a `writev(2)` gather write, so multi-segment
//!   responses (frame head, cached body, static tail) reach the socket in
//!   one syscall without an intermediate concatenation.
//!
//! What this crate is *not*: a runtime. There are no futures, no tasks, no
//! executors — the server builds its event loop and per-connection state
//! machines directly on these primitives (see `wtq_server::reactor`).

#![cfg(unix)]

pub mod poller;
pub mod rlimit;
pub mod sys;
pub mod vectored;
pub mod waker;

pub use poller::{Event, Interest, Poller};
pub use rlimit::{nofile_limit, raise_nofile_limit};
pub use vectored::write_vectored;
pub use waker::{waker, WakeReceiver, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    /// A connected loopback socket pair.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn readable_event_fires_when_bytes_arrive() {
        let (mut client, server) = socket_pair();
        let mut poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();

        // Nothing pending: a zero timeout returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|event| event.token == 7 && event.readable));
    }

    #[test]
    fn interest_modification_gates_writability() {
        let (_client, server) = socket_pair();
        let mut poller = Poller::new().unwrap();
        // Read-only interest: an idle writable socket reports nothing.
        poller
            .add(server.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
        // Adding writable interest surfaces the (empty) send buffer.
        poller
            .modify(server.as_raw_fd(), 1, Interest::BOTH)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|event| event.token == 1 && event.writable));
    }

    #[test]
    fn deleted_registrations_stop_reporting() {
        let (mut client, server) = socket_pair();
        let mut poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty());
        poller.delete(server.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_reads_as_readable_eof() {
        let (client, mut server) = socket_pair();
        let mut poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|event| event.token == 9 && event.readable));
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 0, "readable means EOF here");
    }

    #[test]
    fn waker_unblocks_a_sleeping_poller_across_threads() {
        let (waker, receiver) = waker().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .add(receiver.fd(), u64::MAX, Interest::READABLE)
            .unwrap();
        // Keep one clone alive here: dropping the last write end would close
        // the pipe and leave the read end permanently readable (HUP).
        let thread_waker = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            thread_waker.wake();
            thread_waker.wake(); // coalescing duplicates is fine
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|event| event.token == u64::MAX));
        // Both wakes are in the pipe once the thread is joined; draining
        // then clears the readable state entirely.
        handle.join().unwrap();
        receiver.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn nofile_limit_is_queryable_and_raisable() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Never lowers, result is capped by the hard limit.
        let got = raise_nofile_limit(soft).unwrap();
        assert!(got >= soft);
        let got = raise_nofile_limit(u64::MAX).unwrap();
        assert!(got <= hard);
    }

    #[test]
    fn many_registrations_deliver_the_right_tokens() {
        let mut pairs = Vec::new();
        let mut poller = Poller::new().unwrap();
        for token in 0..64u64 {
            let (client, server) = socket_pair();
            poller
                .add(server.as_raw_fd(), token, Interest::READABLE)
                .unwrap();
            pairs.push((client, server));
        }
        // Only every 8th connection speaks.
        for (token, (client, _)) in pairs.iter_mut().enumerate() {
            if token % 8 == 0 {
                client.write_all(b"ping").unwrap();
            }
        }
        let mut ready = std::collections::HashSet::new();
        let mut events = Vec::new();
        while ready.len() < 8 {
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(!events.is_empty(), "expected 8 ready tokens, got {ready:?}");
            for event in &events {
                assert!(event.readable);
                assert_eq!(event.token % 8, 0);
                ready.insert(event.token);
            }
        }
    }
}
