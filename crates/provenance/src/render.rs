//! Rendering of highlighted tables.
//!
//! Three renderers share the same highlight map:
//!
//! * [`render_text`] — a plain-text grid using markers (`[v]` colored,
//!   `(v)` framed, `*v*` lit), suitable for logs, tests and the experiments
//!   binary's figure gallery,
//! * [`render_ansi`] — ANSI-colored terminal output (colored cells on a green
//!   background, framed cells in bold yellow, lit cells dimmed),
//! * [`render_html`] — an HTML `<table>` with CSS classes, the form a web
//!   deployment like the paper's AMT interface would embed.

use wtq_table::{CellRef, Table};

use crate::highlight::{HighlightKind, Highlights};

/// Legend appended to text renderings.
pub const TEXT_LEGEND: &str =
    "[v] colored (query output)   (v) framed (examined)   *v* lit (query columns)";

fn text_cell(kind: HighlightKind, text: &str) -> String {
    match kind {
        HighlightKind::Colored => format!("[{text}]"),
        HighlightKind::Framed => format!("({text})"),
        HighlightKind::Lit => format!("*{text}*"),
        HighlightKind::None => text.to_string(),
    }
}

/// Render the highlighted table as a plain-text grid.
pub fn render_text(table: &Table, highlights: &Highlights) -> String {
    let headers: Vec<String> = (0..table.num_columns())
        .map(|column| highlights.header_label(table, column))
        .collect();
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(table.num_records());
    for record in table.record_indices() {
        let row: Vec<String> = (0..table.num_columns())
            .map(|column| {
                let cell = CellRef::new(record, column);
                text_cell(highlights.kind(cell), &table.cell_text(cell))
            })
            .collect();
        cells.push(row);
    }
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &cells {
        for (column, text) in row.iter().enumerate() {
            widths[column] = widths[column].max(text.len());
        }
    }
    let mut out = String::new();
    for (column, header) in headers.iter().enumerate() {
        out.push_str(&format!("{:<width$}  ", header, width = widths[column]));
    }
    out.push('\n');
    for row in &cells {
        for (column, text) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", text, width = widths[column]));
        }
        out.push('\n');
    }
    out
}

/// Render the highlighted table with ANSI escape codes for terminals.
pub fn render_ansi(table: &Table, highlights: &Highlights) -> String {
    const RESET: &str = "\u{1b}[0m";
    const COLORED: &str = "\u{1b}[42;30m"; // green background
    const FRAMED: &str = "\u{1b}[1;33m"; // bold yellow
    const LIT: &str = "\u{1b}[36m"; // cyan
    let mut out = String::new();
    for column in 0..table.num_columns() {
        out.push_str(&format!("{:<18}", highlights.header_label(table, column)));
    }
    out.push('\n');
    for record in table.record_indices() {
        for column in 0..table.num_columns() {
            let cell = CellRef::new(record, column);
            let text = format!("{:<18}", table.cell_text(cell));
            match highlights.kind(cell) {
                HighlightKind::Colored => out.push_str(&format!("{COLORED}{text}{RESET}")),
                HighlightKind::Framed => out.push_str(&format!("{FRAMED}{text}{RESET}")),
                HighlightKind::Lit => out.push_str(&format!("{LIT}{text}{RESET}")),
                HighlightKind::None => out.push_str(&text),
            }
        }
        out.push('\n');
    }
    out
}

/// Render the highlighted table as an HTML `<table>` with one CSS class per
/// highlight level.
pub fn render_html(table: &Table, highlights: &Highlights) -> String {
    fn escape(text: &str) -> String {
        text.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    }
    let mut out = String::from("<table class=\"wtq-highlights\">\n  <thead><tr>");
    for column in 0..table.num_columns() {
        out.push_str(&format!(
            "<th>{}</th>",
            escape(&highlights.header_label(table, column))
        ));
    }
    out.push_str("</tr></thead>\n  <tbody>\n");
    for record in table.record_indices() {
        out.push_str("    <tr>");
        for column in 0..table.num_columns() {
            let cell = CellRef::new(record, column);
            let class = match highlights.kind(cell) {
                HighlightKind::Colored => "colored",
                HighlightKind::Framed => "framed",
                HighlightKind::Lit => "lit",
                HighlightKind::None => "plain",
            };
            out.push_str(&format!(
                "<td class=\"{class}\">{}</td>",
                escape(&table.cell_text(cell))
            ));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("  </tbody>\n</table>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_dcs::parse_formula;
    use wtq_table::samples;

    fn figure_six() -> (Table, Highlights) {
        let table = samples::medals();
        let highlights = Highlights::compute(
            &parse_formula("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)").unwrap(),
            &table,
        )
        .unwrap();
        (table, highlights)
    }

    #[test]
    fn text_rendering_marks_all_three_levels() {
        let (table, highlights) = figure_six();
        let text = render_text(&table, &highlights);
        assert!(
            text.contains("[130]"),
            "colored output cell missing:\n{text}"
        );
        assert!(text.contains("[20]"));
        assert!(text.contains("(Fiji)"), "framed cell missing:\n{text}");
        assert!(text.contains("(Tonga)"));
        assert!(text.contains("*288*"), "lit cell missing:\n{text}");
        // Cells of unrelated columns (Gold) stay unmarked.
        assert!(text.contains("120"));
        assert!(!text.contains("*120*"));
        assert!(!text.contains("[120]"));
    }

    #[test]
    fn ansi_rendering_contains_escape_codes() {
        let (table, highlights) = figure_six();
        let ansi = render_ansi(&table, &highlights);
        assert!(ansi.contains("\u{1b}[42;30m"));
        assert!(ansi.contains("\u{1b}[0m"));
    }

    #[test]
    fn html_rendering_classes_and_escaping() {
        let (table, highlights) = figure_six();
        let html = render_html(&table, &highlights);
        assert!(html.contains("<td class=\"colored\">130</td>"));
        assert!(html.contains("<td class=\"framed\">Fiji</td>"));
        assert!(html.contains("<td class=\"lit\">288</td>"));
        assert!(html.contains("<th>Nation</th>"));
        // Escaping of special characters.
        let table = wtq_table::Table::from_rows("t", &["A"], &[vec!["a<b&c"]]).unwrap();
        let highlights = Highlights::compute(&parse_formula("R[A].Rows").unwrap(), &table).unwrap();
        let html = render_html(&table, &highlights);
        assert!(html.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn headers_carry_aggregate_marks_in_all_renderers() {
        let table = samples::olympics();
        let highlights = Highlights::compute(
            &parse_formula("max(R[Year].Country.Greece)").unwrap(),
            &table,
        )
        .unwrap();
        for rendering in [
            render_text(&table, &highlights),
            render_ansi(&table, &highlights),
            render_html(&table, &highlights),
        ] {
            assert!(
                rendering.contains("MAX(Year)"),
                "missing header mark:\n{rendering}"
            );
        }
    }
}
