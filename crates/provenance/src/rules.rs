//! Per-operator provenance rules (the provenance column of Table 10).
//!
//! The computation mirrors Algorithm 1: it decomposes the formula into its
//! sub-formulas, computes the output provenance `P_O` of each, accumulates
//! their union into the execution provenance `P_E`, and collects every cell
//! of every mentioned column into `P_C`. The output provenance of each
//! operator follows Table 10:
//!
//! * joins and comparison joins contribute the matching cells of their
//!   selection column,
//! * projections contribute the projected cells,
//! * intersections intersect their operands' output cells while unions union
//!   them,
//! * superlatives contribute the winning cells of the ranking column,
//! * aggregates and differences contribute their operands' cells plus an
//!   operator marker that the highlighter attaches to the column header.

use std::collections::BTreeSet;

use wtq_dcs::{Denotation, Evaluator, Formula};
use wtq_table::{CellRef, Table};

use crate::model::{OpMarker, ProvenanceChain};

/// Compute the multilevel cell-based provenance `Prov(Q, T) = (P_O, P_E,
/// P_C)` of `formula` executed on `table`.
///
/// Returns an error if the formula does not evaluate on the table (unknown
/// column, ill-typed composition, …): provenance is only defined for queries
/// that execute.
pub fn provenance(formula: &Formula, table: &Table) -> wtq_dcs::Result<ProvenanceChain> {
    let evaluator = Evaluator::new(table);
    let mut chain = ProvenanceChain::new();

    // P_C: every cell of every mentioned column (Equation 3).
    for column_name in formula.columns_mentioned() {
        if let Some(column) = table.column_index(&column_name) {
            chain.columns.extend(table.column_cells(column));
        }
    }

    // P_O of the whole query plus P_E as the union of P_O over sub-formulas
    // (Equations 1 and 2), computed in one recursive pass.
    let output = output_provenance(formula, &evaluator, &mut chain)?;
    chain.output = output;

    // The chain is nested by construction; clamp defensively so the
    // Definition 4.1 hierarchy holds even for degenerate formulas (e.g. a
    // bare constant whose cells lie outside any mentioned column).
    chain.execution = chain.execution.union(&chain.output).copied().collect();
    chain.execution = chain
        .execution
        .intersection(&chain.columns)
        .copied()
        .collect();
    chain.output = chain
        .output
        .intersection(&chain.execution)
        .copied()
        .collect();
    Ok(chain)
}

/// Recursively compute `P_O` of `formula`, adding every sub-formula's output
/// provenance (including `formula`'s own) to `chain.execution` and operator
/// markers to `chain.markers`.
fn output_provenance(
    formula: &Formula,
    evaluator: &Evaluator<'_>,
    chain: &mut ProvenanceChain,
) -> wtq_dcs::Result<BTreeSet<CellRef>> {
    let table = evaluator.table();
    let output: BTreeSet<CellRef> = match formula {
        // A constant on its own examines nothing; the operator using it
        // (join, comparison, …) contributes the matching cells.
        Formula::Const(_) => BTreeSet::new(),
        // The set of all records names no column and examines no cell.
        Formula::AllRecords => BTreeSet::new(),
        Formula::Join { column, values } => {
            let _ = output_provenance(values, evaluator, chain)?;
            let column_idx = require_column(table, column)?;
            let wanted = evaluator.eval(values)?;
            let wanted = wanted.values();
            let mut cells = BTreeSet::new();
            for value in &wanted {
                cells.extend(evaluator.kb().matching_cells(column_idx, value));
            }
            cells
        }
        Formula::CompareJoin { column, op, value } => {
            let _ = output_provenance(value, evaluator, chain)?;
            let column_idx = require_column(table, column)?;
            let threshold = evaluator.eval(value)?;
            let threshold = threshold
                .as_single_number()
                .ok_or(wtq_dcs::DcsError::Cardinality {
                    operator: "comparison",
                    expected: "a single numeric value",
                    got: threshold.len(),
                })?;
            table
                .column_cells(column_idx)
                .filter(|cell| {
                    table
                        .number_at(cell.record, cell.column)
                        .map(|n| op.compare(n, threshold))
                        .unwrap_or(false)
                })
                .collect()
        }
        Formula::ColumnValues { column, records } => {
            let _ = output_provenance(records, evaluator, chain)?;
            let column_idx = require_column(table, column)?;
            let records = evaluator.eval(records)?;
            match records {
                Denotation::Records(records) => records
                    .iter()
                    .map(|&record| CellRef::new(record, column_idx))
                    .collect(),
                _ => BTreeSet::new(),
            }
        }
        Formula::Prev(sub) | Formula::Next(sub) => {
            // The shift itself outputs no new cells; the anchoring cells are
            // contributed by the inner formula.
            output_provenance(sub, evaluator, chain)?
        }
        Formula::Intersect(a, b) => {
            let left = output_provenance(a, evaluator, chain)?;
            let right = output_provenance(b, evaluator, chain)?;
            left.intersection(&right).copied().collect()
        }
        Formula::Union(a, b) => {
            let left = output_provenance(a, evaluator, chain)?;
            let right = output_provenance(b, evaluator, chain)?;
            left.union(&right).copied().collect()
        }
        Formula::Aggregate { op, sub } => {
            let inner = output_provenance(sub, evaluator, chain)?;
            chain
                .markers
                .push((marker_column(table, sub), OpMarker::Aggregate(*op)));
            inner
        }
        Formula::Sub(a, b) => {
            let left = output_provenance(a, evaluator, chain)?;
            let right = output_provenance(b, evaluator, chain)?;
            chain
                .markers
                .push((marker_column(table, formula), OpMarker::Difference));
            left.union(&right).copied().collect()
        }
        Formula::SuperlativeRecords {
            records, column, ..
        } => {
            let _ = output_provenance(records, evaluator, chain)?;
            let column_idx = require_column(table, column)?;
            let selected = evaluator.eval(formula)?;
            match selected {
                Denotation::Records(selected) => selected
                    .iter()
                    .map(|&record| CellRef::new(record, column_idx))
                    .collect(),
                _ => BTreeSet::new(),
            }
        }
        Formula::RecordIndexSuperlative { records, .. } => {
            let inner = output_provenance(records, evaluator, chain)?;
            let selected = evaluator.eval(formula)?;
            match selected {
                Denotation::Records(selected) => inner
                    .into_iter()
                    .filter(|cell| selected.contains(&cell.record))
                    .collect(),
                _ => BTreeSet::new(),
            }
        }
        Formula::MostCommonValue { values, column, .. } => {
            let _ = output_provenance(values, evaluator, chain)?;
            let column_idx = require_column(table, column)?;
            let winners = evaluator.eval(formula)?;
            let mut cells = BTreeSet::new();
            for value in winners.values() {
                cells.extend(evaluator.kb().matching_cells(column_idx, &value));
            }
            cells
        }
        Formula::CompareValues {
            values,
            key_column,
            value_column,
            op,
        } => {
            let _ = output_provenance(values, evaluator, chain)?;
            let key_idx = require_column(table, key_column)?;
            let value_idx = require_column(table, value_column)?;
            // Candidate rows contribute their key cells to the execution set
            // (they are compared against each other), winners contribute
            // their value cells to the output.
            let candidates = evaluator.eval(values)?;
            let mut candidate_rows: BTreeSet<usize> = BTreeSet::new();
            for value in candidates.values() {
                candidate_rows.extend(evaluator.kb().join(value_idx, &value).iter().copied());
            }
            chain.execution.extend(
                candidate_rows
                    .iter()
                    .map(|&record| CellRef::new(record, key_idx)),
            );
            chain.execution.extend(
                candidate_rows
                    .iter()
                    .map(|&record| CellRef::new(record, value_idx)),
            );
            let winners = evaluator.eval(&Formula::CompareValues {
                op: *op,
                values: values.clone(),
                key_column: key_column.clone(),
                value_column: value_column.clone(),
            })?;
            winners.traced_cells().into_iter().collect()
        }
    };
    chain.execution.extend(output.iter().copied());
    Ok(output)
}

/// Column a marker is attributed to: the projected / counted column of the
/// operand, when there is exactly one natural choice.
fn marker_column(table: &Table, formula: &Formula) -> Option<usize> {
    let inner = match formula {
        Formula::Aggregate { sub, .. } => sub,
        Formula::Sub(a, _) => a,
        other => other,
    };
    match inner {
        Formula::ColumnValues { column, .. } => table.column_index(column),
        Formula::Join { column, .. } | Formula::CompareJoin { column, .. } => {
            table.column_index(column)
        }
        Formula::Aggregate { sub, .. } => marker_column(table, sub),
        _ => inner
            .columns_mentioned()
            .first()
            .and_then(|c| table.column_index(c)),
    }
}

fn require_column(table: &Table, name: &str) -> wtq_dcs::Result<usize> {
    table
        .column_index(name)
        .ok_or_else(|| wtq_dcs::DcsError::UnknownColumn(name.to_string()))
}

/// Count-based summary of a chain, used by tests and by the experiments
/// binary when reporting Figure galleries.
pub fn chain_summary(chain: &ProvenanceChain) -> (usize, usize, usize) {
    (
        chain.output.len(),
        chain.execution.len(),
        chain.columns.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_dcs::{parse_formula, AggregateOp};
    use wtq_table::samples;

    fn chain_for(text: &str, table: &Table) -> ProvenanceChain {
        let formula = parse_formula(text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
        provenance(&formula, table).unwrap_or_else(|e| panic!("provenance {text:?}: {e}"))
    }

    #[test]
    fn example_4_3_column_values_provenance() {
        // R[Year].City.Athens over the Olympics table.
        let table = samples::olympics();
        let chain = chain_for("R[Year].City.Athens", &table);
        let year = table.column_index("Year").unwrap();
        let city = table.column_index("City").unwrap();
        // P_O: Year cells of the Athens records (rows 0 and 5).
        assert_eq!(
            chain.output,
            BTreeSet::from([CellRef::new(0, year), CellRef::new(5, year)])
        );
        // P_E additionally contains the City cells with value Athens.
        assert!(chain.execution.contains(&CellRef::new(0, city)));
        assert!(chain.execution.contains(&CellRef::new(5, city)));
        assert_eq!(chain.execution.len(), 4);
        // P_C is every cell of columns Year and City.
        assert_eq!(chain.columns.len(), 2 * table.num_records());
        assert!(chain.is_well_formed());
    }

    #[test]
    fn example_5_2_difference_highlight_sets() {
        // sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga) over the medal table.
        let table = samples::medals();
        let chain = chain_for("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)", &table);
        let nation = table.column_index("Nation").unwrap();
        let total = table.column_index("Total").unwrap();
        let fiji_row = 3;
        let tonga_row = 6;
        // Colored cells: the two Total values 130 and 20.
        assert_eq!(
            chain.output,
            BTreeSet::from([
                CellRef::new(fiji_row, total),
                CellRef::new(tonga_row, total)
            ])
        );
        // Framed cells additionally include the Nation cells Fiji and Tonga.
        assert!(chain.execution.contains(&CellRef::new(fiji_row, nation)));
        assert!(chain.execution.contains(&CellRef::new(tonga_row, nation)));
        assert_eq!(chain.execution.len(), 4);
        // Lit cells are all of columns Nation and Total.
        assert_eq!(chain.columns.len(), 2 * table.num_records());
        // A difference marker is attached to the Total column.
        assert!(chain
            .markers
            .iter()
            .any(|(col, marker)| *col == Some(total) && *marker == OpMarker::Difference));
        assert!(chain.is_well_formed());
    }

    #[test]
    fn figure_one_aggregate_marks_the_year_header() {
        let table = samples::olympics();
        let chain = chain_for("max(R[Year].Country.Greece)", &table);
        let year = table.column_index("Year").unwrap();
        assert!(chain
            .markers
            .iter()
            .any(|(col, marker)| *col == Some(year)
                && *marker == OpMarker::Aggregate(AggregateOp::Max)));
        // Output cells are the Year values of the Greece rows (they feed the max).
        assert_eq!(chain.output.len(), 2);
        assert!(chain.is_well_formed());
    }

    #[test]
    fn figure_four_comparison_provenance() {
        let table = samples::squad();
        let chain = chain_for("Games.(> 4)", &table);
        let games = table.column_index("Games").unwrap();
        // Output cells: the Games cells with value > 4 (rows 4, 7, 8, 9).
        assert_eq!(chain.output.len(), 4);
        assert!(chain.output.iter().all(|cell| cell.column == games));
        assert_eq!(chain.columns.len(), table.num_records());
        assert!(chain.is_well_formed());
    }

    #[test]
    fn intersection_intersects_output_cells() {
        let table = samples::olympics();
        let chain = chain_for("(City.London and Country.UK)", &table);
        // London appears in City for the same rows where Country is UK, but
        // the two joins touch different columns, so their intersection of
        // output cells is empty while execution keeps both sides.
        assert!(chain.output.is_empty());
        assert_eq!(chain.execution.len(), 4);
        assert!(chain.is_well_formed());
    }

    #[test]
    fn union_unions_output_cells() {
        let table = samples::olympics();
        let chain = chain_for("(Country.Greece or Country.China)", &table);
        assert_eq!(chain.output.len(), 3);
        assert!(chain.is_well_formed());
    }

    #[test]
    fn superlative_outputs_only_winning_cells() {
        let table = samples::olympics();
        let chain = chain_for("argmax(Rows, Year)", &table);
        let year = table.column_index("Year").unwrap();
        assert_eq!(chain.output, BTreeSet::from([CellRef::new(8, year)]));
        assert!(chain.is_well_formed());
    }

    #[test]
    fn compare_values_examines_candidate_keys() {
        // Figure 5: between London or Beijing who has the highest Year.
        let table = samples::olympics();
        let chain = chain_for("compare_max((London or Beijing), Year, City)", &table);
        let year = table.column_index("Year").unwrap();
        let city = table.column_index("City").unwrap();
        // Winner: the London cell of row 7.
        assert_eq!(chain.output, BTreeSet::from([CellRef::new(7, city)]));
        // Execution includes the Year cells of every candidate row (3, 6, 7).
        for row in [3usize, 6, 7] {
            assert!(
                chain.execution.contains(&CellRef::new(row, year)),
                "missing year of row {row}"
            );
        }
        assert!(chain.is_well_formed());
    }

    #[test]
    fn last_row_provenance_restricts_to_selected_record() {
        let table = samples::usl_league();
        let chain = chain_for("R[Year].last(League.\"USL A-League\")", &table);
        let year = table.column_index("Year").unwrap();
        // Output is the Year cell of the last USL A-League row (row 2, 2004).
        assert_eq!(chain.output, BTreeSet::from([CellRef::new(2, year)]));
        assert!(chain.is_well_formed());
    }

    #[test]
    fn queries_with_identical_highlights_can_differ() {
        // §5.2: "more than 4" and "at least 5 and less than 17" highlight the
        // same cells even though the formulas differ.
        let table = samples::squad();
        let a = chain_for("Games.(> 4)", &table);
        let b = chain_for("(Games.(>= 5) and Games.(< 17))", &table);
        assert_eq!(a.output, b.output);
        assert_eq!(a.columns, b.columns);
    }

    #[test]
    fn all_paper_operators_produce_well_formed_chains() {
        let olympics = samples::olympics();
        let wrecks = samples::shipwrecks();
        let cases: Vec<(&str, &Table)> = vec![
            ("City.Athens", &olympics),
            ("R[Year].City.Athens", &olympics),
            ("R[Year].Prev.City.Athens", &olympics),
            ("R[Year].R[Prev].City.Athens", &olympics),
            ("sum(R[Year].City.Athens)", &olympics),
            ("sub(R[Year].City.London, R[Year].City.Beijing)", &olympics),
            ("sub(count(City.Athens), count(City.London))", &olympics),
            ("(Country.China or Country.Greece)", &olympics),
            ("(City.London and Country.UK)", &olympics),
            ("argmax(Rows, Year)", &olympics),
            ("R[Year].argmax(City.Athens, Index)", &olympics),
            ("most_common((Athens or London), City)", &olympics),
            ("compare_max((London or Beijing), Year, City)", &olympics),
            ("most_common(R[Lake].Rows, Lake)", &wrecks),
        ];
        for (text, table) in cases {
            let chain = chain_for(text, table);
            assert!(chain.is_well_formed(), "chain not well formed for {text}");
            assert!(!chain.columns.is_empty(), "no column provenance for {text}");
        }
    }
}
