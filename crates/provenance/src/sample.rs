//! Scaling highlights to large tables (§5.3).
//!
//! Highlights explain the *query*, not its full answer, so a large table can
//! be summarized by a handful of representative rows: one from `R_O` (rows
//! with colored cells), one from `R_E \ R_O` (rows with framed cells only)
//! and one from `R_C \ R_E` (rows only lit). Queries computing an arithmetic
//! difference keep two rows from `R_O`, one per subtracted value, exactly as
//! in Figure 7. Sampled rows keep their original table order.

use wtq_dcs::Formula;
use wtq_table::{RecordIdx, Table, TableBuilder};

use crate::highlight::Highlights;
use crate::model::ProvenanceChain;

/// A sampled view of a highlighted table.
#[derive(Debug, Clone)]
pub struct SampledHighlights {
    /// The shrunken table containing only the sampled rows.
    pub table: Table,
    /// Highlights re-indexed against the shrunken table.
    pub highlights: Highlights,
    /// For each row of the shrunken table, the record index it came from in
    /// the original table.
    pub source_records: Vec<RecordIdx>,
}

/// Maximum number of rows a sampled view keeps (three provenance levels plus
/// one extra row for difference queries).
pub const MAX_SAMPLED_ROWS: usize = 4;

/// Sample at most [`MAX_SAMPLED_ROWS`] representative rows from a highlighted
/// table (§5.3). Returns the full table unchanged when it is already small
/// (fewer rows than the sample would contain).
pub fn sample_highlights(
    formula: &Formula,
    table: &Table,
    highlights: &Highlights,
) -> SampledHighlights {
    let output_records = highlights.output_records();
    let execution_records = highlights.execution_records();
    let column_records = highlights.column_records();

    let mut selected: Vec<RecordIdx> = Vec::new();
    // One record from R_O — or two for difference queries, one per operand.
    if is_difference(formula) {
        selected.extend(output_records.iter().take(2).copied());
    } else {
        selected.extend(output_records.first().copied());
    }
    // One record from R_E \ R_O.
    if let Some(record) = execution_records
        .iter()
        .find(|r| !selected.contains(r) && !output_records.contains(r))
    {
        selected.push(*record);
    }
    // One record from R_C \ R_E.
    if let Some(record) = column_records
        .iter()
        .find(|r| !selected.contains(r) && !execution_records.contains(r))
    {
        selected.push(*record);
    }
    // Degenerate queries (everything colored, or nothing highlighted): fall
    // back to the first rows so the sample is never empty.
    if selected.is_empty() {
        selected.extend(table.record_indices().take(MAX_SAMPLED_ROWS.min(3)));
    }
    selected.sort_unstable();
    selected.dedup();

    if selected.len() >= table.num_records() {
        return SampledHighlights {
            table: table.clone(),
            highlights: highlights.clone(),
            source_records: table.record_indices().collect(),
        };
    }

    let sampled_table = project_rows(table, &selected);
    let sampled_chain = reindex_chain(&highlights.chain, &selected);
    let sampled_highlights = Highlights::from_chain(sampled_chain, &sampled_table);
    SampledHighlights {
        table: sampled_table,
        highlights: sampled_highlights,
        source_records: selected,
    }
}

fn is_difference(formula: &Formula) -> bool {
    matches!(formula, Formula::Sub(_, _))
}

fn project_rows(table: &Table, records: &[RecordIdx]) -> Table {
    let mut builder =
        TableBuilder::new(table.name()).columns(table.columns().iter().map(|c| c.name.clone()));
    for &record in records {
        let row = table.record_values(record).expect("sampled record exists");
        builder = builder.row(row).expect("arity preserved");
    }
    builder
        .build()
        .expect("sampled table has the original columns")
}

fn reindex_chain(chain: &ProvenanceChain, records: &[RecordIdx]) -> ProvenanceChain {
    let position = |record: RecordIdx| records.iter().position(|&r| r == record);
    let remap = |cells: &std::collections::BTreeSet<wtq_table::CellRef>| {
        cells
            .iter()
            .filter_map(|cell| {
                position(cell.record).map(|row| wtq_table::CellRef::new(row, cell.column))
            })
            .collect()
    };
    ProvenanceChain {
        output: remap(&chain.output),
        execution: remap(&chain.execution),
        columns: remap(&chain.columns),
        markers: chain.markers.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::highlight::HighlightKind;
    use wtq_dcs::parse_formula;
    use wtq_table::{samples, CellRef};

    fn sampled(text: &str, table: &Table) -> SampledHighlights {
        let formula = parse_formula(text).unwrap();
        let highlights = Highlights::compute(&formula, table).unwrap();
        sample_highlights(&formula, table, &highlights)
    }

    #[test]
    fn figure_seven_keeps_three_representative_rows() {
        // "What was the highest growth rate of Madagascar in the 1980s?" over
        // a large table: the sample keeps an output row, an examined row and
        // a lit-only row.
        let table = samples::growth_rate();
        let s = sampled("max(R[\"Growth Rate\"].Country.Madagascar)", &table);
        assert!(s.table.num_records() <= MAX_SAMPLED_ROWS);
        assert!(s.table.num_records() >= 2);
        // The sampled rows preserve original order.
        let mut sorted = s.source_records.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, s.source_records);
        // At least one colored cell survives the sampling.
        let growth = s.table.column_index("Growth Rate").unwrap();
        let colored = (0..s.table.num_records())
            .any(|row| s.highlights.kind(CellRef::new(row, growth)) == HighlightKind::Colored);
        assert!(colored);
    }

    #[test]
    fn difference_queries_keep_two_output_rows() {
        let table = samples::medals();
        let s = sampled("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)", &table);
        let total = s.table.column_index("Total").unwrap();
        let colored_rows: Vec<usize> = (0..s.table.num_records())
            .filter(|&row| s.highlights.kind(CellRef::new(row, total)) == HighlightKind::Colored)
            .collect();
        assert_eq!(
            colored_rows.len(),
            2,
            "both subtracted values must be shown"
        );
    }

    #[test]
    fn small_tables_pass_through_unchanged() {
        let table =
            wtq_table::Table::from_rows("tiny", &["A", "B"], &[vec!["1", "x"], vec!["2", "y"]])
                .unwrap();
        let s = sampled("R[B].A.1", &table);
        assert_eq!(s.table.num_records(), table.num_records());
        assert_eq!(s.source_records, vec![0, 1]);
    }

    #[test]
    fn sampled_highlight_classes_match_original_rows() {
        let table = samples::growth_rate();
        let formula = parse_formula("max(R[\"Growth Rate\"].Country.Madagascar)").unwrap();
        let full = Highlights::compute(&formula, &table).unwrap();
        let s = sample_highlights(&formula, &table, &full);
        for (row, &source) in s.source_records.iter().enumerate() {
            for column in 0..table.num_columns() {
                assert_eq!(
                    s.highlights.kind(CellRef::new(row, column)),
                    full.kind(CellRef::new(source, column)),
                    "row {row} column {column} classification changed"
                );
            }
        }
    }

    #[test]
    fn queries_without_highlights_still_produce_a_sample() {
        let table = samples::growth_rate();
        // A join that matches nothing: no colored/framed rows, only lit cells.
        let s = sampled("Country.Atlantis", &table);
        assert!(s.table.num_records() >= 1);
    }
}
