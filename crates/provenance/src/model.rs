//! The multilevel cell-based provenance chain (Definitions 4.1 and 4.2).

use std::collections::BTreeSet;

use wtq_dcs::AggregateOp;
use wtq_table::CellRef;

/// A non-cell element of a provenance set: the aggregate function or
/// arithmetic operation applied by the query (the `OP` of Equation 1). The
/// paper's `P_O` may contain aggregate functions alongside cells; markers are
/// what the highlight procedure attaches to column headers
/// (`MarkColumnHeader` in Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpMarker {
    /// An aggregate function (`count`, `max`, `min`, `sum`, `avg`).
    Aggregate(AggregateOp),
    /// The arithmetic difference of two values (`sub`).
    Difference,
}

impl OpMarker {
    /// Header label, e.g. `MAX` or `COUNT`, as drawn in Figures 1 and 16.
    pub fn label(self) -> String {
        match self {
            OpMarker::Aggregate(op) => op.name().to_ascii_uppercase(),
            OpMarker::Difference => "DIFF".to_string(),
        }
    }
}

/// The three-level provenance chain `(P_O, P_E, P_C)` of Definition 4.2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceChain {
    /// `P_O`: cells output by the query (or feeding its aggregate result).
    pub output: BTreeSet<CellRef>,
    /// `P_E`: cells examined during execution (union of `P_O` over all
    /// sub-formulas).
    pub execution: BTreeSet<CellRef>,
    /// `P_C`: every cell of every column the query projects or aggregates on.
    pub columns: BTreeSet<CellRef>,
    /// Aggregate / arithmetic markers contained in `P_O`, keyed by the column
    /// they apply to (`None` when the operation has no single column, e.g. a
    /// difference of counts over the same column is still attributed to it).
    pub markers: Vec<(Option<usize>, OpMarker)>,
}

impl ProvenanceChain {
    /// An empty chain.
    pub fn new() -> Self {
        ProvenanceChain::default()
    }

    /// Whether the chain satisfies the hierarchy `P_O ⊆ P_E ⊆ P_C` required
    /// by Definition 4.1. [`crate::rules::provenance`] always produces chains
    /// for which this holds; the check is exposed for tests and debugging.
    pub fn is_well_formed(&self) -> bool {
        self.output.is_subset(&self.execution) && self.execution.is_subset(&self.columns)
    }

    /// Cells that are examined but not part of the output (`P_E \ P_O`),
    /// i.e. the cells that will be framed but not colored.
    pub fn examined_only(&self) -> BTreeSet<CellRef> {
        self.execution.difference(&self.output).copied().collect()
    }

    /// Cells that belong to a projected column but were not examined
    /// (`P_C \ P_E`), i.e. the cells that will be lit only.
    pub fn column_only(&self) -> BTreeSet<CellRef> {
        self.columns.difference(&self.execution).copied().collect()
    }

    /// Total number of cells across all three levels (size of `P_C`, since
    /// the levels are nested).
    pub fn touched_cells(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(record: usize, column: usize) -> CellRef {
        CellRef::new(record, column)
    }

    #[test]
    fn well_formedness_checks_the_chain() {
        let mut chain = ProvenanceChain::new();
        chain.output.insert(cell(0, 0));
        chain.execution.insert(cell(0, 0));
        chain.execution.insert(cell(1, 0));
        chain.columns.extend([cell(0, 0), cell(1, 0), cell(2, 0)]);
        assert!(chain.is_well_formed());
        assert_eq!(chain.examined_only(), BTreeSet::from([cell(1, 0)]));
        assert_eq!(chain.column_only(), BTreeSet::from([cell(2, 0)]));
        assert_eq!(chain.touched_cells(), 3);

        chain.output.insert(cell(9, 9));
        assert!(!chain.is_well_formed());
    }

    #[test]
    fn marker_labels() {
        assert_eq!(OpMarker::Aggregate(AggregateOp::Max).label(), "MAX");
        assert_eq!(OpMarker::Aggregate(AggregateOp::Count).label(), "COUNT");
        assert_eq!(OpMarker::Difference.label(), "DIFF");
    }
}
