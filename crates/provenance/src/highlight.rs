//! Provenance-based highlights (Algorithm 1, §5.2).
//!
//! The `Highlight(Q, T, output)` procedure divides the table's cells into
//! four categories based on the multilevel provenance chain:
//!
//! * **colored** cells are `P_O(Q, T)` — the output of the query or the cells
//!   feeding its aggregate result,
//! * **framed** cells are `P_E(Q, T)` — cells examined during execution,
//! * **lit** cells are `P_C(Q, T)` — cells of columns projected or aggregated
//!   on by the query,
//! * all other cells are unrelated and receive no highlight.
//!
//! Aggregate functions are marked on the header of the column they apply to
//! (the `MAX(Year)` header of Figure 1).

use std::collections::BTreeMap;

use wtq_dcs::Formula;
use wtq_table::{CellRef, Table};

use crate::model::{OpMarker, ProvenanceChain};
use crate::rules::provenance;

/// Visual treatment of one cell, ordered from strongest to weakest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HighlightKind {
    /// The cell is part of the query output (`P_O`).
    Colored,
    /// The cell was examined during execution (`P_E \ P_O`).
    Framed,
    /// The cell belongs to a projected / aggregated column (`P_C \ P_E`).
    Lit,
    /// The cell is unrelated to the query.
    None,
}

impl HighlightKind {
    /// Short label used by the plain-text renderer and the experiments
    /// binary.
    pub fn label(self) -> &'static str {
        match self {
            HighlightKind::Colored => "colored",
            HighlightKind::Framed => "framed",
            HighlightKind::Lit => "lit",
            HighlightKind::None => "plain",
        }
    }
}

/// The result of running Algorithm 1 on a query and table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Highlights {
    /// The underlying provenance chain.
    pub chain: ProvenanceChain,
    /// Aggregate / difference markers per column header.
    pub header_marks: BTreeMap<usize, Vec<OpMarker>>,
    num_records: usize,
    num_columns: usize,
}

impl Highlights {
    /// Run `Highlight(Q, T, output = true)`: compute the provenance chain and
    /// derive the per-cell highlight classification.
    pub fn compute(formula: &Formula, table: &Table) -> wtq_dcs::Result<Highlights> {
        let chain = provenance(formula, table)?;
        Ok(Highlights::from_chain(chain, table))
    }

    /// Build highlights from an already-computed provenance chain.
    pub fn from_chain(chain: ProvenanceChain, table: &Table) -> Highlights {
        let mut header_marks: BTreeMap<usize, Vec<OpMarker>> = BTreeMap::new();
        for (column, marker) in &chain.markers {
            if let Some(column) = column {
                let entry = header_marks.entry(*column).or_default();
                if !entry.contains(marker) {
                    entry.push(*marker);
                }
            }
        }
        Highlights {
            chain,
            header_marks,
            num_records: table.num_records(),
            num_columns: table.num_columns(),
        }
    }

    /// The highlight classification of one cell.
    pub fn kind(&self, cell: CellRef) -> HighlightKind {
        if self.chain.output.contains(&cell) {
            HighlightKind::Colored
        } else if self.chain.execution.contains(&cell) {
            HighlightKind::Framed
        } else if self.chain.columns.contains(&cell) {
            HighlightKind::Lit
        } else {
            HighlightKind::None
        }
    }

    /// The header decoration of a column, e.g. `MAX(Year)` for Figure 1.
    pub fn header_label(&self, table: &Table, column: usize) -> String {
        let name = table.column_name(column);
        match self.header_marks.get(&column) {
            Some(marks) if !marks.is_empty() => {
                let prefix: Vec<String> = marks.iter().map(|m| m.label()).collect();
                format!("{}({})", prefix.join("+"), name)
            }
            _ => name.to_string(),
        }
    }

    /// Number of cells in each class `(colored, framed-only, lit-only)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        (
            self.chain.output.len(),
            self.chain.examined_only().len(),
            self.chain.column_only().len(),
        )
    }

    /// Records (row indices) containing at least one colored cell (`R_O` of
    /// §5.3).
    pub fn output_records(&self) -> Vec<usize> {
        records_of(&self.chain.output)
    }

    /// Records containing at least one framed-or-colored cell (`R_E`).
    pub fn execution_records(&self) -> Vec<usize> {
        records_of(&self.chain.execution)
    }

    /// Records containing at least one lit cell (`R_C`).
    pub fn column_records(&self) -> Vec<usize> {
        records_of(&self.chain.columns)
    }

    /// The table shape these highlights were computed against.
    pub fn shape(&self) -> (usize, usize) {
        (self.num_records, self.num_columns)
    }

    /// Whether two highlight maps are visually identical (same classification
    /// for every cell and same header marks) — the §5.2 observation that
    /// different queries may share highlights.
    pub fn visually_equal(&self, other: &Highlights) -> bool {
        self.shape() == other.shape()
            && self.header_marks == other.header_marks
            && (0..self.num_records).all(|record| {
                (0..self.num_columns).all(|column| {
                    let cell = CellRef::new(record, column);
                    self.kind(cell) == other.kind(cell)
                })
            })
    }
}

fn records_of(cells: &std::collections::BTreeSet<CellRef>) -> Vec<usize> {
    let mut records: Vec<usize> = cells.iter().map(|cell| cell.record).collect();
    records.sort_unstable();
    records.dedup();
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtq_dcs::parse_formula;
    use wtq_table::samples;

    fn highlights(text: &str, table: &Table) -> Highlights {
        Highlights::compute(&parse_formula(text).unwrap(), table).unwrap()
    }

    #[test]
    fn figure_one_highlights() {
        let table = samples::olympics();
        let h = highlights("max(R[Year].Country.Greece)", &table);
        let year = table.column_index("Year").unwrap();
        let country = table.column_index("Country").unwrap();
        let city = table.column_index("City").unwrap();
        // The Year cells of the Greece rows feed the max: colored.
        assert_eq!(h.kind(CellRef::new(0, year)), HighlightKind::Colored);
        assert_eq!(h.kind(CellRef::new(5, year)), HighlightKind::Colored);
        // The Greece cells themselves were examined: framed.
        assert_eq!(h.kind(CellRef::new(0, country)), HighlightKind::Framed);
        assert_eq!(h.kind(CellRef::new(5, country)), HighlightKind::Framed);
        // Other cells of the two mentioned columns are lit.
        assert_eq!(h.kind(CellRef::new(1, year)), HighlightKind::Lit);
        assert_eq!(h.kind(CellRef::new(1, country)), HighlightKind::Lit);
        // The City column is unrelated.
        assert_eq!(h.kind(CellRef::new(0, city)), HighlightKind::None);
        // The Year header carries the MAX marker.
        assert_eq!(h.header_label(&table, year), "MAX(Year)");
        assert_eq!(h.header_label(&table, city), "City");
    }

    #[test]
    fn figure_six_class_counts() {
        let table = samples::medals();
        let h = highlights("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)", &table);
        let (colored, framed, lit) = h.class_counts();
        assert_eq!(colored, 2); // 130 and 20
        assert_eq!(framed, 2); // Fiji and Tonga
        assert_eq!(lit, 2 * table.num_records() - 4);
    }

    #[test]
    fn identical_highlights_for_different_queries() {
        // §5.2: different formulas can share a highlight map ("more than 4"
        // vs "at least 5"); the user must fall back to the utterances to tell
        // them apart.
        let table = samples::squad();
        let a = highlights("Games.(> 4)", &table);
        let b = highlights("Games.(>= 5)", &table);
        assert!(a.visually_equal(&b));
        // A genuinely different query does not.
        let c = highlights("Games.(< 3)", &table);
        assert!(!a.visually_equal(&c));
        // The paper's second phrasing ("at least 5 and also less than 17")
        // keeps the same colored cells and lit columns; only the framed set
        // may grow with the extra examined comparison.
        let d = highlights("(Games.(>= 5) and Games.(< 17))", &table);
        assert_eq!(a.chain.output, d.chain.output);
        assert_eq!(a.chain.columns, d.chain.columns);
    }

    #[test]
    fn record_sets_follow_the_chain() {
        let table = samples::olympics();
        let h = highlights("max(R[Year].Country.Greece)", &table);
        assert_eq!(h.output_records(), vec![0, 5]);
        assert_eq!(h.execution_records(), vec![0, 5]);
        assert_eq!(h.column_records().len(), table.num_records());
    }

    #[test]
    fn count_marks_the_counted_column() {
        // Figure 16: the number of rows where City is Athens.
        let table = samples::olympics();
        let h = highlights("count(City.Athens)", &table);
        let city = table.column_index("City").unwrap();
        assert_eq!(h.header_label(&table, city), "COUNT(City)");
    }

    #[test]
    fn highlight_kind_ordering_and_labels() {
        assert!(HighlightKind::Colored < HighlightKind::Framed);
        assert!(HighlightKind::Framed < HighlightKind::Lit);
        assert!(HighlightKind::Lit < HighlightKind::None);
        assert_eq!(HighlightKind::Colored.label(), "colored");
        assert_eq!(HighlightKind::None.label(), "plain");
    }
}
