//! # wtq-provenance
//!
//! The multilevel cell-based provenance model of *Explaining Queries over Web
//! Tables to Non-Experts* (§4) and the provenance-based highlights built on
//! top of it (§5.2, Algorithm 1), including the large-table sampling of §5.3.
//!
//! For a query `Q` over a table `T` the model defines three cell sets:
//!
//! * `P_O(Q, T)` — the cells output by `Q(T)` (plus the aggregate function
//!   itself when the result is an aggregate / arithmetic value),
//! * `P_E(Q, T)` — the cells examined during execution: the union of `P_O`
//!   over every sub-formula of `Q`,
//! * `P_C(Q, T)` — every cell of every column that `Q` projects, selects on
//!   or aggregates.
//!
//! These form a chain `P_O ⊆ P_E ⊆ P_C` (Definition 4.1/4.2), and each level
//! maps to one visual treatment in the highlights: colored, framed and lit
//! cells respectively (all other cells are unhighlighted).
//!
//! * [`rules`] computes the three sets compositionally, one rule per lambda
//!   DCS operator (Table 10's provenance column),
//! * [`highlight`] is Algorithm 1: it turns the provenance chain into a
//!   per-cell [`highlight::HighlightKind`] map plus aggregate markers on
//!   column headers,
//! * [`render`] draws highlighted tables as plain text, ANSI-colored text or
//!   HTML,
//! * [`sample`] shrinks a highlighted table to a few representative rows for
//!   display over large tables (§5.3).

pub mod highlight;
pub mod model;
pub mod render;
pub mod rules;
pub mod sample;

pub use highlight::{HighlightKind, Highlights};
pub use model::{OpMarker, ProvenanceChain};
pub use rules::provenance;
pub use sample::sample_highlights;
