//! Property-based tests for the provenance model.

use proptest::prelude::*;
use wtq_dcs::{AggregateOp, CompareOp, Formula, SuperlativeOp};
use wtq_provenance::{provenance, Highlights};
use wtq_table::{samples, CellRef, Value};

fn column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Year".to_string()),
        Just("Country".to_string()),
        Just("City".to_string())
    ]
}

fn constant() -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::Const(Value::str("Greece"))),
        Just(Formula::Const(Value::str("Athens"))),
        Just(Formula::Const(Value::str("London"))),
        Just(Formula::Const(Value::str("Missing"))),
        (1890i32..2020).prop_map(|y| Formula::Const(Value::num(f64::from(y)))),
    ]
}

fn records_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::AllRecords),
        (column(), constant()).prop_map(|(column, values)| Formula::Join {
            column,
            values: Box::new(values)
        }),
        (any::<bool>(), 1890f64..2020f64).prop_map(|(gt, t)| Formula::CompareJoin {
            column: "Year".to_string(),
            op: if gt { CompareOp::Gt } else { CompareOp::Leq },
            value: Box::new(Formula::Const(Value::Num(t.round()))),
        }),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|r| Formula::Prev(Box::new(r))),
            inner.clone().prop_map(|r| Formula::Next(Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Intersect(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Union(Box::new(a), Box::new(b))),
            (inner.clone(), column(), any::<bool>()).prop_map(|(r, column, max)| {
                Formula::SuperlativeRecords {
                    op: if max {
                        SuperlativeOp::Argmax
                    } else {
                        SuperlativeOp::Argmin
                    },
                    records: Box::new(r),
                    column,
                }
            }),
            (inner, any::<bool>()).prop_map(|(r, max)| Formula::RecordIndexSuperlative {
                op: if max {
                    SuperlativeOp::Argmax
                } else {
                    SuperlativeOp::Argmin
                },
                records: Box::new(r),
            }),
        ]
    })
}

fn any_formula() -> impl Strategy<Value = Formula> {
    records_formula().prop_flat_map(|records| {
        let records2 = records.clone();
        prop_oneof![
            Just(records.clone()),
            column().prop_map(move |c| Formula::ColumnValues {
                column: c,
                records: Box::new(records.clone()),
            }),
            column().prop_map(move |c| Formula::Aggregate {
                op: AggregateOp::Count,
                sub: Box::new(Formula::ColumnValues {
                    column: c,
                    records: Box::new(records2.clone()),
                }),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Definition 4.1: the provenance sets always form the chain
    /// `P_O ⊆ P_E ⊆ P_C`, and every cell lies inside the table.
    #[test]
    fn provenance_chain_is_well_formed(formula in any_formula()) {
        let table = samples::olympics();
        if let Ok(chain) = provenance(&formula, &table) {
            prop_assert!(chain.is_well_formed());
            for cell in chain.columns.iter() {
                prop_assert!(cell.record < table.num_records());
                prop_assert!(cell.column < table.num_columns());
            }
        }
    }

    /// The highlight classification is consistent with the chain: colored
    /// cells come from P_O, framed from P_E, lit from P_C, and the class
    /// counts partition P_C.
    #[test]
    fn highlight_classes_partition_the_column_provenance(formula in any_formula()) {
        use wtq_provenance::HighlightKind;
        let table = samples::olympics();
        if let Ok(highlights) = Highlights::compute(&formula, &table) {
            let (colored, framed_only, lit_only) = highlights.class_counts();
            prop_assert_eq!(colored + framed_only + lit_only, highlights.chain.columns.len());
            for record in 0..table.num_records() {
                for column in 0..table.num_columns() {
                    let cell = CellRef::new(record, column);
                    match highlights.kind(cell) {
                        HighlightKind::Colored => prop_assert!(highlights.chain.output.contains(&cell)),
                        HighlightKind::Framed => {
                            prop_assert!(highlights.chain.execution.contains(&cell));
                            prop_assert!(!highlights.chain.output.contains(&cell));
                        }
                        HighlightKind::Lit => {
                            prop_assert!(highlights.chain.columns.contains(&cell));
                            prop_assert!(!highlights.chain.execution.contains(&cell));
                        }
                        HighlightKind::None => {
                            prop_assert!(!highlights.chain.columns.contains(&cell));
                        }
                    }
                }
            }
        }
    }

    /// Output provenance of a value-denoting query covers the traced cells of
    /// its denotation (the colored cells really are the answer's cells).
    #[test]
    fn output_provenance_covers_denotation_cells(records in records_formula()) {
        let table = samples::olympics();
        let formula = Formula::ColumnValues { column: "City".to_string(), records: Box::new(records) };
        if let (Ok(chain), Ok(denotation)) = (provenance(&formula, &table), wtq_dcs::eval(&formula, &table)) {
            for cell in denotation.traced_cells() {
                prop_assert!(chain.output.contains(&cell), "missing output cell {cell}");
            }
        }
    }
}
