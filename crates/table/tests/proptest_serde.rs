//! Wire-format compatibility suite for the columnar [`Table`] storage.
//!
//! The table's internal representation is typed column vectors, but its
//! serde encoding must stay **byte-identical** to the legacy row-major
//! format that `#[derive(Serialize)]` produced when the struct stored
//! `rows: Vec<Vec<Value>>` — otherwise every stored dataset, bench fixture
//! and wire peer breaks. These properties pin that down:
//!
//! * the serialized JSON equals, byte for byte, a hand-built legacy
//!   encoding (`{"name": …, "columns": […], "rows": [[…]]}`) materialized
//!   row-major from the accessor API, and
//! * deserializing re-creates an equal table whose cells are bit-exact
//!   (including the empty-string nulls of numeric columns).

use proptest::prelude::*;
use wtq_table::{Table, TableBuilder, Value};

/// Serialize an already-built [`serde::Value`] tree as-is.
struct Raw(serde::Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// Cell text spanning every column layout the storage selects: repeated
/// category strings (dictionary), numbers and empties (f64 + null bitmap),
/// full and year-only dates, and free text (mixed).
fn cell_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Greece".to_string()),
        Just("Athens".to_string()),
        Just(String::new()),
        (0i32..500).prop_map(|n| n.to_string()),
        (0u32..4000).prop_map(|n| format!("{}.{:02}", n / 100, n % 100)),
        (1900i32..2020).prop_map(|y| y.to_string()),
        (1900i32..2020).prop_map(|y| format!("June {}, {}", (y % 27) + 1, y)),
        proptest::string::string_regex("[ -~&&[^\"\\\\]]{0,10}").expect("valid regex"),
    ]
}

/// Random tables over the full layout space: 1–6 columns, 0–14 rows.
fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..=6, 0usize..=14).prop_flat_map(|(cols, rows)| {
        let header: Vec<String> = (0..cols).map(|i| format!("Col{i}")).collect();
        proptest::collection::vec(proptest::collection::vec(cell_text(), cols), rows).prop_map(
            move |rows| {
                let mut builder = TableBuilder::new("serde").columns(header.clone());
                for row in &rows {
                    builder = builder.row_text(row).expect("arity matches");
                }
                builder.build().expect("non-empty header")
            },
        )
    })
}

/// The legacy derive's encoding, built by hand from the accessor API:
/// a field map in declaration order with row-major cell values.
fn legacy_encoding(table: &Table) -> serde::Value {
    use serde::Serialize;
    let rows: Vec<Vec<Value>> = table
        .record_indices()
        .map(|r| table.record_values(r).expect("record in range"))
        .collect();
    serde::Value::Map(vec![
        ("name".to_string(), table.name().to_value()),
        ("columns".to_string(), table.columns().to_vec().to_value()),
        ("rows".to_string(), rows.to_value()),
    ])
}

proptest! {
    /// The columnar table serializes to exactly the bytes of the legacy
    /// row-major format.
    #[test]
    fn wire_format_is_byte_identical_to_legacy(table in table_strategy()) {
        let columnar = serde_json::to_string(&table).expect("table serializes");
        let legacy = serde_json::to_string(&Raw(legacy_encoding(&table)))
            .expect("legacy value serializes");
        prop_assert_eq!(columnar, legacy);
    }

    /// Round trip: deserializing the wire bytes rebuilds an equal table
    /// with bit-exact cells, typed views intact.
    #[test]
    fn wire_roundtrip_is_bit_exact(table in table_strategy()) {
        let json = serde_json::to_string(&table).expect("table serializes");
        let back: Table = serde_json::from_str(&json).expect("table parses");
        prop_assert_eq!(&back, &table);
        for r in table.record_indices() {
            let original = table.record_values(r).expect("in range");
            let reparsed = back.record_values(r).expect("in range");
            for (a, b) in original.iter().zip(&reparsed) {
                // `==` on Value tolerates close numerics; the wire format
                // must be stricter (bit-exact numbers, byte-exact strings).
                match (a, b) {
                    (Value::Num(x), Value::Num(y)) => {
                        prop_assert_eq!(x.to_bits(), y.to_bits())
                    }
                    (Value::Str(x), Value::Str(y)) => prop_assert_eq!(x, y),
                    (x, y) => prop_assert_eq!(x, y),
                }
            }
        }
        // Re-serializing produces the same bytes again (stable fixpoint).
        prop_assert_eq!(serde_json::to_string(&back).expect("serializes"), json);
    }
}
