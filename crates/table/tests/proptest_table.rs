//! Property-based tests for the table data model.

use proptest::prelude::*;
use wtq_table::csv::{read_table, write_table, Delimiter};
use wtq_table::{KnowledgeBase, Table, TableBuilder, Value};

/// Strategy producing printable cell text without control characters.
fn cell_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~&&[^\"]]{0,12}").expect("valid regex")
}

/// Strategy producing small tables (1–6 columns, 0–12 rows) of text cells.
fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..=6, 0usize..=12).prop_flat_map(|(cols, rows)| {
        let header: Vec<String> = (0..cols).map(|i| format!("Col{i}")).collect();
        proptest::collection::vec(proptest::collection::vec(cell_text(), cols), rows).prop_map(
            move |rows| {
                let mut builder = TableBuilder::new("prop").columns(header.clone());
                for row in &rows {
                    builder = builder.row_text(row).expect("arity matches");
                }
                builder.build().expect("non-empty header")
            },
        )
    })
}

proptest! {
    /// Value parsing never panics and display of the parsed value re-parses to
    /// an equal value (textual round-trip stability).
    #[test]
    fn value_parse_display_roundtrip(text in cell_text()) {
        let value = Value::parse(&text);
        let redisplayed = value.to_string();
        let reparsed = Value::parse(&redisplayed);
        prop_assert_eq!(value, reparsed);
    }

    /// Value ordering is a total order: antisymmetric and transitive on
    /// sampled triples.
    #[test]
    fn value_ordering_is_consistent(a in cell_text(), b in cell_text(), c in cell_text()) {
        let (a, b, c) = (Value::parse(&a), Value::parse(&b), Value::parse(&c));
        // Antisymmetry.
        if a < b {
            prop_assert!(b > a);
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Equality implies equal ordering.
        if a == b {
            prop_assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        }
    }

    /// CSV round trip preserves the table shape and the displayed cell text.
    #[test]
    fn csv_roundtrip(table in table_strategy()) {
        for delim in [Delimiter::Comma, Delimiter::Tab] {
            let text = write_table(&table, delim);
            let parsed = read_table("prop", &text, delim);
            // Tables whose trailing rows are entirely empty lose those rows to
            // blank-line skipping; skip that corner.
            if table.record_indices().all(|r| {
                table.record_values(r).unwrap().iter().any(|v| !v.to_string().is_empty())
            }) {
                let parsed = parsed.expect("roundtrip parses");
                prop_assert_eq!(parsed.num_records(), table.num_records());
                prop_assert_eq!(parsed.num_columns(), table.num_columns());
                for r in table.record_indices() {
                    for c in 0..table.num_columns() {
                        let orig = table.value_at(r, c).unwrap();
                        let round = parsed.value_at(r, c).unwrap();
                        prop_assert_eq!(
                            Value::parse(&orig.to_string()),
                            round.clone(),
                            "cell ({}, {}) changed", r, c
                        );
                    }
                }
            }
        }
    }

    /// The KB inverted index agrees with a direct table scan for every
    /// (column, value) pair present in the table.
    #[test]
    fn kb_join_matches_scan(table in table_strategy()) {
        let kb = KnowledgeBase::new(&table);
        for column in 0..table.num_columns() {
            for value in table.distinct_column_values(column) {
                let via_kb = kb.join(column, &value).to_vec();
                // Oracle: a direct per-row scan over the accessor API.
                let via_scan: Vec<usize> = table
                    .record_indices()
                    .filter(|&r| table.eq_at(r, column, &value))
                    .collect();
                prop_assert_eq!(&via_kb, &via_scan);
                // The columnar kernel agrees with both.
                prop_assert_eq!(table.filter_eq(column, &value), via_scan);
            }
        }
    }

    /// Prev/next pointers are mutually inverse wherever both are defined.
    #[test]
    fn prev_next_inverse(table in table_strategy()) {
        for record in table.record_indices() {
            if let Some(next) = table.next_record(record) {
                prop_assert_eq!(table.prev_record(next), Some(record));
            }
            if let Some(prev) = table.prev_record(record) {
                prop_assert_eq!(table.next_record(prev), Some(record));
            }
        }
    }
}
