//! # wtq-table
//!
//! Web table data model for the *Explaining Queries over Web Tables to
//! Non-Experts* reproduction (Berant et al., ICDE 2019, §3.1).
//!
//! A web table is a single relation whose records are ordered top-to-bottom.
//! Every record has a unique `Index` (0, 1, 2, …) and a `Prev` pointer to the
//! record above it. Cell values are strings, numbers or dates. The table can
//! also be viewed as a knowledge base `K ⊆ E × P × E`: the entity set `E`
//! contains all table cells and all table records, and the property set `P`
//! contains the column headers, each acting as a binary relation from a cell
//! value to the records in which it appears.
//!
//! The crate provides:
//!
//! * [`Value`] — typed cell values (string / number / date) with a total order
//!   used by superlatives and comparisons,
//! * [`Table`] and [`TableBuilder`] — the ordered relation itself, stored as
//!   typed column vectors ([`column::ColumnData`]: flat `f64`s + null bitmap,
//!   dictionary-encoded strings, packed date ordinals) behind an accessor
//!   API with batch kernels (`filter_eq` / `filter_in` / `filter_num` /
//!   `stats_sum|min|max`),
//! * [`CellRef`] — a (record, column) coordinate used by the provenance model,
//! * [`index::TableIndex`] — the indexed columnar view (inverted indexes,
//!   value-sorted permutations, sorted numeric projections, O(1) column-name
//!   lookup) built once per table and shared by every engine,
//! * [`kb::KnowledgeBase`] — the KB view over that index,
//! * [`csv`] — a small TSV/CSV reader and writer (no external dependency),
//! * [`catalog::Catalog`] — a named collection of tables,
//! * [`samples`] — the example tables used throughout the paper's figures.

pub mod catalog;
pub mod cell;
pub mod column;
pub mod csv;
pub mod error;
pub mod index;
pub mod kb;
pub mod samples;
pub mod table;
pub mod value;

pub use catalog::{Catalog, TableSummary};
pub use cell::CellRef;
pub use column::{DateColumn, DictColumn, DictId, F64Column};
pub use error::TableError;
pub use index::{CacheStats, ColumnIndex, IndexCache, TableIndex, DEFAULT_INDEX_CACHE_CAPACITY};
pub use kb::KnowledgeBase;
pub use table::{Column, ColumnType, RecordIdx, Table, TableBuilder};
pub use value::{Date, Value};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TableError>;
