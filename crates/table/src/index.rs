//! Indexed columnar view of a table, built once and queried many times.
//!
//! The candidate generator executes hundreds of lambda DCS formulas per
//! question and the SQL engine re-runs translated queries for cross
//! validation; both used to re-scan table rows for every join, comparison and
//! superlative. A [`TableIndex`] materializes, per column:
//!
//! * an **inverted index** (normalized value → sorted record list) answering
//!   `Column.value` joins and `WHERE Column = v` filters in O(1),
//! * a **value-sorted permutation** of the records answering superlatives
//!   (`argmax` / `argmin`) without scanning the whole record set,
//! * a **sorted numeric projection** (`(number, record)` pairs) answering
//!   range comparisons (`Games.(> 4)`) by binary search,
//!
//! plus a lowercase column-name map so `column_index` is a hash lookup
//! instead of a linear case-insensitive scan.
//!
//! The index holds no reference to the table, so it can be built once and
//! shared (e.g. behind an `Arc`) between the knowledge-base view, the lambda
//! DCS evaluator and the SQL engine. Tables are immutable after construction,
//! so an index never needs invalidation: it lives exactly as long as the
//! table it summarizes is in use.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::cell::CellRef;
use crate::table::{ColumnType, RecordIdx, Table};
use crate::value::Value;

/// Per-column indexes: inverted value index, value-sorted permutation and
/// sorted numeric projection.
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    column_type: ColumnType,
    by_value: HashMap<Value, Vec<RecordIdx>>,
    /// Records sorted ascending by their cell value (stable, so ties keep
    /// table order), built lazily on first superlative use (the sort keys
    /// allocate, and most columns are never a superlative key). `None` once
    /// built when the column contains a NaN numeric cell, which has no
    /// consistent position in the value order.
    value_order: OnceLock<Option<Vec<RecordIdx>>>,
    /// Whether a value order exists (no NaN cells); decided at build time.
    sortable: bool,
    /// `(number, record)` for every cell with numeric content (via
    /// [`Value::as_number`]), sorted ascending by number then record. NaN
    /// cells are excluded: no comparison operator ever matches them.
    numeric: Vec<(f64, RecordIdx)>,
}

impl ColumnIndex {
    /// Records whose cell in this column equals `value` (the `C.v` join),
    /// in ascending record order.
    pub fn records(&self, value: &Value) -> &[RecordIdx] {
        self.by_value.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct values in the column.
    pub fn num_distinct(&self) -> usize {
        self.by_value.len()
    }

    /// Iterate over `(value, records)` pairs in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (&Value, &Vec<RecordIdx>)> {
        self.by_value.iter()
    }

    /// The column's inferred type.
    pub fn column_type(&self) -> ColumnType {
        self.column_type
    }

    /// All `(number, record)` pairs of the column's numeric cells, sorted
    /// ascending by number.
    pub fn numeric_entries(&self) -> &[(f64, RecordIdx)] {
        &self.numeric
    }

    /// Numeric cells with `number < threshold` (or `<=` when `inclusive`),
    /// as a slice of the sorted numeric projection.
    pub fn numeric_below(&self, threshold: f64, inclusive: bool) -> &[(f64, RecordIdx)] {
        if threshold.is_nan() {
            return &[];
        }
        let cut = if inclusive {
            self.numeric.partition_point(|(n, _)| *n <= threshold)
        } else {
            self.numeric.partition_point(|(n, _)| *n < threshold)
        };
        &self.numeric[..cut]
    }

    /// Numeric cells with `number > threshold` (or `>=` when `inclusive`),
    /// as a slice of the sorted numeric projection.
    pub fn numeric_above(&self, threshold: f64, inclusive: bool) -> &[(f64, RecordIdx)] {
        if threshold.is_nan() {
            return &[];
        }
        let cut = if inclusive {
            self.numeric.partition_point(|(n, _)| *n < threshold)
        } else {
            self.numeric.partition_point(|(n, _)| *n <= threshold)
        };
        &self.numeric[cut..]
    }
}

/// The indexed columnar view of one table. See the module docs for what is
/// precomputed; build cost is `O(cells · log rows)`, query cost is `O(1)` for
/// name and value lookups and `O(log rows)` for numeric ranges.
#[derive(Debug, Clone)]
pub struct TableIndex {
    by_name: HashMap<String, usize>,
    columns: Vec<ColumnIndex>,
    numeric_columns: Vec<usize>,
    text_columns: Vec<usize>,
    num_records: usize,
    /// The indexed table's precomputed shape fingerprint
    /// ([`Table::fingerprint`]), making [`TableIndex::describes`] a single
    /// integer comparison on every cache lookup.
    fingerprint: u64,
}

impl TableIndex {
    /// Build the index for `table` in one pass over its cells (plus one sort
    /// per column).
    pub fn new(table: &Table) -> Self {
        let by_name = table
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.to_ascii_lowercase(), i))
            .collect();
        let columns: Vec<ColumnIndex> = (0..table.num_columns())
            .map(|column| build_column(table, column))
            .collect();
        let numeric_columns = (0..table.num_columns())
            .filter(|&c| matches!(table.column_type(c), ColumnType::Number | ColumnType::Date))
            .collect();
        let text_columns = (0..table.num_columns())
            .filter(|&c| matches!(table.column_type(c), ColumnType::Text | ColumnType::Mixed))
            .collect();
        TableIndex {
            by_name,
            columns,
            numeric_columns,
            text_columns,
            num_records: table.num_records(),
            fingerprint: table.fingerprint(),
        }
    }

    /// Index of the column with the given (case-insensitive) header — the
    /// O(1) counterpart of [`Table::column_index`].
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(&name.trim().to_ascii_lowercase()).copied()
    }

    /// Per-column indexes for `column`.
    pub fn column(&self, column: usize) -> &ColumnIndex {
        &self.columns[column]
    }

    /// Number of indexed columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of records in the indexed table.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Inferred type of `column` (mirrors [`Table::column_type`] without
    /// needing the table).
    pub fn column_type(&self, column: usize) -> ColumnType {
        self.columns[column].column_type
    }

    /// Columns whose dominant type is numeric or date — the columns eligible
    /// for aggregates, comparisons and superlative keys.
    pub fn numeric_columns(&self) -> &[usize] {
        &self.numeric_columns
    }

    /// Columns whose dominant type is text (or mixed) — the columns eligible
    /// for most-common-value questions.
    pub fn text_columns(&self) -> &[usize] {
        &self.text_columns
    }

    /// Whether this index plausibly describes `table`: same record count,
    /// column count and (case-normalized) headers, compared through the
    /// precomputed shape fingerprints — a single integer comparison, cheap
    /// enough for the thread-safe [`IndexCache`] to run on every lookup. It
    /// cannot detect a table that differs only in cell contents, so caches
    /// must still be scoped to one catalog.
    pub fn describes(&self, table: &Table) -> bool {
        self.fingerprint == table.fingerprint()
    }

    /// Records of `column` in ascending cell-value order (stable: ties keep
    /// table order), if the column's values admit a total order (they always
    /// do unless a cell holds a NaN number). Built on first use and
    /// memoized; `table` must be the table this index was built from.
    pub fn value_order(&self, table: &Table, column: usize) -> Option<&[RecordIdx]> {
        debug_assert_eq!(table.num_records(), self.num_records);
        let entry = &self.columns[column];
        entry
            .value_order
            .get_or_init(|| {
                entry.sortable.then(|| {
                    let mut order: Vec<RecordIdx> = (0..table.num_records()).collect();
                    // Sort by a precomputed key equivalent to `Value::cmp` —
                    // avoids per-comparison lowercase allocations.
                    order.sort_by_cached_key(|&record| {
                        SortKey::of(&table.value_at(record, column).expect("in range"))
                    });
                    order
                })
            })
            .as_deref()
    }

    /// Records whose cell in `column` equals `value`, ascending.
    pub fn records_with_value(&self, column: usize, value: &Value) -> &[RecordIdx] {
        self.columns[column].records(value)
    }

    /// Cells in `column` whose value equals `value`, ascending by record.
    pub fn matching_cells(&self, column: usize, value: &Value) -> Vec<CellRef> {
        self.records_with_value(column, value)
            .iter()
            .map(|&record| CellRef::new(record, column))
            .collect()
    }
}

fn build_column(table: &Table, column: usize) -> ColumnIndex {
    let mut by_value: HashMap<Value, Vec<RecordIdx>> = HashMap::new();
    let mut numeric: Vec<(f64, RecordIdx)> = Vec::new();
    let mut sortable = true;
    for record in table.record_indices() {
        let value = table
            .value_at(record, column)
            .expect("record index in range");
        if let Some(number) = value.as_number() {
            if number.is_nan() {
                sortable = false;
            } else {
                numeric.push((number, record));
            }
        }
        by_value.entry(value).or_default().push(record);
    }
    numeric.sort_by(|a, b| a.partial_cmp(b).expect("NaN keys excluded"));
    ColumnIndex {
        column_type: table.column_type(column),
        by_value,
        value_order: OnceLock::new(),
        sortable,
        numeric,
    }
}

/// Default number of tables an [`IndexCache`] retains before evicting the
/// least-recently-used entry.
pub const DEFAULT_INDEX_CACHE_CAPACITY: usize = 256;

/// Hit / miss / eviction counters of an [`IndexCache`], for instrumentation
/// of serving and training loops. Serializable so stats endpoints can embed
/// a snapshot directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from a cached index.
    pub hits: u64,
    /// Lookups that had to build (or rebuild) an index.
    pub misses: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
}

/// One cached index plus its LRU recency stamp. The stamp is an atomic so a
/// cache *hit* only needs the read lock — concurrent readers bump recency
/// without serializing on a write lock.
#[derive(Debug)]
struct CacheEntry {
    index: Arc<TableIndex>,
    last_used: AtomicU64,
}

/// Memoized per-table indexes, keyed by table name. Training, deployment and
/// serving loops parse many questions over a set of immutable tables;
/// holding one cache per catalog amortizes the index build across every
/// question on the same table. Table names are unique within a
/// [`crate::Catalog`] — use one cache per catalog.
///
/// The cache is **thread-safe** (`&self` everywhere, internally an
/// [`RwLock`]ed map): one instance can be shared by a pool of worker threads
/// answering questions concurrently, with per-table lazy builds and an LRU
/// capacity bound (default [`DEFAULT_INDEX_CACHE_CAPACITY`] tables) so
/// memory does not grow without limit under traffic over a large catalog.
/// Indexes are built *outside* the lock; if two threads race to index the
/// same table, one build is discarded — both threads end up sharing a single
/// `Arc`.
#[derive(Debug)]
pub struct IndexCache {
    by_table: RwLock<HashMap<String, CacheEntry>>,
    capacity: usize,
    /// Monotonic recency clock; higher = more recently used.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for IndexCache {
    fn default() -> Self {
        IndexCache::with_capacity(DEFAULT_INDEX_CACHE_CAPACITY)
    }
}

impl IndexCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// An empty cache retaining at most `capacity` tables (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        IndexCache {
            by_table: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The maximum number of tables retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shared index for `table`, building it on first request. A cached
    /// entry is reused only when its shape fingerprint matches `table`; a
    /// same-named but different table replaces the stale entry instead of
    /// silently answering from it. Inserting beyond capacity evicts the
    /// least-recently-used entry.
    pub fn get_or_build(&self, table: &Table) -> Arc<TableIndex> {
        if let Some(index) = self.lookup(table) {
            return index;
        }
        // Build outside any lock: index construction is the expensive part,
        // and holding the write lock across it would serialize every miss.
        let built = Arc::new(TableIndex::new(table));
        let mut map = self.by_table.write().expect("index cache poisoned");
        // Another thread may have finished the same build first; share its
        // entry so all sessions hold one Arc per table.
        if let Some(existing) = map.get(table.name()) {
            if existing.index.describes(table) {
                existing.last_used.store(self.tick(), Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return existing.index.clone();
            }
        }
        map.insert(
            table.name().to_string(),
            CacheEntry {
                index: built.clone(),
                last_used: AtomicU64::new(self.tick()),
            },
        );
        self.misses.fetch_add(1, Ordering::Relaxed);
        while map.len() > self.capacity {
            let oldest = map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(name, _)| name.clone())
                .expect("map over capacity is non-empty");
            map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        built
    }

    /// Read-lock fast path: a hit bumps the entry's recency stamp through
    /// its atomic, so concurrent hits never contend on the write lock.
    fn lookup(&self, table: &Table) -> Option<Arc<TableIndex>> {
        let map = self.by_table.read().expect("index cache poisoned");
        let entry = map.get(table.name())?;
        if !entry.index.describes(table) {
            return None;
        }
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.index.clone())
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Hit / miss / eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of tables currently cached.
    pub fn len(&self) -> usize {
        self.by_table.read().expect("index cache poisoned").len()
    }

    /// Whether no index is currently cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Precomputed sort key whose ordering is identical to [`Value::cmp`] for
/// NaN-free values: numbers and dates interleave by numeric magnitude (a
/// number sorting before an equal-year date), strings sort last by their
/// lowercase form.
#[derive(Debug, Clone, PartialEq)]
enum SortKey {
    /// `(magnitude, is_date, month, day)` — mirrors the `Num`/`Date` arms of
    /// `Value::cmp`, including the `then(Less)` tie-break that puts a number
    /// before the equal-year date.
    Numeric(f64, u8, u8, u8),
    /// Lowercased string; `Value::cmp` orders strings after all numerics.
    Text(String),
}

impl SortKey {
    fn of(value: &Value) -> SortKey {
        match value {
            Value::Num(n) => SortKey::Numeric(*n, 0, 0, 0),
            Value::Date(d) => SortKey::Numeric(
                f64::from(d.year),
                1,
                d.month.unwrap_or(0),
                d.day.unwrap_or(0),
            ),
            Value::Str(s) => SortKey::Text(s.to_ascii_lowercase()),
        }
    }
}

impl Eq for SortKey {}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (SortKey::Numeric(a, ad, am, aday), SortKey::Numeric(b, bd, bm, bday)) => a
                .partial_cmp(b)
                .expect("NaN keys excluded from sortable columns")
                .then_with(|| (ad, am, aday).cmp(&(bd, bm, bday))),
            (SortKey::Numeric(..), SortKey::Text(_)) => Ordering::Less,
            (SortKey::Text(_), SortKey::Numeric(..)) => Ordering::Greater,
            (SortKey::Text(a), SortKey::Text(b)) => a.cmp(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn olympics() -> Table {
        Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Beijing"],
                vec!["2012", "UK", "London"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn column_name_lookup_matches_table_scan() {
        let table = olympics();
        let index = TableIndex::new(&table);
        for query in ["Year", "country", " CITY ", "Missing", ""] {
            assert_eq!(index.column_index(query), table.column_index(query));
        }
    }

    #[test]
    fn inverted_index_matches_scan() {
        let table = olympics();
        let index = TableIndex::new(&table);
        for column in 0..table.num_columns() {
            for value in table.distinct_column_values(column) {
                assert_eq!(
                    index.records_with_value(column, &value),
                    table.filter_eq(column, &value).as_slice()
                );
            }
        }
        assert!(index
            .records_with_value(1, &Value::str("Atlantis"))
            .is_empty());
    }

    #[test]
    fn value_order_sorts_each_column() {
        let table = olympics();
        let index = TableIndex::new(&table);
        for column in 0..table.num_columns() {
            let order = index.value_order(&table, column).expect("no NaN cells");
            assert_eq!(order.len(), table.num_records());
            for pair in order.windows(2) {
                let a = table.value_at(pair[0], column).unwrap();
                let b = table.value_at(pair[1], column).unwrap();
                assert!(a.cmp(&b) != std::cmp::Ordering::Greater);
            }
        }
    }

    #[test]
    fn numeric_ranges_match_scan() {
        let table = olympics();
        let index = TableIndex::new(&table);
        let year = table.column_index("Year").unwrap();
        let col = index.column(year);
        assert_eq!(col.numeric_entries().len(), 5);
        // > 1900 → 2004, 2008, 2012.
        assert_eq!(col.numeric_above(1900.0, false).len(), 3);
        // >= 1900 → four records.
        assert_eq!(col.numeric_above(1900.0, true).len(), 4);
        // < 1900 → 1896 only; <= 1900 → two.
        assert_eq!(col.numeric_below(1900.0, false).len(), 1);
        assert_eq!(col.numeric_below(1900.0, true).len(), 2);
        // NaN thresholds match nothing.
        assert!(col.numeric_below(f64::NAN, true).is_empty());
        assert!(col.numeric_above(f64::NAN, true).is_empty());
    }

    #[test]
    fn column_type_partitions() {
        let table = olympics();
        let index = TableIndex::new(&table);
        assert_eq!(index.numeric_columns(), &[0]);
        assert_eq!(index.text_columns(), &[1, 2]);
        assert_eq!(index.column_type(0), ColumnType::Number);
        assert_eq!(index.column(2).column_type(), ColumnType::Text);
    }

    #[test]
    fn index_cache_reuses_matching_and_replaces_stale_entries() {
        let table = olympics();
        let cache = IndexCache::new();
        let first = cache.get_or_build(&table);
        let again = cache.get_or_build(&table);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        // A same-named table with a different shape must not reuse the entry.
        let other =
            Table::from_rows("olympics", &["Athlete", "Medal"], &[vec!["Louis", "Gold"]]).unwrap();
        let rebuilt = cache.get_or_build(&other);
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(rebuilt.num_columns(), 2);
        assert!(!cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    fn named(name: &str) -> Table {
        Table::from_rows(name, &["A"], &[vec!["1"]]).unwrap()
    }

    #[test]
    fn index_cache_evicts_least_recently_used_beyond_capacity() {
        let cache = IndexCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let (a, b, c) = (named("a"), named("b"), named("c"));
        cache.get_or_build(&a);
        cache.get_or_build(&b);
        // Touch `a` so `b` becomes the LRU entry, then overflow with `c`.
        cache.get_or_build(&a);
        cache.get_or_build(&c);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // `a` and `c` are still cached (hits); `b` was evicted (miss).
        let hits_before = cache.stats().hits;
        cache.get_or_build(&a);
        cache.get_or_build(&c);
        assert_eq!(cache.stats().hits, hits_before + 2);
        let misses_before = cache.stats().misses;
        cache.get_or_build(&b);
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn index_cache_capacity_is_clamped_to_one() {
        let cache = IndexCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.get_or_build(&named("a"));
        cache.get_or_build(&named("b"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn index_cache_is_shared_across_threads() {
        let cache = IndexCache::new();
        let tables: Vec<Table> = (0..4).map(|i| named(&format!("t{i}"))).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for table in &tables {
                        let index = cache.get_or_build(table);
                        assert!(index.describes(table));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4);
        let stats = cache.stats();
        // Every lookup either hit or missed; racing builds may each count a
        // miss, but the total accounts for all 16 lookups.
        assert_eq!(stats.hits + stats.misses, 16);
        assert!(stats.misses >= 4);
    }

    #[test]
    fn describes_matches_fingerprint_semantics() {
        let table = olympics();
        let index = TableIndex::new(&table);
        assert!(index.describes(&table));
        // Same shape, different cell contents: indistinguishable by design.
        let same_shape = Table::from_rows(
            "other",
            &["year", "COUNTRY", "City"],
            &[
                vec!["1", "x", "y"],
                vec!["2", "x", "y"],
                vec!["3", "x", "y"],
                vec!["4", "x", "y"],
                vec!["5", "x", "y"],
            ],
        )
        .unwrap();
        assert!(index.describes(&same_shape));
        // Different record count, headers or column order: rejected.
        let fewer_rows = Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[vec!["1896", "Greece", "Athens"]],
        )
        .unwrap();
        assert!(!index.describes(&fewer_rows));
        let renamed = Table::from_rows(
            "olympics",
            &["Year", "Country", "Town"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Beijing"],
                vec!["2012", "UK", "London"],
            ],
        )
        .unwrap();
        assert!(!index.describes(&renamed));
    }

    #[test]
    fn sort_key_order_is_identical_to_value_cmp() {
        let values: Vec<Value> = [
            "2004",
            "1896",
            "-3",
            "2004.5",
            "0",
            "Athens",
            "athens",
            "ZZ",
            "",
            "June 8, 2013",
            "October 1983",
            "2013-06-08",
            "1983-01-01",
            "1e300",
        ]
        .iter()
        .map(|t| Value::parse(t))
        .chain([Value::year(2004), Value::num(f64::INFINITY)])
        .collect();
        for a in &values {
            for b in &values {
                assert_eq!(
                    SortKey::of(a).cmp(&SortKey::of(b)),
                    a.cmp(b),
                    "keys diverge for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn nan_cells_disable_value_order_but_not_joins() {
        use crate::table::TableBuilder;
        let table = TableBuilder::new("nan")
            .column("A")
            .row(vec![Value::Num(1.0)])
            .unwrap()
            .row(vec![Value::Num(f64::NAN)])
            .unwrap()
            .row(vec![Value::Num(2.0)])
            .unwrap()
            .build()
            .unwrap();
        let index = TableIndex::new(&table);
        assert!(index.value_order(&table, 0).is_none());
        // NaN is excluded from the numeric projection (no comparison matches
        // it) but plain value joins still work for the finite cells.
        assert_eq!(index.column(0).numeric_entries().len(), 2);
        assert_eq!(index.records_with_value(0, &Value::num(2.0)), &[2]);
    }
}
