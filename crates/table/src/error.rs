//! Error type shared by the table crate.

use std::fmt;

/// Errors produced while building, loading or querying tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A column name was referenced that the table does not contain.
    UnknownColumn(String),
    /// A record index outside `0..table.num_records()` was referenced.
    RecordOutOfBounds { index: usize, len: usize },
    /// A row supplied to the builder had the wrong number of cells.
    RowArity {
        expected: usize,
        got: usize,
        row: usize,
    },
    /// The table has no columns or no header row.
    EmptyTable,
    /// Two columns share a name; column names must be unique within a table.
    DuplicateColumn(String),
    /// A value could not be parsed from its textual form.
    ValueParse(String),
    /// A CSV/TSV document was structurally malformed.
    Csv(String),
    /// A named table was not found in a catalog.
    UnknownTable(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            TableError::RecordOutOfBounds { index, len } => {
                write!(
                    f,
                    "record index {index} out of bounds for table with {len} records"
                )
            }
            TableError::RowArity { expected, got, row } => {
                write!(
                    f,
                    "row {row} has {got} cells but the table has {expected} columns"
                )
            }
            TableError::EmptyTable => write!(f, "table has no columns"),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            TableError::ValueParse(text) => write!(f, "cannot parse value from {text:?}"),
            TableError::Csv(msg) => write!(f, "malformed csv/tsv input: {msg}"),
            TableError::UnknownTable(name) => write!(f, "unknown table: {name:?}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let err = TableError::UnknownColumn("Year".into());
        assert_eq!(err.to_string(), "unknown column: \"Year\"");
        let err = TableError::RecordOutOfBounds { index: 9, len: 3 };
        assert!(err.to_string().contains("9"));
        assert!(err.to_string().contains("3"));
        let err = TableError::RowArity {
            expected: 4,
            got: 2,
            row: 7,
        };
        assert!(err.to_string().contains("row 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TableError>();
    }
}
