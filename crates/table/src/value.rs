//! Typed cell values.
//!
//! The paper's data model (§3.1) allows table cells to hold strings, numbers
//! or dates. Values need a *total* order because lambda DCS superlatives
//! (`argmax` / `argmin`) and comparisons (`>=`, `<`, …) are defined over them;
//! we order across types by a fixed type rank so that heterogeneous columns
//! still behave deterministically.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A calendar date with optional month / day precision (many web tables only
/// state a year, e.g. the Olympics table of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Date {
    pub year: i32,
    pub month: Option<u8>,
    pub day: Option<u8>,
}

impl Date {
    /// A date with year precision only.
    pub fn year(year: i32) -> Self {
        Date {
            year,
            month: None,
            day: None,
        }
    }

    /// A date with year and month precision.
    pub fn year_month(year: i32, month: u8) -> Self {
        Date {
            year,
            month: Some(month),
            day: None,
        }
    }

    /// A full year-month-day date.
    pub fn ymd(year: i32, month: u8, day: u8) -> Self {
        Date {
            year,
            month: Some(month),
            day: Some(day),
        }
    }

    /// A sortable key: missing month/day sort before present ones within the
    /// same year, which keeps year-only dates stable against full dates.
    fn sort_key(&self) -> (i32, u8, u8) {
        (self.year, self.month.unwrap_or(0), self.day.unwrap_or(0))
    }
}

impl PartialOrd for Date {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Date {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.month, self.day) {
            (Some(m), Some(d)) => write!(f, "{:04}-{:02}-{:02}", self.year, m, d),
            (Some(m), None) => write!(f, "{:04}-{:02}", self.year, m),
            _ => write!(f, "{}", self.year),
        }
    }
}

/// A typed cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Free text, e.g. `"Greece"`.
    Str(String),
    /// A numeric value, e.g. `2004` or `2.945`.
    Num(f64),
    /// A calendar date.
    Date(Date),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Construct a numeric value.
    pub fn num(n: impl Into<f64>) -> Self {
        Value::Num(n.into())
    }

    /// Construct a year-only date value.
    pub fn year(y: i32) -> Self {
        Value::Date(Date::year(y))
    }

    /// Construct a full date value.
    pub fn date(y: i32, m: u8, d: u8) -> Self {
        Value::Date(Date::ymd(y, m, d))
    }

    /// Whether this value is textual.
    pub fn is_str(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    /// Whether this value is numeric.
    pub fn is_num(&self) -> bool {
        matches!(self, Value::Num(_))
    }

    /// Whether this value is a date.
    pub fn is_date(&self) -> bool {
        matches!(self, Value::Date(_))
    }

    /// The numeric content usable for aggregation, if any.
    ///
    /// Dates expose their year so that `max(R[Year]...)`-style queries over a
    /// date-typed column still produce a sensible number, matching how the
    /// paper treats the `Year` column of Figure 1.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Date(d) => Some(f64::from(d.year)),
            Value::Str(s) => parse_number(s),
        }
    }

    /// The textual content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The date content, if this is a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Parse a textual cell into the most specific value type.
    ///
    /// Order of attempts: full date (`YYYY-MM-DD`, `Month D, YYYY`,
    /// `D Month YYYY`), number (with optional thousands separators, `%` and
    /// `$` markers), then plain string. Empty strings become empty `Str`.
    pub fn parse(text: &str) -> Value {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Value::Str(String::new());
        }
        if let Some(date) = parse_date(trimmed) {
            return Value::Date(date);
        }
        if let Some(num) = parse_number(trimmed) {
            return Value::Num(num);
        }
        Value::Str(trimmed.to_string())
    }

    /// Case-insensitive equality used when matching NL question tokens and
    /// lambda DCS constants against cell contents.
    pub fn matches_text(&self, text: &str) -> bool {
        match self {
            Value::Str(s) => s.eq_ignore_ascii_case(text.trim()),
            Value::Num(n) => parse_number(text)
                .map(|m| numbers_equal(*n, m))
                .unwrap_or(false),
            Value::Date(d) => {
                parse_date(text).map(|other| *d == other).unwrap_or(false)
                    || text.trim() == d.to_string()
            }
        }
    }

    /// Rank used to order values of different types: numbers < dates < strings.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Num(_) => 0,
            Value::Date(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

/// Two floats are considered equal if they agree to within 1e-9 relative
/// tolerance; table data never needs more precision than that and this keeps
/// answer comparison robust against formatting round-trips.
pub fn numbers_equal(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.eq_ignore_ascii_case(b),
            (Value::Num(a), Value::Num(b)) => numbers_equal(*a, *b),
            (Value::Date(a), Value::Date(b)) => a == b,
            // A year-only date and the same number compare equal; web tables
            // frequently mix the two representations in one column.
            (Value::Num(n), Value::Date(d)) | (Value::Date(d), Value::Num(n)) => {
                d.month.is_none() && d.day.is_none() && numbers_equal(*n, f64::from(d.year))
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash a canonical form compatible with the (case-insensitive,
        // cross-type) equality above. Caveat: the tolerance-based numeric
        // equality is not transitive, so no hash can be perfectly consistent
        // with it — two numbers within the 1e-9 relative tolerance hash
        // identically unless they straddle a 6-significant-digit rounding
        // boundary (a ~1e-3 sliver of the already-rare equal-but-not-
        // identical pairs). Hash-based containers therefore treat such
        // boundary pairs as distinct; every engine (the KB inverted index
        // since the seed, and the dedup/membership sets built on it) shares
        // this behavior, so they stay consistent with each other.
        match self {
            Value::Str(s) => {
                state.write_u8(2);
                for byte in s.bytes() {
                    state.write_u8(byte.to_ascii_lowercase());
                }
            }
            Value::Num(n) => {
                state.write_u8(0);
                state.write_u64(canonical_f64_bits(*n));
            }
            Value::Date(d) => {
                if d.month.is_none() && d.day.is_none() {
                    // Year-only dates hash like the equivalent number, to stay
                    // consistent with the PartialEq bridge above.
                    state.write_u8(0);
                    state.write_u64(canonical_f64_bits(f64::from(d.year)));
                } else {
                    state.write_u8(1);
                    state.write_i32(d.year);
                    state.write_u8(d.month.unwrap_or(0));
                    state.write_u8(d.day.unwrap_or(0));
                }
            }
        }
    }
}

fn canonical_f64_bits(n: f64) -> u64 {
    // Collapse -0.0 to 0.0 and round to a granularity compatible with
    // `numbers_equal`'s tolerance at every magnitude: that tolerance is
    // relative (1e-9 · scale, floored at scale 1), so the rounding must be
    // relative too — 6 significant digits for |n| > 1, 1e-6 absolute below
    // (a fixed absolute precision would split equal values once |n| grows
    // past ~1e3, giving equal-but-differently-hashed numbers).
    if !n.is_finite() {
        return n.to_bits();
    }
    let rounded = if n.abs() <= 1.0 {
        (n * 1e6).round() / 1e6
    } else {
        // |n| ∈ (1, f64::MAX] keeps the exponent (and so the scale) finite.
        let exponent = n.abs().log10().floor() as i32;
        let scale = 10f64.powi(5 - exponent);
        (n * scale).round() / scale
    };
    if rounded == 0.0 {
        0f64.to_bits()
    } else {
        rounded.to_bits()
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()),
            (Value::Num(n), Value::Date(d)) => n
                .partial_cmp(&f64::from(d.year))
                .unwrap_or(Ordering::Equal)
                .then(Ordering::Less),
            (Value::Date(d), Value::Num(n)) => f64::from(d.year)
                .partial_cmp(n)
                .unwrap_or(Ordering::Equal)
                .then(Ordering::Greater),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::parse(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::parse(&s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Num(f64::from(n))
    }
}

/// Parse a number out of text, tolerating `$`, `%`, thousands separators and
/// surrounding whitespace (`"$150,000"` → `150000.0`).
pub fn parse_number(text: &str) -> Option<f64> {
    let cleaned: String = text
        .trim()
        .trim_start_matches('$')
        .trim_end_matches('%')
        .chars()
        .filter(|c| *c != ',')
        .collect();
    if cleaned.is_empty() {
        return None;
    }
    // Reject strings like "4th" or "1896 Greece" that start with digits but
    // are not numbers.
    cleaned.parse::<f64>().ok().filter(|n| n.is_finite())
}

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

fn month_from_name(name: &str) -> Option<u8> {
    let lower = name.to_ascii_lowercase();
    MONTHS
        .iter()
        .position(|m| *m == lower || m.starts_with(&lower) && lower.len() >= 3)
        .map(|i| (i + 1) as u8)
}

/// Parse the date formats that show up in web tables:
/// `YYYY-MM-DD`, `YYYY/MM/DD`, `Month D, YYYY`, `D Month YYYY`, `Month YYYY`.
/// Bare 4-digit years are *not* parsed as dates here (they stay numbers),
/// because columns like `Year` are treated numerically by the paper's queries.
pub fn parse_date(text: &str) -> Option<Date> {
    let trimmed = text.trim();
    // ISO-like with separators.
    for sep in ['-', '/'] {
        let parts: Vec<&str> = trimmed.split(sep).collect();
        if parts.len() == 3 {
            if let (Ok(y), Ok(m), Ok(d)) = (
                parts[0].parse::<i32>(),
                parts[1].parse::<u8>(),
                parts[2].parse::<u8>(),
            ) {
                if (1000..=9999).contains(&y) && (1..=12).contains(&m) && (1..=31).contains(&d) {
                    return Some(Date::ymd(y, m, d));
                }
            }
        }
    }
    // "June 8, 2013" / "June 8 2013" / "8 June 2013" / "October 1983".
    let cleaned = trimmed.replace(',', " ");
    let tokens: Vec<&str> = cleaned.split_whitespace().collect();
    match tokens.as_slice() {
        [month, day, year] => {
            if let (Some(m), Ok(d), Ok(y)) = (
                month_from_name(month),
                day.parse::<u8>(),
                year.parse::<i32>(),
            ) {
                if (1..=31).contains(&d) {
                    return Some(Date::ymd(y, m, d));
                }
            }
            if let (Ok(d), Some(m), Ok(y)) = (
                month.parse::<u8>(),
                month_from_name(day),
                year.parse::<i32>(),
            ) {
                if (1..=31).contains(&d) {
                    return Some(Date::ymd(y, m, d));
                }
            }
            None
        }
        [month, year] => {
            let m = month_from_name(month)?;
            let y = year.parse::<i32>().ok()?;
            if (1000..=9999).contains(&y) {
                Some(Date {
                    year: y,
                    month: Some(m),
                    day: None,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_numbers_with_formatting() {
        assert_eq!(Value::parse("2004"), Value::num(2004.0));
        assert_eq!(Value::parse("$150,000"), Value::num(150_000.0));
        assert_eq!(Value::parse("2.945"), Value::num(2.945));
        assert_eq!(Value::parse("85%"), Value::num(85.0));
        assert_eq!(Value::parse("-17"), Value::num(-17.0));
    }

    #[test]
    fn parses_dates() {
        assert_eq!(Value::parse("June 8, 2013"), Value::date(2013, 6, 8));
        assert_eq!(Value::parse("8 June 2013"), Value::date(2013, 6, 8));
        assert_eq!(Value::parse("2013-06-08"), Value::date(2013, 6, 8));
        assert_eq!(
            Value::parse("October 1983"),
            Value::Date(Date {
                year: 1983,
                month: Some(10),
                day: None
            })
        );
    }

    #[test]
    fn bare_year_stays_numeric() {
        assert!(Value::parse("1896").is_num());
    }

    #[test]
    fn strings_fall_through() {
        assert_eq!(Value::parse("USL A-League"), Value::str("USL A-League"));
        assert_eq!(Value::parse("4th Round"), Value::str("4th Round"));
        assert_eq!(Value::parse("  Greece "), Value::str("Greece"));
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(Value::str("Greece"), Value::str("greece"));
        assert_ne!(Value::str("Greece"), Value::str("France"));
        assert!(Value::str("Athens").matches_text("ATHENS"));
    }

    #[test]
    fn year_date_equals_number() {
        assert_eq!(Value::year(2004), Value::num(2004.0));
        assert_ne!(Value::date(2004, 8, 1), Value::num(2004.0));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::num(3.0) < Value::num(17.0));
        assert!(Value::str("Athens") < Value::str("beijing"));
        assert!(Value::date(2004, 1, 1) < Value::date(2004, 2, 1));
        assert!(Value::year(1896) < Value::year(2016));
    }

    #[test]
    fn ordering_across_types_is_total_and_consistent() {
        let mut values = [
            Value::str("London"),
            Value::num(5.0),
            Value::year(1900),
            Value::num(-2.0),
            Value::str("Athens"),
        ];
        values.sort();
        // Numbers/dates first, then strings.
        assert!(values[0].is_num());
        assert!(values.last().unwrap().is_str());
    }

    #[test]
    fn display_roundtrip_for_integers() {
        assert_eq!(Value::num(2004.0).to_string(), "2004");
        assert_eq!(Value::num(2.945).to_string(), "2.945");
        assert_eq!(Value::date(2013, 6, 8).to_string(), "2013-06-08");
        assert_eq!(Value::str("Fiji").to_string(), "Fiji");
    }

    #[test]
    fn as_number_bridges_dates() {
        assert_eq!(Value::year(2012).as_number(), Some(2012.0));
        assert_eq!(Value::str("130").as_number(), Some(130.0));
        assert_eq!(Value::str("Fiji").as_number(), None);
    }

    #[test]
    fn numbers_equal_tolerance() {
        assert!(numbers_equal(0.1 + 0.2, 0.3));
        assert!(!numbers_equal(1.0, 1.001));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::str("Greece"));
        assert!(set.contains(&Value::str("GREECE")));
        set.insert(Value::num(2004.0));
        assert!(set.contains(&Value::year(2004)));
    }

    #[test]
    fn hash_consistent_with_eq_across_magnitudes() {
        use std::collections::HashSet;
        // Pairs within the relative equality tolerance must land in the
        // same hash bucket at every magnitude (the hash rounding is
        // relative, like the tolerance).
        for (a, b) in [
            (2004.0, 2004.000002),
            (1e9, 1e9 + 1.0),
            (-2004.0, -2004.000002),
            (0.5, 0.5 + 1e-10),
            (1e-300, 2e-300),
        ] {
            assert_eq!(Value::num(a), Value::num(b), "{a} vs {b} not equal");
            let mut set = HashSet::new();
            set.insert(Value::num(a));
            assert!(set.contains(&Value::num(b)), "{a} vs {b} hash differently");
        }
    }
}
