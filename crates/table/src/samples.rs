//! The example tables used throughout the paper's figures.
//!
//! These small tables back the running examples (Figure 1), the highlight
//! figures (Figures 4–9) and the operator gallery (Figures 11–22). They are
//! used across the workspace in unit tests, integration tests, the examples
//! and the figure-regeneration section of the experiments binary.

use crate::table::Table;

/// Figure 1 / Figures 13–22: the Olympic games table
/// (`Year`, `Country`, `City`).
pub fn olympics() -> Table {
    Table::from_rows(
        "olympics",
        &["Year", "Country", "City"],
        &[
            vec!["1896", "Greece", "Athens"],
            vec!["1900", "France", "Paris"],
            vec!["1904", "USA", "St. Louis"],
            vec!["1908", "UK", "London"],
            vec!["2000", "Australia", "Sydney"],
            vec!["2004", "Greece", "Athens"],
            vec!["2008", "China", "Beijing"],
            vec!["2012", "UK", "London"],
            vec!["2016", "Brazil", "Rio de Janeiro"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Figure 4 / Table 12: the national-squad table
/// (`Name`, `Position`, `Games`, `Club`).
pub fn squad() -> Table {
    Table::from_rows(
        "squad",
        &["Name", "Position", "Games", "Club"],
        &[
            vec!["Erich Burgener", "GK", "3", "Servette"],
            vec!["Roger Berbig", "GK", "3", "Grasshoppers"],
            vec!["Charly In-Albon", "DF", "4", "Grasshoppers"],
            vec!["Beat Rietmann", "DF", "2", "FC St. Gallen"],
            vec!["Andy Egli", "DF", "6", "Grasshoppers"],
            vec!["Marcel Koller", "DF", "2", "Grasshoppers"],
            vec!["Rene Botteron", "MF", "1", "FC Nuremburg"],
            vec!["Heinz Hermann", "MF", "6", "Grasshoppers"],
            vec!["Roger Wehrli", "MF", "6", "Grasshoppers"],
            vec!["Lucien Favre", "MF", "5", "Toulouse Servette"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Figure 6 / Table 17: the Pacific Games medal table
/// (`Rank`, `Nation`, `Gold`, `Silver`, `Bronze`, `Total`).
pub fn medals() -> Table {
    Table::from_rows(
        "medals",
        &["Rank", "Nation", "Gold", "Silver", "Bronze", "Total"],
        &[
            vec!["1", "New Caledonia", "120", "107", "61", "288"],
            vec!["2", "Tahiti", "60", "42", "42", "144"],
            vec!["3", "Papua New Guinea", "48", "25", "48", "121"],
            vec!["4", "Fiji", "33", "44", "53", "130"],
            vec!["5", "Samoa", "22", "17", "34", "73"],
            vec!["6", "Nauru", "8", "10", "10", "28"],
            vec!["7", "Tonga", "4", "6", "10", "20"],
            vec!["8", "Cook Islands", "3", "5", "9", "17"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Figure 7: the growth-rate table sampled from a large public table
/// (`Row`, `Country`, `Year`, `Growth Rate`).
pub fn growth_rate() -> Table {
    Table::from_rows(
        "growth_rate",
        &["Row", "Country", "Year", "Growth Rate"],
        &[
            vec!["14260", "Madagascar", "1980", "2.731"],
            vec!["14262", "Madagascar", "1981", "2.752"],
            vec!["14264", "Madagascar", "1982", "2.801"],
            vec!["14266", "Madagascar", "1986", "2.945"],
            vec!["14268", "Madagascar", "1984", "2.812"],
            vec!["14270", "Madagascar", "1983", "2.877"],
            vec!["14300", "Madagascar", "1991", "3.001"],
            vec!["14452", "Burkina Faso", "2010", "3.012"],
            vec!["14454", "Burkina Faso", "2011", "3.085"],
            vec!["14456", "Burkina Faso", "2012", "3.101"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Figure 8: the USL soccer-team history table
/// (`Year`, `League`, `Attendance`, `Open Cup`).
pub fn usl_league() -> Table {
    Table::from_rows(
        "usl_league",
        &["Year", "League", "Attendance", "Open Cup"],
        &[
            vec!["2002", "USL A-League", "6260", "Did not qualify"],
            vec!["2003", "USL A-League", "5871", "Did not qualify"],
            vec!["2004", "USL A-League", "5628", "4th Round"],
            vec!["2005", "USL First Division", "6028", "4th Round"],
            vec!["2006", "USL First Division", "5575", "3rd Round"],
            vec!["2007", "USL First Division", "6851", "2nd Round"],
            vec!["2008", "USL First Division", "8567", "1st Round"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Figure 9: the Great Lakes shipwreck table
/// (`Ship`, `Vessel`, `Lake`, `Lives lost`).
pub fn shipwrecks() -> Table {
    Table::from_rows(
        "shipwrecks",
        &["Ship", "Vessel", "Lake", "Lives lost"],
        &[
            vec!["Argus", "Steamer", "Lake Huron", "25 lost"],
            vec!["Hydrus", "Steamer", "Lake Huron", "28 lost"],
            vec!["Plymouth", "Barge", "Lake Michigan", "7 lost"],
            vec!["Issac M. Scott", "Steamer", "Lake Huron", "28 lost"],
            vec!["Henry B. Smith", "Steamer", "Lake Superior", "all hands"],
            vec!["Lightship No. 82", "Lightship", "Lake Erie", "6 lost"],
            vec!["Wexford", "Steamer", "Lake Huron", "17 lost"],
            vec!["Leafield", "Steamer", "Lake Superior", "18 lost"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Table 11: the yacht registry (`Name`, `Type`, `Owner`).
pub fn yachts() -> Table {
    Table::from_rows(
        "yachts",
        &["Name", "Type", "Owner"],
        &[
            vec!["Sally", "Yacht", "Lyman"],
            vec!["Caprice", "Yacht", "Robinson"],
            vec!["Eleanor", "Yacht", "Clapp"],
            vec!["USS Lawrence", "Yacht", "U.S. Navy"],
            vec!["USS Macdonough", "Yacht", "U.S. Navy"],
            vec!["Jule", "Yacht", "J. Arthur"],
            vec!["lightship LV-72", "Lightvessel", "U.S Lighthouse Board"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Table 18: the pilgrimage-temple table (`Temple`, `Town`, `Prefecture`).
pub fn temples() -> Table {
    Table::from_rows(
        "temples",
        &["Temple", "Town", "Prefecture"],
        &[
            vec!["Iwaya-ji", "Kumakogen", "Ehime Prefecture"],
            vec!["Yakushi Nyorai", "Matsuyama", "Ehime Prefecture"],
            vec!["Amida Nyorai", "Matsuyama", "Ehime Prefecture"],
            vec!["Shaka Nyorai", "Matsuyama", "Ehime Prefecture"],
            vec!["Dainichi Nyorai", "Matsuyama", "Ehime Prefecture"],
            vec!["Yokomine-ji", "Saijo", "Ehime Prefecture"],
            vec!["Fudo Myoo", "Imabari", "Ehime Prefecture"],
            vec!["Jizo Bosatsu", "Imabari", "Ehime Prefecture"],
        ],
    )
    .expect("static sample table is well formed")
}

/// Table 1 row 2-style Olympic medal standings used for tie-break questions
/// (`Rank`, `Nation`, `Gold`, `Silver`, `Bronze`, `Total`).
pub fn medal_standings() -> Table {
    Table::from_rows(
        "medal_standings",
        &["Rank", "Nation", "Gold", "Silver", "Bronze", "Total"],
        &[
            vec!["1", "US", "46", "37", "38", "121"],
            vec!["2", "China", "38", "45", "38", "121"],
            vec!["3", "UK", "27", "23", "17", "67"],
            vec!["4", "Russia", "19", "18", "19", "56"],
            vec!["5", "Germany", "17", "10", "15", "42"],
            vec!["6", "Japan", "12", "8", "21", "41"],
            vec!["7", "France", "10", "18", "14", "42"],
            vec!["8", "South Korea", "9", "3", "9", "21"],
        ],
    )
    .expect("static sample table is well formed")
}

/// All sample tables, keyed by the figures they appear in; convenient for
/// gallery generation and integration tests.
pub fn all_samples() -> Vec<Table> {
    vec![
        olympics(),
        squad(),
        medals(),
        growth_rate(),
        usl_league(),
        shipwrecks(),
        yachts(),
        temples(),
        medal_standings(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnType;
    use crate::value::Value;

    #[test]
    fn all_samples_build_and_are_nonempty() {
        for table in all_samples() {
            assert!(table.num_records() >= 7, "{} too small", table.name());
            assert!(table.num_columns() >= 3, "{} too narrow", table.name());
        }
    }

    #[test]
    fn olympics_matches_figure_one() {
        let t = olympics();
        let country = t.column_index("Country").unwrap();
        let greece_records = t.filter_eq(country, &Value::str("Greece"));
        assert_eq!(greece_records.len(), 2);
        assert_eq!(t.column_type(0), ColumnType::Number);
    }

    #[test]
    fn medals_contains_fiji_and_tonga_totals() {
        let t = medals();
        let nation = t.column_index("Nation").unwrap();
        let total = t.column_index("Total").unwrap();
        let fiji = t.filter_eq(nation, &Value::str("Fiji"))[0];
        let tonga = t.filter_eq(nation, &Value::str("Tonga"))[0];
        assert_eq!(t.value_at(fiji, total), Some(Value::num(130.0)));
        assert_eq!(t.value_at(tonga, total), Some(Value::num(20.0)));
    }

    #[test]
    fn sample_names_are_distinct() {
        let samples = all_samples();
        let mut names: Vec<&str> = samples.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), samples.len());
    }
}
