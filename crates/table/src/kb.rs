//! Knowledge-base view of a table (§3.1).
//!
//! The paper views a table as `K ⊆ E × P × E`: entities `E` are all cell
//! values plus all records, and each column header is a binary property
//! mapping a cell value to the records in which it appears. This module is a
//! thin view over the shared [`TableIndex`] (which materializes the inverted
//! indexes): the evaluator and the semantic parser answer `Column.value`
//! joins and entity-linking lookups without scanning the table repeatedly,
//! and — because the index is behind an `Arc` — without rebuilding it per
//! question or per evaluation session.

use std::sync::Arc;

use crate::cell::CellRef;
use crate::index::TableIndex;
use crate::table::{RecordIdx, Table};
use crate::value::Value;

pub use crate::index::ColumnIndex;

/// The knowledge-base view of one table.
#[derive(Debug, Clone)]
pub struct KnowledgeBase<'a> {
    table: &'a Table,
    index: Arc<TableIndex>,
}

impl<'a> KnowledgeBase<'a> {
    /// Build the KB view of `table`, constructing a fresh [`TableIndex`].
    /// When an index for the table already exists, use
    /// [`KnowledgeBase::with_index`] to share it instead.
    pub fn new(table: &'a Table) -> Self {
        KnowledgeBase {
            table,
            index: Arc::new(TableIndex::new(table)),
        }
    }

    /// Build the KB view around an existing shared index of the same table.
    pub fn with_index(table: &'a Table, index: Arc<TableIndex>) -> Self {
        debug_assert_eq!(index.num_records(), table.num_records());
        debug_assert_eq!(index.num_columns(), table.num_columns());
        KnowledgeBase { table, index }
    }

    /// The underlying table (borrowed for the view's full lifetime).
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// The shared columnar index backing this view.
    pub fn index(&self) -> &Arc<TableIndex> {
        &self.index
    }

    /// Index for a column.
    pub fn column(&self, column: usize) -> &ColumnIndex {
        self.index.column(column)
    }

    /// Records with `value` in `column` — the binary relation application
    /// `Column.value` (e.g. `Country.Greece`).
    pub fn join(&self, column: usize, value: &Value) -> &[RecordIdx] {
        self.index.records_with_value(column, value)
    }

    /// All cells in `column` whose value equals `value` (used by the
    /// provenance rule for *Column Records* in Table 10).
    pub fn matching_cells(&self, column: usize, value: &Value) -> Vec<CellRef> {
        self.index.matching_cells(column, value)
    }

    /// Every `(column, value)` pair whose value's text matches `text`,
    /// used for entity linking of question tokens to the table.
    pub fn link_text(&self, text: &str) -> Vec<(usize, Value)> {
        let mut out = Vec::new();
        for column in 0..self.index.num_columns() {
            for (value, _records) in self.index.column(column).entries() {
                if value.matches_text(text) {
                    out.push((column, value.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn olympics() -> Table {
        Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Beijing"],
                vec!["2012", "UK", "London"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn join_returns_matching_records() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let country = table.column_index("Country").unwrap();
        assert_eq!(kb.join(country, &Value::str("Greece")), &[0, 2]);
        assert_eq!(kb.join(country, &Value::str("Atlantis")), &[] as &[usize]);
    }

    #[test]
    fn matching_cells_point_into_the_right_column() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let city = table.column_index("City").unwrap();
        let cells = kb.matching_cells(city, &Value::str("Athens"));
        assert_eq!(cells, vec![CellRef::new(0, city), CellRef::new(2, city)]);
    }

    #[test]
    fn link_text_finds_entities_case_insensitively() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let links = kb.link_text("greece");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].0, table.column_index("Country").unwrap());
        assert_eq!(links[0].1, Value::str("Greece"));
        // Numbers link too.
        let links = kb.link_text("2008");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].0, table.column_index("Year").unwrap());
    }

    #[test]
    fn distinct_counts_match_table() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let country = table.column_index("Country").unwrap();
        assert_eq!(kb.column(country).num_distinct(), 4);
    }

    #[test]
    fn with_index_shares_one_build() {
        let table = olympics();
        let index = Arc::new(TableIndex::new(&table));
        let kb = KnowledgeBase::with_index(&table, index.clone());
        assert_eq!(Arc::strong_count(kb.index()), 2);
        let country = table.column_index("Country").unwrap();
        assert_eq!(kb.join(country, &Value::str("Greece")), &[0, 2]);
    }
}
