//! Knowledge-base view of a table (§3.1).
//!
//! The paper views a table as `K ⊆ E × P × E`: entities `E` are all cell
//! values plus all records, and each column header is a binary property
//! mapping a cell value to the records in which it appears. This module
//! materializes that view as inverted indexes so the evaluator and the
//! semantic parser can answer `Column.value` joins and entity-linking lookups
//! without scanning the table repeatedly.

use std::collections::HashMap;

use crate::cell::CellRef;
use crate::table::{RecordIdx, Table};
use crate::value::Value;

/// Inverted index for one column: value → records containing it.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    by_value: HashMap<Value, Vec<RecordIdx>>,
}

impl ColumnIndex {
    /// Records whose cell in this column equals `value` (the `C.v` join).
    pub fn records(&self, value: &Value) -> &[RecordIdx] {
        self.by_value.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct values in the column.
    pub fn num_distinct(&self) -> usize {
        self.by_value.len()
    }

    /// Iterate over `(value, records)` pairs in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (&Value, &Vec<RecordIdx>)> {
        self.by_value.iter()
    }
}

/// The knowledge-base view of one table.
#[derive(Debug, Clone)]
pub struct KnowledgeBase<'a> {
    table: &'a Table,
    columns: Vec<ColumnIndex>,
}

impl<'a> KnowledgeBase<'a> {
    /// Build the KB view (inverted index per column) of `table`.
    pub fn new(table: &'a Table) -> Self {
        let mut columns: Vec<ColumnIndex> = vec![ColumnIndex::default(); table.num_columns()];
        for record in table.record_indices() {
            let row = table.record(record).expect("record index in range");
            for (column, value) in row.iter().enumerate() {
                columns[column]
                    .by_value
                    .entry(value.clone())
                    .or_default()
                    .push(record);
            }
        }
        KnowledgeBase { table, columns }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        self.table
    }

    /// Index for a column.
    pub fn column(&self, column: usize) -> &ColumnIndex {
        &self.columns[column]
    }

    /// Records with `value` in `column` — the binary relation application
    /// `Column.value` (e.g. `Country.Greece`).
    pub fn join(&self, column: usize, value: &Value) -> &[RecordIdx] {
        self.columns[column].records(value)
    }

    /// All cells in `column` whose value equals `value` (used by the
    /// provenance rule for *Column Records* in Table 10).
    pub fn matching_cells(&self, column: usize, value: &Value) -> Vec<CellRef> {
        self.join(column, value)
            .iter()
            .map(|&record| CellRef::new(record, column))
            .collect()
    }

    /// Every `(column, value)` pair whose value's text matches `text`,
    /// used for entity linking of question tokens to the table.
    pub fn link_text(&self, text: &str) -> Vec<(usize, Value)> {
        let mut out = Vec::new();
        for (column, index) in self.columns.iter().enumerate() {
            for (value, _records) in index.entries() {
                if value.matches_text(text) {
                    out.push((column, value.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn olympics() -> Table {
        Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Beijing"],
                vec!["2012", "UK", "London"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn join_returns_matching_records() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let country = table.column_index("Country").unwrap();
        assert_eq!(kb.join(country, &Value::str("Greece")), &[0, 2]);
        assert_eq!(kb.join(country, &Value::str("Atlantis")), &[] as &[usize]);
    }

    #[test]
    fn matching_cells_point_into_the_right_column() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let city = table.column_index("City").unwrap();
        let cells = kb.matching_cells(city, &Value::str("Athens"));
        assert_eq!(cells, vec![CellRef::new(0, city), CellRef::new(2, city)]);
    }

    #[test]
    fn link_text_finds_entities_case_insensitively() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let links = kb.link_text("greece");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].0, table.column_index("Country").unwrap());
        assert_eq!(links[0].1, Value::str("Greece"));
        // Numbers link too.
        let links = kb.link_text("2008");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].0, table.column_index("Year").unwrap());
    }

    #[test]
    fn distinct_counts_match_table() {
        let table = olympics();
        let kb = KnowledgeBase::new(&table);
        let country = table.column_index("Country").unwrap();
        assert_eq!(kb.column(country).num_distinct(), 4);
    }
}
