//! Minimal CSV / TSV reader and writer.
//!
//! WikiTableQuestions distributes its tables as TSV files; the synthetic
//! dataset of this reproduction is persisted the same way. The format
//! implemented here is deliberately small: one header row, `,` or `\t`
//! delimiters, optional double-quote quoting with `""` escapes, `\n` or
//! `\r\n` line endings. This avoids an external dependency while covering
//! everything the workspace reads and writes.

use crate::error::TableError;
use crate::table::{Table, TableBuilder};
use crate::Result;

/// Field delimiter for [`read_table`] / [`write_table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// Comma-separated values.
    Comma,
    /// Tab-separated values (the WikiTableQuestions distribution format).
    Tab,
}

impl Delimiter {
    fn as_char(self) -> char {
        match self {
            Delimiter::Comma => ',',
            Delimiter::Tab => '\t',
        }
    }
}

/// Split one logical CSV record into fields, honouring double-quote quoting.
fn split_record(line: &str, delimiter: char) -> std::result::Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            if field.is_empty() {
                in_quotes = true;
            } else {
                field.push(c);
            }
        } else if c == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    fields.push(field);
    Ok(fields)
}

/// Parse a table named `name` from CSV/TSV text.
pub fn read_table(name: &str, text: &str, delimiter: Delimiter) -> Result<Table> {
    let delim = delimiter.as_char();
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines
        .next()
        .ok_or_else(|| TableError::Csv("empty document".into()))?;
    let headers = split_record(header_line, delim).map_err(TableError::Csv)?;
    let mut builder = TableBuilder::new(name).columns(headers);
    for line in lines {
        let fields = split_record(line, delim).map_err(TableError::Csv)?;
        builder = builder.row_text(&fields)?;
    }
    builder.build()
}

/// Quote a field if it contains the delimiter, a quote or a newline.
fn quote_field(field: &str, delimiter: char) -> String {
    if field.contains(delimiter) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize a table to CSV/TSV text (header row first).
pub fn write_table(table: &Table, delimiter: Delimiter) -> String {
    let delim = delimiter.as_char();
    let mut out = String::new();
    let header: Vec<String> = table
        .columns()
        .iter()
        .map(|c| quote_field(&c.name, delim))
        .collect();
    out.push_str(&header.join(&delim.to_string()));
    out.push('\n');
    for record in table.record_indices() {
        let row = table.record_values(record).expect("record in range");
        let fields: Vec<String> = row
            .iter()
            .map(|v| quote_field(&v.to_string(), delim))
            .collect();
        out.push_str(&fields.join(&delim.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn reads_simple_csv() {
        let text = "Year,Country,City\n1896,Greece,Athens\n2008,China,Beijing\n";
        let table = read_table("olympics", text, Delimiter::Comma).unwrap();
        assert_eq!(table.num_records(), 2);
        assert_eq!(table.value_at(1, 2), Some(Value::str("Beijing")));
        assert_eq!(table.value_at(0, 0), Some(Value::num(1896.0)));
    }

    #[test]
    fn reads_tsv_with_commas_inside_fields() {
        let text = "Name\tNote\nAlice\tHello, world\n";
        let table = read_table("t", text, Delimiter::Tab).unwrap();
        assert_eq!(table.value_at(0, 1), Some(Value::str("Hello, world")));
    }

    #[test]
    fn quoted_fields_and_escaped_quotes() {
        let text = "A,B\n\"x, y\",\"say \"\"hi\"\"\"\n";
        let table = read_table("t", text, Delimiter::Comma).unwrap();
        assert_eq!(table.value_at(0, 0), Some(Value::str("x, y")));
        assert_eq!(table.value_at(0, 1), Some(Value::str("say \"hi\"")));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let text = "A\n\"oops\n";
        assert!(matches!(
            read_table("t", text, Delimiter::Comma),
            Err(TableError::Csv(_))
        ));
    }

    #[test]
    fn empty_document_is_an_error() {
        assert!(read_table("t", "\n\n", Delimiter::Comma).is_err());
    }

    #[test]
    fn roundtrip_preserves_shape_and_values() {
        let table = Table::from_rows(
            "medals",
            &["Nation", "Total"],
            &[
                vec!["Fiji", "130"],
                vec!["Tonga", "20"],
                vec!["New Caledonia, FR", "288"],
            ],
        )
        .unwrap();
        for delim in [Delimiter::Comma, Delimiter::Tab] {
            let text = write_table(&table, delim);
            let parsed = read_table("medals", &text, delim).unwrap();
            assert_eq!(parsed.num_records(), table.num_records());
            assert_eq!(parsed.value_at(2, 0), Some(Value::str("New Caledonia, FR")));
            assert_eq!(parsed.value_at(0, 1), Some(Value::num(130.0)));
        }
    }

    #[test]
    fn skips_blank_lines() {
        let text = "A,B\n\n1,2\n\n3,4\n";
        let table = read_table("t", text, Delimiter::Comma).unwrap();
        assert_eq!(table.num_records(), 2);
    }
}
