//! A named collection of tables.
//!
//! The WikiTableQuestions benchmark pairs each question with one of ~2,100
//! tables; a [`Catalog`] is the in-memory registry the dataset, parser and
//! study crates use to look tables up by name.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::TableError;
use crate::table::Table;
use crate::Result;

/// A serializable description of one registered table — what a serving
/// layer's `list_tables` surface hands to clients so they can reference
/// preloaded tables by name instead of shipping rows per request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSummary {
    /// The table's registry name (the key clients use in requests).
    pub name: String,
    /// Number of data records.
    pub records: usize,
    /// Column headers, in table order.
    pub columns: Vec<String>,
    /// The table's shape fingerprint ([`Table::fingerprint`]) as a
    /// fixed-width hex string — hex rather than a JSON number because the
    /// full 64 bits do not survive an f64 round-trip.
    pub fingerprint: String,
}

impl TableSummary {
    /// Summarize one table.
    pub fn of(table: &Table) -> TableSummary {
        TableSummary {
            name: table.name().to_string(),
            records: table.num_records(),
            columns: table
                .columns()
                .iter()
                .map(|column| column.name.clone())
                .collect(),
            fingerprint: format!("{:016x}", table.fingerprint()),
        }
    }
}

/// A registry of tables keyed by their name.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Insert a table under its own name, replacing any previous table with
    /// the same name. Returns the previous table if one was replaced.
    pub fn insert(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().to_string(), table)
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Look up a table by name, producing an error if absent.
    pub fn require(&self, name: &str) -> Result<&Table> {
        self.get(name)
            .ok_or_else(|| TableError::UnknownTable(name.to_string()))
    }

    /// Remove a table by name.
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Number of tables in the catalog.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate over tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Iterate over table names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Serializable summaries of every registered table, in name order —
    /// the registry listing a serving layer exposes to clients.
    pub fn summaries(&self) -> Vec<TableSummary> {
        self.tables.values().map(TableSummary::of).collect()
    }

    /// Summary of one table by name.
    pub fn summary(&self, name: &str) -> Option<TableSummary> {
        self.get(name).map(TableSummary::of)
    }
}

impl FromIterator<Table> for Catalog {
    fn from_iter<I: IntoIterator<Item = Table>>(iter: I) -> Self {
        let mut catalog = Catalog::new();
        for table in iter {
            catalog.insert(table);
        }
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> Table {
        Table::from_rows(name, &["A"], &[vec!["1"]]).unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut catalog = Catalog::new();
        assert!(catalog.is_empty());
        assert!(catalog.insert(tiny("a")).is_none());
        assert!(catalog.insert(tiny("b")).is_none());
        assert_eq!(catalog.len(), 2);
        assert!(catalog.get("a").is_some());
        assert!(catalog.require("c").is_err());
        assert!(catalog.remove("a").is_some());
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut catalog = Catalog::new();
        catalog.insert(tiny("a"));
        let replaced = catalog.insert(tiny("a"));
        assert!(replaced.is_some());
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn summaries_describe_the_registry() {
        let catalog: Catalog = vec![
            Table::from_rows("b", &["X", "Y"], &[vec!["1", "2"], vec!["3", "4"]]).unwrap(),
            tiny("a"),
        ]
        .into_iter()
        .collect();
        let summaries = catalog.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].name, "a");
        assert_eq!(summaries[1].name, "b");
        assert_eq!(summaries[1].records, 2);
        assert_eq!(summaries[1].columns, vec!["X", "Y"]);
        assert_eq!(summaries[1].fingerprint.len(), 16);
        assert_eq!(
            summaries[1].fingerprint,
            format!("{:016x}", catalog.get("b").unwrap().fingerprint())
        );
        assert_eq!(catalog.summary("a"), Some(summaries[0].clone()));
        assert_eq!(catalog.summary("missing"), None);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let catalog: Catalog = vec![tiny("zeta"), tiny("alpha"), tiny("mid")]
            .into_iter()
            .collect();
        let names: Vec<&str> = catalog.names().collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
