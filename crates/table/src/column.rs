//! Typed column vectors — the storage layer behind [`crate::Table`].
//!
//! A table used to hold `rows: Vec<Vec<Value>>`; every cell was a tagged
//! enum with its own heap string, and every scan chased two pointers per
//! cell. This module stores each column in the densest typed form its cells
//! admit:
//!
//! * [`ColumnData::F64`] — all-numeric columns (empty cells allowed) as a
//!   flat `Vec<f64>` plus a null bitmap, one bit per record,
//! * [`ColumnData::Dict`] — all-string columns dictionary-encoded: each
//!   record is a `u32` id into an interned string table, with a
//!   case-folded lookup map and per-entry parsed numbers precomputed so
//!   equality and numeric kernels never re-fold or re-parse text,
//! * [`ColumnData::Date`] — all-date columns as order-preserving packed
//!   ordinals (`year << 20 | month-code << 10 | day-code`),
//! * [`ColumnData::Mixed`] — the fallback for heterogeneous columns,
//!   keeping the original `Vec<Value>`.
//!
//! Reconstruction is **bit-exact**: `value_at` returns exactly the `Value`
//! the builder was given (floats by bits, strings by bytes, dates by
//! field), which is what keeps the serde wire format byte-identical to the
//! row-major era. The batch kernels (`filter_eq`, `filter_in`,
//! `filter_num`, `stats_*`) reproduce the row-scan semantics of
//! [`Value`]'s equality and `as_number` exactly — they are drop-in
//! replacements for interpreted per-row predicates, not approximations.

use std::collections::HashMap;

use crate::table::RecordIdx;
use crate::value::{numbers_equal, parse_number, Date, Value};

/// Id of an interned string in a dictionary-encoded column.
pub type DictId = u32;

/// One-bit-per-record null markers of an [`ColumnData::F64`] column.
/// A set bit means the cell was the empty string (the only non-numeric
/// cell the F64 layout admits).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullBitmap {
    words: Vec<u64>,
    any: bool,
}

impl NullBitmap {
    fn with_len(len: usize) -> Self {
        NullBitmap {
            words: vec![0; len.div_ceil(64)],
            any: false,
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
        self.any = true;
    }

    /// Whether record `i` is null (empty cell).
    pub fn is_null(&self, i: usize) -> bool {
        self.any && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Whether any record is null.
    pub fn any_null(&self) -> bool {
        self.any
    }
}

/// Dictionary-encoded string column: per-record ids into an interned
/// entry table, plus derived lookup structures built once.
#[derive(Debug, Clone)]
pub struct DictData {
    ids: Vec<DictId>,
    /// Interned entries, exact original bytes, in first-appearance order.
    entries: Vec<String>,
    /// `parse_number(entry)` per entry — `Value::as_number` without
    /// re-parsing text on every kernel call.
    numbers: Vec<Option<f64>>,
    /// ASCII-lowercased entry text → ids folding to it. `Value`'s string
    /// equality is `eq_ignore_ascii_case`, so one folded key can cover
    /// several distinct entries ("Athens" / "athens").
    by_folded: HashMap<String, Vec<DictId>>,
}

impl DictData {
    fn from_strings(texts: Vec<String>) -> DictData {
        let mut intern: HashMap<String, DictId> = HashMap::new();
        let mut entries: Vec<String> = Vec::new();
        let mut ids = Vec::with_capacity(texts.len());
        for text in texts {
            let id = match intern.get(&text) {
                Some(&id) => id,
                None => {
                    let id = entries.len() as DictId;
                    intern.insert(text.clone(), id);
                    entries.push(text);
                    id
                }
            };
            ids.push(id);
        }
        let numbers = entries.iter().map(|e| parse_number(e)).collect();
        let mut by_folded: HashMap<String, Vec<DictId>> = HashMap::new();
        for (id, entry) in entries.iter().enumerate() {
            by_folded
                .entry(entry.to_ascii_lowercase())
                .or_default()
                .push(id as DictId);
        }
        DictData {
            ids,
            entries,
            numbers,
            by_folded,
        }
    }

    /// Ids whose entry equals `text` case-insensitively.
    fn matching_ids(&self, text: &str) -> &[DictId] {
        self.by_folded
            .get(&text.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Pack a [`Date`] into an order-preserving `i64` ordinal. The month and
/// day codes are `component + 1` with `0` meaning absent, which keeps the
/// packed order identical to `Date::sort_key` (absent sorts before any
/// present component) and makes the packing injective.
pub fn date_ordinal(d: Date) -> i64 {
    let month_code = d.month.map(|m| i64::from(m) + 1).unwrap_or(0);
    let day_code = d.day.map(|d| i64::from(d) + 1).unwrap_or(0);
    (i64::from(d.year) << 20) | (month_code << 10) | day_code
}

/// Inverse of [`date_ordinal`].
pub fn date_from_ordinal(ord: i64) -> Date {
    let day_code = ord & 0x3ff;
    let month_code = (ord >> 10) & 0x3ff;
    Date {
        year: (ord >> 20) as i32,
        month: (month_code > 0).then(|| (month_code - 1) as u8),
        day: (day_code > 0).then(|| (day_code - 1) as u8),
    }
}

/// Whether an ordinal encodes a year-only date (no month, no day) — the
/// dates that bridge to plain numbers under [`Value`]'s equality.
fn ordinal_is_year_only(ord: i64) -> bool {
    ord & 0xfffff == 0
}

/// Typed storage of one column. See the module docs for layout selection.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Every cell numeric, empties as null bits.
    F64 { values: Vec<f64>, nulls: NullBitmap },
    /// Every cell a string, dictionary-encoded.
    Dict(DictData),
    /// Every cell a date, packed ordinals.
    Date { ords: Vec<i64> },
    /// Heterogeneous fallback: the original values, row order.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Choose the densest layout the cells admit and convert.
    pub fn from_values(values: Vec<Value>) -> ColumnData {
        let numeric_ok = values
            .iter()
            .all(|v| matches!(v, Value::Num(_)) || matches!(v, Value::Str(s) if s.is_empty()));
        let any_num = values.iter().any(|v| matches!(v, Value::Num(_)));
        if numeric_ok && any_num {
            let mut nulls = NullBitmap::with_len(values.len());
            let packed = values
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Num(n) => *n,
                    _ => {
                        nulls.set(i);
                        0.0
                    }
                })
                .collect();
            return ColumnData::F64 {
                values: packed,
                nulls,
            };
        }
        if values.iter().all(|v| matches!(v, Value::Str(_))) {
            let texts = values
                .into_iter()
                .map(|v| match v {
                    Value::Str(s) => s,
                    _ => unreachable!("checked all-string"),
                })
                .collect();
            return ColumnData::Dict(DictData::from_strings(texts));
        }
        if values.iter().all(|v| matches!(v, Value::Date(_))) {
            let ords = values
                .iter()
                .map(|v| match v {
                    Value::Date(d) => date_ordinal(*d),
                    _ => unreachable!("checked all-date"),
                })
                .collect();
            return ColumnData::Date { ords };
        }
        ColumnData::Mixed(values)
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::F64 { values, .. } => values.len(),
            ColumnData::Dict(dict) => dict.ids.len(),
            ColumnData::Date { ords } => ords.len(),
            ColumnData::Mixed(values) => values.len(),
        }
    }

    /// Whether the column has no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct the cell value at `record` — bit-exact to what the
    /// builder was given. `None` out of bounds.
    pub fn value_at(&self, record: RecordIdx) -> Option<Value> {
        match self {
            ColumnData::F64 { values, nulls } => values.get(record).map(|&n| {
                if nulls.is_null(record) {
                    Value::Str(String::new())
                } else {
                    Value::Num(n)
                }
            }),
            ColumnData::Dict(dict) => dict
                .ids
                .get(record)
                .map(|&id| Value::Str(dict.entries[id as usize].clone())),
            ColumnData::Date { ords } => ords
                .get(record)
                .map(|&ord| Value::Date(date_from_ordinal(ord))),
            ColumnData::Mixed(values) => values.get(record).cloned(),
        }
    }

    /// Cell text at `record` without materializing a [`Value`] — the
    /// provenance renderers' shim.
    pub fn text_at(&self, record: RecordIdx) -> String {
        match self {
            ColumnData::Dict(dict) => dict
                .ids
                .get(record)
                .map(|&id| dict.entries[id as usize].clone())
                .unwrap_or_default(),
            other => other
                .value_at(record)
                .map(|v| v.to_string())
                .unwrap_or_default(),
        }
    }

    /// The cell's numeric content at `record` (`Value::as_number`
    /// semantics) without materializing a [`Value`].
    pub fn number_at(&self, record: RecordIdx) -> Option<f64> {
        match self {
            ColumnData::F64 { values, nulls } => values
                .get(record)
                .and_then(|&n| (!nulls.is_null(record)).then_some(n)),
            ColumnData::Dict(dict) => dict
                .ids
                .get(record)
                .and_then(|&id| dict.numbers[id as usize]),
            ColumnData::Date { ords } => ords.get(record).map(|&ord| (ord >> 20) as f64),
            ColumnData::Mixed(values) => values.get(record).and_then(Value::as_number),
        }
    }

    /// Whether the cell at `record` equals `needle` under [`Value`]'s
    /// equality, without materializing the cell. `false` out of bounds.
    pub fn eq_at(&self, record: RecordIdx, needle: &Value) -> bool {
        match self {
            ColumnData::F64 { values, nulls } => {
                let Some(&cell) = values.get(record) else {
                    return false;
                };
                if nulls.is_null(record) {
                    // The cell is `Str("")`: only the (case-insensitively)
                    // empty string equals it.
                    matches!(needle, Value::Str(s) if s.is_empty())
                } else {
                    match needle {
                        Value::Num(n) => numbers_equal(cell, *n),
                        Value::Date(d) => {
                            d.month.is_none()
                                && d.day.is_none()
                                && numbers_equal(cell, f64::from(d.year))
                        }
                        Value::Str(_) => false,
                    }
                }
            }
            ColumnData::Dict(dict) => {
                let Some(&id) = dict.ids.get(record) else {
                    return false;
                };
                match needle {
                    Value::Str(s) => dict.entries[id as usize].eq_ignore_ascii_case(s),
                    _ => false,
                }
            }
            ColumnData::Date { ords } => {
                let Some(&ord) = ords.get(record) else {
                    return false;
                };
                match needle {
                    Value::Date(d) => ord == date_ordinal(*d),
                    Value::Num(n) => {
                        ordinal_is_year_only(ord) && numbers_equal(*n, (ord >> 20) as f64)
                    }
                    Value::Str(_) => false,
                }
            }
            ColumnData::Mixed(values) => values.get(record) == Some(needle),
        }
    }

    /// Records whose cell equals `needle` (ascending) — the batch kernel
    /// behind `WHERE Column = v` and `Column.v` joins, identical to a
    /// per-row `value == needle` scan.
    pub fn filter_eq(&self, needle: &Value) -> Vec<RecordIdx> {
        match self {
            ColumnData::F64 { values, nulls } => {
                let wanted = match needle {
                    Value::Num(n) => Some(*n),
                    Value::Date(d) if d.month.is_none() && d.day.is_none() => {
                        Some(f64::from(d.year))
                    }
                    Value::Str(s) if s.is_empty() => {
                        // Only the null (empty) cells match the empty string.
                        return (0..values.len()).filter(|&r| nulls.is_null(r)).collect();
                    }
                    _ => None,
                };
                let Some(wanted) = wanted else {
                    return Vec::new();
                };
                values
                    .iter()
                    .enumerate()
                    .filter(|&(r, &v)| !nulls.is_null(r) && numbers_equal(v, wanted))
                    .map(|(r, _)| r)
                    .collect()
            }
            ColumnData::Dict(dict) => {
                let Value::Str(text) = needle else {
                    return Vec::new();
                };
                let wanted = dict.matching_ids(text);
                match wanted {
                    [] => Vec::new(),
                    [only] => dict
                        .ids
                        .iter()
                        .enumerate()
                        .filter(|&(_, id)| id == only)
                        .map(|(r, _)| r)
                        .collect(),
                    many => dict
                        .ids
                        .iter()
                        .enumerate()
                        .filter(|(_, id)| many.contains(id))
                        .map(|(r, _)| r)
                        .collect(),
                }
            }
            ColumnData::Date { ords } => match needle {
                Value::Date(d) => {
                    let wanted = date_ordinal(*d);
                    ords.iter()
                        .enumerate()
                        .filter(|&(_, &ord)| ord == wanted)
                        .map(|(r, _)| r)
                        .collect()
                }
                Value::Num(n) => ords
                    .iter()
                    .enumerate()
                    .filter(|&(_, &ord)| {
                        ordinal_is_year_only(ord) && numbers_equal(*n, (ord >> 20) as f64)
                    })
                    .map(|(r, _)| r)
                    .collect(),
                Value::Str(_) => Vec::new(),
            },
            ColumnData::Mixed(values) => values
                .iter()
                .enumerate()
                .filter(|(_, v)| *v == needle)
                .map(|(r, _)| r)
                .collect(),
        }
    }

    /// Records whose cell's numeric content satisfies `pred` — the batch
    /// kernel behind numeric comparisons, identical to a per-row
    /// `as_number().map(pred).unwrap_or(false)` scan (NaN cells included:
    /// the predicate sees them, exactly like the row loop).
    pub fn filter_num<F: Fn(f64) -> bool>(&self, pred: F) -> Vec<RecordIdx> {
        match self {
            ColumnData::F64 { values, nulls } => values
                .iter()
                .enumerate()
                .filter(|&(r, &v)| !nulls.is_null(r) && pred(v))
                .map(|(r, _)| r)
                .collect(),
            ColumnData::Dict(dict) => {
                // Evaluate the predicate once per dictionary entry, then
                // scan the id vector against the per-entry verdicts.
                let verdicts: Vec<bool> = dict
                    .numbers
                    .iter()
                    .map(|n| n.map(&pred).unwrap_or(false))
                    .collect();
                dict.ids
                    .iter()
                    .enumerate()
                    .filter(|&(_, &id)| verdicts[id as usize])
                    .map(|(r, _)| r)
                    .collect()
            }
            ColumnData::Date { ords } => ords
                .iter()
                .enumerate()
                .filter(|&(_, &ord)| pred((ord >> 20) as f64))
                .map(|(r, _)| r)
                .collect(),
            ColumnData::Mixed(values) => values
                .iter()
                .enumerate()
                .filter(|(_, v)| v.as_number().map(&pred).unwrap_or(false))
                .map(|(r, _)| r)
                .collect(),
        }
    }

    /// Fold the column's numeric contents (`Value::as_number` per cell,
    /// non-numeric cells skipped). `None` when no cell is numeric.
    fn fold_numbers<F: FnMut(f64, f64) -> f64>(&self, mut fold: F) -> Option<f64> {
        let mut acc: Option<f64> = None;
        for record in 0..self.len() {
            if let Some(n) = self.number_at(record) {
                acc = Some(match acc {
                    None => n,
                    Some(a) => fold(a, n),
                });
            }
        }
        acc
    }

    /// Sum of the column's numeric cells; `None` when there are none.
    pub fn stats_sum(&self) -> Option<f64> {
        self.fold_numbers(|a, b| a + b)
    }

    /// Minimum of the column's numeric cells; `None` when there are none.
    pub fn stats_min(&self) -> Option<f64> {
        self.fold_numbers(f64::min)
    }

    /// Maximum of the column's numeric cells; `None` when there are none.
    pub fn stats_max(&self) -> Option<f64> {
        self.fold_numbers(f64::max)
    }

    /// The dense numeric vector, when every cell is numeric (an
    /// [`ColumnData::F64`] column with no nulls) — the no-branch fast path
    /// for aggregate kernels.
    pub fn dense_f64(&self) -> Option<&[f64]> {
        match self {
            ColumnData::F64 { values, nulls } if !nulls.any_null() => Some(values),
            _ => None,
        }
    }

    /// Feed the column's cell *contents* to `write` as canonical bytes —
    /// the content half of [`crate::Table`]'s content fingerprint. Every
    /// byte sequence is layout-derived but value-determined: floats by
    /// bits, strings length-prefixed by exact bytes, dates by packed
    /// ordinal — so two columns hash alike iff their cells are bit-equal,
    /// regardless of how `from_values` happened to store them (the layout
    /// choice is itself a function of the values). A leading per-variant
    /// tag keeps e.g. the string `"1"` from aliasing the number `1`.
    pub fn hash_content(&self, write: &mut dyn FnMut(&[u8])) {
        match self {
            ColumnData::F64 { values, nulls } => {
                write(&[0]);
                for (i, v) in values.iter().enumerate() {
                    write(&[u8::from(nulls.is_null(i))]);
                    write(&v.to_bits().to_le_bytes());
                }
            }
            ColumnData::Dict(dict) => {
                write(&[1]);
                // Entries are interned in first-appearance order, which is
                // determined by the cell sequence — ids alone pin contents
                // once the entry table is folded in.
                write(&(dict.entries.len() as u64).to_le_bytes());
                for entry in &dict.entries {
                    write(&(entry.len() as u64).to_le_bytes());
                    write(entry.as_bytes());
                }
                for &id in &dict.ids {
                    write(&id.to_le_bytes());
                }
            }
            ColumnData::Date { ords } => {
                write(&[2]);
                for &ord in ords {
                    write(&ord.to_le_bytes());
                }
            }
            ColumnData::Mixed(values) => {
                write(&[3]);
                for value in values {
                    match value {
                        Value::Num(n) => {
                            write(&[0]);
                            write(&n.to_bits().to_le_bytes());
                        }
                        Value::Str(s) => {
                            write(&[1]);
                            write(&(s.len() as u64).to_le_bytes());
                            write(s.as_bytes());
                        }
                        Value::Date(d) => {
                            write(&[2]);
                            write(&date_ordinal(*d).to_le_bytes());
                        }
                    }
                }
            }
        }
    }
}

/// Borrowed typed view of an all-numeric column.
#[derive(Debug, Clone, Copy)]
pub struct F64Column<'a> {
    pub(crate) values: &'a [f64],
    pub(crate) nulls: &'a NullBitmap,
}

impl<'a> F64Column<'a> {
    /// The raw numeric vector (null slots hold `0.0`; check
    /// [`F64Column::is_null`]).
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Whether record `i` is an empty cell.
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.is_null(i)
    }

    /// Whether any record is an empty cell.
    pub fn any_null(&self) -> bool {
        self.nulls.any_null()
    }
}

/// Borrowed typed view of a dictionary-encoded string column.
#[derive(Debug, Clone, Copy)]
pub struct DictColumn<'a> {
    pub(crate) data: &'a DictData,
}

impl<'a> DictColumn<'a> {
    /// Per-record dictionary ids.
    pub fn ids(&self) -> &'a [DictId] {
        &self.data.ids
    }

    /// The interned entries, in first-appearance order.
    pub fn entries(&self) -> &'a [String] {
        &self.data.entries
    }

    /// The entry text of record `i`.
    pub fn text(&self, i: usize) -> &'a str {
        &self.data.entries[self.data.ids[i] as usize]
    }

    /// Ids whose entry equals `text` case-insensitively.
    pub fn matching_ids(&self, text: &str) -> &'a [DictId] {
        self.data.matching_ids(text)
    }
}

/// Borrowed typed view of an all-date column.
#[derive(Debug, Clone, Copy)]
pub struct DateColumn<'a> {
    pub(crate) ords: &'a [i64],
}

impl<'a> DateColumn<'a> {
    /// Per-record packed ordinals (order-preserving; see [`date_ordinal`]).
    pub fn ordinals(&self) -> &'a [i64] {
        self.ords
    }

    /// The date of record `i`.
    pub fn date(&self, i: usize) -> Date {
        date_from_ordinal(self.ords[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(texts: &[&str]) -> Vec<Value> {
        texts.iter().map(|t| Value::parse(t)).collect()
    }

    #[test]
    fn layout_selection_matches_cell_types() {
        assert!(matches!(
            ColumnData::from_values(values(&["1", "2", ""])),
            ColumnData::F64 { .. }
        ));
        assert!(matches!(
            ColumnData::from_values(values(&["a", "b", ""])),
            ColumnData::Dict(_)
        ));
        assert!(matches!(
            ColumnData::from_values(values(&["June 8, 2013", "October 1983"])),
            ColumnData::Date { .. }
        ));
        assert!(matches!(
            ColumnData::from_values(values(&["1", "a"])),
            ColumnData::Mixed(_)
        ));
        // All-empty columns are all-string.
        assert!(matches!(
            ColumnData::from_values(values(&["", ""])),
            ColumnData::Dict(_)
        ));
    }

    #[test]
    fn reconstruction_is_bit_exact() {
        let originals = vec![
            Value::Num(2004.0),
            Value::Num(-0.0),
            Value::Num(f64::MAX),
            Value::Num(1e-300),
            Value::Str(String::new()),
        ];
        let col = ColumnData::from_values(originals.clone());
        for (i, original) in originals.iter().enumerate() {
            let restored = col.value_at(i).unwrap();
            match (original, &restored) {
                (Value::Num(a), Value::Num(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            }
        }
        assert_eq!(col.value_at(5), None);
    }

    #[test]
    fn date_ordinal_roundtrip_and_order() {
        let dates = [
            Date::year(-44),
            Date::year(1983),
            Date::year_month(1983, 10),
            Date::ymd(1983, 10, 1),
            Date::ymd(2013, 6, 8),
        ];
        for d in dates {
            assert_eq!(date_from_ordinal(date_ordinal(d)), d);
        }
        for pair in dates.windows(2) {
            assert!(date_ordinal(pair[0]) < date_ordinal(pair[1]));
        }
    }

    #[test]
    fn filter_eq_matches_scan_semantics() {
        let cases: Vec<Vec<Value>> = vec![
            values(&["1", "2", "", "2", "3"]),
            values(&["Athens", "athens", "", "Paris"]),
            values(&["June 8, 2013", "October 1983", "June 8, 2013"]),
            values(&["1", "a", "", "June 8, 2013"]),
        ];
        let needles: Vec<Value> = values(&["2", "athens", "", "June 8, 2013", "1", "nope"])
            .into_iter()
            .chain([Value::year(1983), Value::Num(f64::NAN)])
            .collect();
        for cells in cases {
            let col = ColumnData::from_values(cells.clone());
            for needle in &needles {
                let scan: Vec<usize> = cells
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| *v == needle)
                    .map(|(r, _)| r)
                    .collect();
                assert_eq!(col.filter_eq(needle), scan, "needle {needle:?}");
                for (r, v) in cells.iter().enumerate() {
                    assert_eq!(col.eq_at(r, needle), v == needle, "row {r} vs {needle:?}");
                }
            }
        }
    }

    #[test]
    fn filter_num_matches_as_number_scan() {
        let cases: Vec<Vec<Value>> = vec![
            values(&["1", "2", "", "-3"]),
            values(&["130", "abc", "$1,000", ""]),
            values(&["June 8, 2013", "October 1983"]),
            values(&["1", "a", "October 1983"]),
        ];
        for cells in cases {
            let col = ColumnData::from_values(cells.clone());
            for threshold in [0.0, 2.0, 1983.0] {
                let scan: Vec<usize> = cells
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.as_number().map(|n| n >= threshold).unwrap_or(false))
                    .map(|(r, _)| r)
                    .collect();
                assert_eq!(col.filter_num(|n| n >= threshold), scan);
            }
        }
    }

    #[test]
    fn stats_match_scan_folds() {
        let cells = values(&["3", "1", "", "4"]);
        let col = ColumnData::from_values(cells);
        assert_eq!(col.stats_sum(), Some(8.0));
        assert_eq!(col.stats_min(), Some(1.0));
        assert_eq!(col.stats_max(), Some(4.0));
        let no_numbers = ColumnData::from_values(values(&["a", "b"]));
        assert_eq!(no_numbers.stats_sum(), None);
        // Dict columns with parsable entries still aggregate.
        let dict = ColumnData::from_values(values(&["a", "130", "20"]));
        assert!(matches!(dict, ColumnData::Mixed(_)));
        assert_eq!(dict.stats_sum(), Some(150.0));
    }

    #[test]
    fn number_and_text_accessors() {
        let cells = values(&["130", "", "Fiji"]);
        let col = ColumnData::from_values(cells);
        assert_eq!(col.number_at(0), Some(130.0));
        assert_eq!(col.number_at(1), None);
        assert_eq!(col.number_at(2), None);
        assert_eq!(col.text_at(2), "Fiji");
        assert_eq!(col.text_at(1), "");
        let dates = ColumnData::from_values(values(&["June 8, 2013"]));
        assert_eq!(dates.number_at(0), Some(2013.0));
        assert_eq!(dates.text_at(0), "2013-06-08");
    }

    #[test]
    fn dense_f64_requires_no_nulls() {
        let dense = ColumnData::from_values(values(&["1", "2"]));
        assert_eq!(dense.dense_f64(), Some(&[1.0, 2.0][..]));
        let nullable = ColumnData::from_values(values(&["1", ""]));
        assert_eq!(nullable.dense_f64(), None);
    }
}
