//! Cell coordinates.
//!
//! The provenance model of §4 is *cell-based*: the three provenance functions
//! `P_O`, `P_E`, `P_C` return sets of table cells. A [`CellRef`] is the
//! coordinate of one cell — the record index plus the column index — and is
//! the currency passed between the evaluator (`wtq-dcs`), the provenance
//! model (`wtq-provenance`) and the highlight renderer.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::table::RecordIdx;

/// Coordinate of a single table cell: `(record, column)`.
///
/// Both components are indexes into the owning [`crate::Table`]; the cell's
/// text is `table.cell_text(cell)`. Ordering is row-major (record first)
/// so that sorted sets of cells read top-to-bottom, left-to-right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellRef {
    /// Index of the record (row) the cell belongs to.
    pub record: RecordIdx,
    /// Index of the column the cell belongs to.
    pub column: usize,
}

impl CellRef {
    /// Create a cell reference.
    pub fn new(record: RecordIdx, column: usize) -> Self {
        CellRef { record, column }
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(r{}, c{})", self.record, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_row_major() {
        let a = CellRef::new(0, 3);
        let b = CellRef::new(1, 0);
        let c = CellRef::new(1, 2);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_names_row_and_column() {
        assert_eq!(CellRef::new(4, 2).to_string(), "(r4, c2)");
    }
}
