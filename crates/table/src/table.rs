//! The ordered web-table relation of §3.1, stored columnar.
//!
//! Records are ordered top to bottom; each record has a unique `Index`
//! (0, 1, 2, …) and a `Prev` pointer to the record above it. Columns are
//! named, and cell values are typed [`Value`]s.
//!
//! Storage is column-major: each column lives in the densest typed vector
//! its cells admit (see [`crate::column::ColumnData`]) — flat `f64`s with a
//! null bitmap, dictionary-encoded strings, packed date ordinals, or a
//! `Vec<Value>` fallback for heterogeneous columns. Consumers never see the
//! layout: they go through the accessor API (`value_at`, `eq_at`,
//! `number_at`, `cell_text`, `record_values`) or the batch kernels
//! (`filter_eq`, `filter_in`, `filter_num`, `stats_sum|min|max`), all of
//! which reproduce the exact per-row [`Value`] semantics the row-major
//! representation had. The serde wire format still speaks rows — the
//! columnar layout is an in-memory detail, byte-invisible on the wire.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

use crate::cell::CellRef;
use crate::column::{ColumnData, DateColumn, DictColumn, F64Column};
use crate::error::TableError;
use crate::value::Value;
use crate::Result;

/// Index of a record (row) within a table; identical to the paper's `Index`
/// attribute.
pub type RecordIdx = usize;

/// The inferred dominant type of a column, used by the semantic parser to
/// decide which operations are applicable (e.g. `sum` needs numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Mostly textual cells.
    Text,
    /// Mostly numeric cells.
    Number,
    /// Mostly date cells.
    Date,
    /// No clear majority.
    Mixed,
}

/// A named column together with its inferred type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Header text, e.g. `"Country"`. Unique within its table.
    pub name: String,
    /// Dominant value type of the column's cells.
    pub column_type: ColumnType,
}

/// A single web table: a header row plus an ordered list of records.
///
/// Construct with [`TableBuilder`] or [`Table::from_rows`].
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    /// Typed column vectors, one per header, each holding `num_records`
    /// cells. The only place in the crate that knows the storage layout.
    cols: Vec<ColumnData>,
    num_records: usize,
    /// Precomputed shape fingerprint (record count, column count, normalized
    /// headers, column types), set once at construction. Lets
    /// [`crate::TableIndex::describes`] run as a single integer comparison on
    /// every cache lookup instead of re-walking (and re-lowercasing) the
    /// headers. Derived state: never serialized, recomputed on deserialize
    /// (see the manual serde impls below), so a hand-edited data file cannot
    /// smuggle in a fingerprint describing a different shape.
    fingerprint: u64,
    /// Precomputed *content* fingerprint: the shape fingerprint extended
    /// with every cell's canonical bytes (see
    /// [`crate::column::ColumnData::hash_content`]). Two tables with equal
    /// content fingerprints answer every question identically (up to hash
    /// collision), which is what answer caches key on — the shape
    /// fingerprint deliberately ignores cell contents and would alias
    /// them. Derived state, like `fingerprint`: never serialized.
    content_fingerprint: u64,
}

impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        // Same observable contents as the row-major derive produced:
        // name, columns, and every cell under `Value` equality.
        self.name == other.name
            && self.columns == other.columns
            && self.num_records == other.num_records
            && (0..self.num_records).all(|r| {
                (0..self.cols.len()).all(|c| match self.cols[c].value_at(r) {
                    Some(v) => other.cols[c].eq_at(r, &v),
                    None => false,
                })
            })
    }
}

impl Serialize for Table {
    fn to_value(&self) -> serde::Value {
        // Field-name map matching what `#[derive(Serialize)]` produced when
        // the table stored `rows: Vec<Vec<Value>>` — the wire format is
        // byte-identical: rows are materialized from the columns, cell
        // values bit-exact.
        let rows: Vec<Vec<Value>> = (0..self.num_records)
            .map(|r| {
                self.cols
                    .iter()
                    .map(|col| col.value_at(r).expect("record in range"))
                    .collect()
            })
            .collect();
        serde::Value::Map(vec![
            ("name".to_string(), self.name.to_value()),
            ("columns".to_string(), self.columns.to_value()),
            ("rows".to_string(), rows.to_value()),
        ])
    }
}

impl Deserialize for Table {
    fn from_value(value: &serde::Value) -> std::result::Result<Table, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for Table"))?;
        let name = String::from_value(serde::map_get(entries, "name"))?;
        let columns = Vec::<Column>::from_value(serde::map_get(entries, "columns"))?;
        let rows = Vec::<Vec<Value>>::from_value(serde::map_get(entries, "rows"))?;
        Ok(Table::from_parts(name, columns, rows))
    }
}

impl Table {
    /// Build a table from a name, header names and rows of cell text that will
    /// be value-parsed. Convenience for tests, samples and examples.
    pub fn from_rows<S: AsRef<str>>(
        name: &str,
        headers: &[S],
        rows: &[Vec<&str>],
    ) -> Result<Table> {
        let mut builder = TableBuilder::new(name);
        for header in headers {
            builder = builder.column(header.as_ref());
        }
        for row in rows {
            builder = builder.row_text(row)?;
        }
        builder.build()
    }

    /// Assemble from already-validated parts, transposing row-major cells
    /// into typed columns. Short rows are padded with empty cells, extra
    /// cells dropped (data files are written by us, so ragged rows only
    /// arise from hand edits).
    fn from_parts(name: String, columns: Vec<Column>, rows: Vec<Vec<Value>>) -> Table {
        let num_records = rows.len();
        // The fingerprint is derived, not trusted from the data file.
        let fingerprint = shape_fingerprint(&columns, num_records);
        let mut per_column: Vec<Vec<Value>> = columns
            .iter()
            .map(|_| Vec::with_capacity(num_records))
            .collect();
        for row in rows {
            let mut cells = row.into_iter();
            for column in per_column.iter_mut() {
                column.push(cells.next().unwrap_or_else(|| Value::Str(String::new())));
            }
        }
        let cols: Vec<ColumnData> = per_column
            .into_iter()
            .map(ColumnData::from_values)
            .collect();
        let content_fingerprint = content_fingerprint(fingerprint, &cols);
        Table {
            name,
            columns,
            cols,
            num_records,
            fingerprint,
            content_fingerprint,
        }
    }

    /// The table's name (used by [`crate::Catalog`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The precomputed shape fingerprint: a 64-bit FNV-1a hash of the record
    /// count, column count, case-normalized header names and inferred column
    /// types. Two tables with equal fingerprints have (up to hash collision)
    /// the same shape; differing cell *contents* are deliberately not
    /// captured, exactly like the header walk this replaces — index caches
    /// must still be scoped to one catalog.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The precomputed content fingerprint: the shape fingerprint extended
    /// with every cell's canonical bytes. Unlike [`Table::fingerprint`],
    /// differing cell contents produce differing fingerprints (up to hash
    /// collision), so equal content fingerprints mean the tables answer
    /// every question identically — the property answer caches need. The
    /// table *name* is still excluded: renaming a table does not change
    /// its answers.
    pub fn content_fingerprint(&self) -> u64 {
        self.content_fingerprint
    }

    /// All columns in header order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of records (rows).
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.num_records == 0
    }

    /// Index of the column with the given (case-insensitive) header.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name.trim()))
    }

    /// Like [`Table::column_index`] but returns an error naming the column.
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_index(name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    }

    /// Header name of a column by index.
    pub fn column_name(&self, column: usize) -> &str {
        &self.columns[column].name
    }

    /// Inferred type of a column by index.
    pub fn column_type(&self, column: usize) -> ColumnType {
        self.columns[column].column_type
    }

    /// Materialize the record (row) at `index` as owned values — the one
    /// sanctioned row materializer, for `SELECT *` projections, CSV export
    /// and sampling. Everything else should use the cell accessors below.
    pub fn record_values(&self, index: RecordIdx) -> Result<Vec<Value>> {
        if index >= self.num_records {
            return Err(TableError::RecordOutOfBounds {
                index,
                len: self.num_records,
            });
        }
        Ok(self
            .cols
            .iter()
            .map(|col| col.value_at(index).expect("record in range"))
            .collect())
    }

    /// Value of the cell at `(record, column)`, if in bounds. Owned:
    /// reconstructed bit-exact from the typed column storage.
    pub fn value_at(&self, record: RecordIdx, column: usize) -> Option<Value> {
        self.cols.get(column).and_then(|col| col.value_at(record))
    }

    /// Display text of the cell at a [`CellRef`] — the provenance
    /// renderers' shim; equals `value.to_string()` of the cell. Panics on an
    /// out-of-range column (cell refs are only produced by evaluation over
    /// the same table, so OOB is a logic error).
    pub fn cell_text(&self, cell: CellRef) -> String {
        self.cols[cell.column].text_at(cell.record)
    }

    /// The cell's numeric content (`Value::as_number` semantics) without
    /// materializing a [`Value`]. `None` out of bounds or non-numeric.
    pub fn number_at(&self, record: RecordIdx, column: usize) -> Option<f64> {
        self.cols.get(column).and_then(|col| col.number_at(record))
    }

    /// Whether the cell at `(record, column)` equals `needle` under
    /// [`Value`] equality, without materializing the cell. `false` out of
    /// bounds.
    pub fn eq_at(&self, record: RecordIdx, column: usize, needle: &Value) -> bool {
        self.cols
            .get(column)
            .is_some_and(|col| col.eq_at(record, needle))
    }

    /// Typed view of an all-numeric column, when `column` is stored as one.
    pub fn column_f64(&self, column: usize) -> Option<F64Column<'_>> {
        match self.cols.get(column)? {
            ColumnData::F64 { values, nulls } => Some(F64Column { values, nulls }),
            _ => None,
        }
    }

    /// Typed view of a dictionary-encoded string column, when `column` is
    /// stored as one.
    pub fn column_dict(&self, column: usize) -> Option<DictColumn<'_>> {
        match self.cols.get(column)? {
            ColumnData::Dict(data) => Some(DictColumn { data }),
            _ => None,
        }
    }

    /// Typed view of an all-date column, when `column` is stored as one.
    pub fn column_date(&self, column: usize) -> Option<DateColumn<'_>> {
        match self.cols.get(column)? {
            ColumnData::Date { ords } => Some(DateColumn { ords }),
            _ => None,
        }
    }

    /// The dense numeric vector of `column` when every cell is numeric —
    /// the no-branch fast path for aggregate kernels.
    pub fn dense_f64(&self, column: usize) -> Option<&[f64]> {
        self.cols.get(column)?.dense_f64()
    }

    /// All cells of one column, top to bottom.
    pub fn column_cells(&self, column: usize) -> impl Iterator<Item = CellRef> + '_ {
        (0..self.num_records()).map(move |record| CellRef::new(record, column))
    }

    /// All record indices `0..n`, in table order.
    pub fn record_indices(&self) -> impl Iterator<Item = RecordIdx> {
        0..self.num_records()
    }

    /// The `Prev` pointer of §3.1: the record directly above, if any.
    pub fn prev_record(&self, record: RecordIdx) -> Option<RecordIdx> {
        if record == 0 || record >= self.num_records() {
            None
        } else {
            Some(record - 1)
        }
    }

    /// The inverse of `Prev` (`R[Prev]` in lambda DCS): the record directly
    /// below, if any.
    pub fn next_record(&self, record: RecordIdx) -> Option<RecordIdx> {
        let next = record + 1;
        (next < self.num_records()).then_some(next)
    }

    /// Records whose cell in `column` equals `value`, ascending — the
    /// binary relation `Column.value` of the KB view (e.g. `Country.Greece`)
    /// as a batch kernel over the typed column. Semantics identical to a
    /// per-row `value_at == value` scan.
    pub fn filter_eq(&self, column: usize, value: &Value) -> Vec<RecordIdx> {
        self.cols[column].filter_eq(value)
    }

    /// Records whose cell in `column` equals *any* of `values`, ascending
    /// and deduplicated — the batch kernel behind `IN (…)` predicates.
    pub fn filter_in(&self, column: usize, values: &[Value]) -> Vec<RecordIdx> {
        let mut out: Vec<RecordIdx> = Vec::new();
        for value in values {
            out.extend(self.cols[column].filter_eq(value));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Records whose cell in `column` has numeric content satisfying `pred`
    /// — the batch kernel behind numeric comparisons. The predicate sees
    /// exactly the values `Value::as_number` would produce per row
    /// (including NaN cells); non-numeric cells never match.
    pub fn filter_num<F: Fn(f64) -> bool>(&self, column: usize, pred: F) -> Vec<RecordIdx> {
        self.cols[column].filter_num(pred)
    }

    /// Sum of the numeric contents of `column` (non-numeric cells skipped);
    /// `None` when no cell is numeric.
    pub fn stats_sum(&self, column: usize) -> Option<f64> {
        self.cols.get(column)?.stats_sum()
    }

    /// Minimum of the numeric contents of `column`; `None` when no cell is
    /// numeric.
    pub fn stats_min(&self, column: usize) -> Option<f64> {
        self.cols.get(column)?.stats_min()
    }

    /// Maximum of the numeric contents of `column`; `None` when no cell is
    /// numeric.
    pub fn stats_max(&self, column: usize) -> Option<f64> {
        self.cols.get(column)?.stats_max()
    }

    /// Distinct values appearing in `column`, in first-appearance order.
    pub fn distinct_column_values(&self, column: usize) -> Vec<Value> {
        let mut seen: HashSet<Value> = HashSet::new();
        let mut out = Vec::new();
        for record in 0..self.num_records {
            let v = self.cols[column].value_at(record).expect("record in range");
            if seen.insert(v.clone()) {
                out.push(v);
            }
        }
        out
    }

    /// Render as a plain-text grid (used by examples and error messages).
    pub fn to_text_grid(&self) -> String {
        let texts: Vec<Vec<String>> = (0..self.num_records)
            .map(|r| self.cols.iter().map(|col| col.text_at(r)).collect())
            .collect();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name.len()).collect();
        for row in &texts {
            for (i, text) in row.iter().enumerate() {
                widths[i] = widths[i].max(text.len());
            }
        }
        let mut out = String::new();
        for (i, column) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", column.name, width = widths[i]));
        }
        out.push('\n');
        for row in &texts {
            for (i, text) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", text, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text_grid())
    }
}

/// Incremental builder for [`Table`].
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Start a new table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Append a column header. Must be called before any rows are added.
    pub fn column(mut self, name: impl Into<String>) -> Self {
        self.columns.push(name.into());
        self
    }

    /// Append several column headers at once.
    pub fn columns<S: Into<String>, I: IntoIterator<Item = S>>(mut self, names: I) -> Self {
        self.columns.extend(names.into_iter().map(Into::into));
        self
    }

    /// Append a row of already-typed values.
    pub fn row(mut self, values: Vec<Value>) -> Result<Self> {
        if values.len() != self.columns.len() {
            return Err(TableError::RowArity {
                expected: self.columns.len(),
                got: values.len(),
                row: self.rows.len(),
            });
        }
        self.rows.push(values);
        Ok(self)
    }

    /// Append a row of textual cells that will be value-parsed.
    pub fn row_text<S: AsRef<str>>(self, cells: &[S]) -> Result<Self> {
        let values = cells.iter().map(|c| Value::parse(c.as_ref())).collect();
        self.row(values)
    }

    /// Finalize the table, inferring column types, validating headers and
    /// transposing the accumulated rows into typed columns.
    pub fn build(self) -> Result<Table> {
        if self.columns.is_empty() {
            return Err(TableError::EmptyTable);
        }
        let mut seen = HashSet::new();
        for name in &self.columns {
            if !seen.insert(name.to_ascii_lowercase()) {
                return Err(TableError::DuplicateColumn(name.clone()));
            }
        }
        let columns: Vec<Column> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, name)| Column {
                name: name.clone(),
                column_type: infer_column_type(&self.rows, i),
            })
            .collect();
        Ok(Table::from_parts(self.name, columns, self.rows))
    }
}

/// FNV-1a over the table's shape: record count, column count,
/// length-prefixed lowercase header names and column types. Computed once at
/// construction and stored on the table.
fn shape_fingerprint(columns: &[Column], num_records: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut write = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    write(&(num_records as u64).to_le_bytes());
    write(&(columns.len() as u64).to_le_bytes());
    for column in columns {
        // Length-prefixed so adjacent names cannot alias each other.
        write(&(column.name.len() as u64).to_le_bytes());
        for byte in column.name.bytes() {
            write(&[byte.to_ascii_lowercase()]);
        }
        write(&[column_type_tag(column.column_type)]);
    }
    hash
}

/// Extend the shape fingerprint with every column's cell contents (FNV-1a
/// over the canonical bytes each [`ColumnData`] emits). Seeding with the
/// shape hash means shape differences and content differences both
/// perturb the result.
fn content_fingerprint(shape: u64, cols: &[ColumnData]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = shape;
    let mut write = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for col in cols {
        col.hash_content(&mut write);
    }
    hash
}

fn column_type_tag(column_type: ColumnType) -> u8 {
    match column_type {
        ColumnType::Text => 0,
        ColumnType::Number => 1,
        ColumnType::Date => 2,
        ColumnType::Mixed => 3,
    }
}

/// A column's type is the strict-majority type of its non-empty cells.
fn infer_column_type(rows: &[Vec<Value>], column: usize) -> ColumnType {
    let mut text = 0usize;
    let mut number = 0usize;
    let mut date = 0usize;
    let mut total = 0usize;
    for row in rows {
        match &row[column] {
            Value::Str(s) if s.is_empty() => continue,
            Value::Str(_) => text += 1,
            Value::Num(_) => number += 1,
            Value::Date(_) => date += 1,
        }
        total += 1;
    }
    if total == 0 {
        return ColumnType::Text;
    }
    let half = total / 2;
    if number > half {
        ColumnType::Number
    } else if date > half {
        ColumnType::Date
    } else if text > half {
        ColumnType::Text
    } else {
        ColumnType::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn olympics() -> Table {
        Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Beijing"],
                vec!["2012", "UK", "London"],
                vec!["2016", "Brazil", "Rio de Janeiro"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_reports_shape() {
        let t = olympics();
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.num_records(), 6);
        assert_eq!(t.column_name(1), "Country");
        assert_eq!(t.column_type(0), ColumnType::Number);
        assert_eq!(t.column_type(2), ColumnType::Text);
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = olympics();
        assert_eq!(t.column_index("country"), Some(1));
        assert_eq!(t.column_index(" CITY "), Some(2));
        assert_eq!(t.column_index("Missing"), None);
        assert!(t.require_column("Missing").is_err());
    }

    #[test]
    fn prev_and_next_record_pointers() {
        let t = olympics();
        assert_eq!(t.prev_record(0), None);
        assert_eq!(t.prev_record(3), Some(2));
        assert_eq!(t.next_record(5), None);
        assert_eq!(t.next_record(2), Some(3));
        assert_eq!(t.prev_record(99), None);
    }

    #[test]
    fn filter_eq_matches_paper_example() {
        // Country.Greece on the Figure 1 table returns records {0, 2} here
        // (the paper writes {0, n-4} for its elided table).
        let t = olympics();
        let col = t.column_index("Country").unwrap();
        let records = t.filter_eq(col, &Value::str("Greece"));
        assert_eq!(records, vec![0, 2]);
        // Case-insensitively, via the dictionary's folded lookup.
        assert_eq!(t.filter_eq(col, &Value::str("greece")), vec![0, 2]);
    }

    #[test]
    fn filter_in_unions_sorted_and_deduplicated() {
        let t = olympics();
        let col = t.column_index("Country").unwrap();
        let records = t.filter_in(
            col,
            &[
                Value::str("China"),
                Value::str("Greece"),
                Value::str("greece"),
            ],
        );
        assert_eq!(records, vec![0, 2, 3]);
    }

    #[test]
    fn filter_num_applies_predicate_to_numeric_contents() {
        let t = olympics();
        let year = t.column_index("Year").unwrap();
        let country = t.column_index("Country").unwrap();
        assert_eq!(t.filter_num(year, |n| n >= 2008.0), vec![3, 4, 5]);
        // A text column has no numeric contents.
        assert_eq!(t.filter_num(country, |_| true), Vec::<usize>::new());
    }

    #[test]
    fn typed_views_match_storage_layout() {
        let t = olympics();
        let year = t.column_index("Year").unwrap();
        let country = t.column_index("Country").unwrap();
        let years = t.column_f64(year).expect("all-numeric column");
        assert_eq!(years.values()[2], 2004.0);
        assert!(!years.any_null());
        assert_eq!(t.dense_f64(year).unwrap().len(), 6);
        let countries = t.column_dict(country).expect("all-string column");
        assert_eq!(countries.text(0), "Greece");
        // "Greece" appears twice but is interned once.
        assert_eq!(countries.entries().len(), 5);
        assert_eq!(countries.ids()[0], countries.ids()[2]);
        assert!(t.column_f64(country).is_none());
        assert!(t.column_dict(year).is_none());
        assert!(t.column_date(year).is_none());
    }

    #[test]
    fn stats_kernels_fold_numeric_contents() {
        let t = olympics();
        let year = t.column_index("Year").unwrap();
        let country = t.column_index("Country").unwrap();
        assert_eq!(t.stats_min(year), Some(1896.0));
        assert_eq!(t.stats_max(year), Some(2016.0));
        assert_eq!(t.stats_sum(year), Some(11836.0));
        assert_eq!(t.stats_sum(country), None);
    }

    #[test]
    fn cell_accessors_agree_with_materialized_values() {
        let t = olympics();
        for r in t.record_indices() {
            for c in 0..t.num_columns() {
                let v = t.value_at(r, c).unwrap();
                assert!(t.eq_at(r, c, &v));
                assert_eq!(t.number_at(r, c), v.as_number());
                assert_eq!(t.cell_text(CellRef::new(r, c)), v.to_string());
            }
        }
        assert_eq!(t.value_at(6, 0), None);
        assert_eq!(t.number_at(6, 0), None);
        assert!(!t.eq_at(6, 0, &Value::num(1896.0)));
    }

    #[test]
    fn distinct_values_preserve_first_appearance_order() {
        let t = olympics();
        let col = t.column_index("Country").unwrap();
        let distinct = t.distinct_column_values(col);
        assert_eq!(distinct[0], Value::str("Greece"));
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn builder_rejects_bad_shapes() {
        let err = TableBuilder::new("t").build().unwrap_err();
        assert_eq!(err, TableError::EmptyTable);

        let err = TableBuilder::new("t")
            .column("A")
            .column("a")
            .row_text(&["1", "2"])
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::DuplicateColumn(_)));

        let err = TableBuilder::new("t")
            .column("A")
            .row_text(&["1", "2"])
            .unwrap_err();
        assert!(matches!(
            err,
            TableError::RowArity {
                expected: 1,
                got: 2,
                row: 0
            }
        ));
    }

    #[test]
    fn record_out_of_bounds_is_an_error() {
        let t = olympics();
        assert!(t.record_values(5).is_ok());
        assert_eq!(
            t.record_values(2).unwrap(),
            vec![
                Value::num(2004.0),
                Value::str("Greece"),
                Value::str("Athens")
            ]
        );
        assert!(matches!(
            t.record_values(6),
            Err(TableError::RecordOutOfBounds { index: 6, len: 6 })
        ));
    }

    #[test]
    fn text_grid_contains_headers_and_cells() {
        let grid = olympics().to_text_grid();
        assert!(grid.contains("Country"));
        assert!(grid.contains("Rio de Janeiro"));
        assert_eq!(grid.lines().count(), 7);
    }

    #[test]
    fn fingerprint_captures_shape_not_contents_or_name() {
        let a = olympics();
        // Same headers (case-insensitively), record count and column types:
        // same fingerprint, whatever the name and cell contents.
        let b = Table::from_rows(
            "different-name",
            &["YEAR", "country", "city"],
            &[
                vec!["1", "a", "b"],
                vec!["2", "a", "b"],
                vec!["3", "a", "b"],
                vec!["4", "a", "b"],
                vec!["5", "a", "b"],
                vec!["6", "a", "b"],
            ],
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any shape difference changes it: record count, header, type.
        let shorter = Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[vec!["1896", "Greece", "Athens"]],
        )
        .unwrap();
        assert_ne!(a.fingerprint(), shorter.fingerprint());
        let renamed = Table::from_rows(
            "olympics",
            &["Year", "Country", "Town"],
            &[
                vec!["1", "a", "b"],
                vec!["2", "a", "b"],
                vec!["3", "a", "b"],
                vec!["4", "a", "b"],
                vec!["5", "a", "b"],
                vec!["6", "a", "b"],
            ],
        )
        .unwrap();
        assert_ne!(a.fingerprint(), renamed.fingerprint());
        let retyped = Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[
                vec!["1", "a", "9"],
                vec!["2", "a", "9"],
                vec!["3", "a", "9"],
                vec!["4", "a", "9"],
                vec!["5", "a", "9"],
                vec!["6", "a", "9"],
            ],
        )
        .unwrap();
        assert_ne!(a.fingerprint(), retyped.fingerprint());
    }

    #[test]
    fn content_fingerprint_captures_cell_contents_not_name() {
        let a = olympics();
        // Identical contents under a different name: same content
        // fingerprint (renaming a table does not change its answers).
        let renamed = Table::from_rows(
            "other-name",
            &["Year", "Country", "City"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Beijing"],
                vec!["2012", "UK", "London"],
                vec!["2016", "Brazil", "Rio de Janeiro"],
            ],
        )
        .unwrap();
        assert_eq!(a.content_fingerprint(), renamed.content_fingerprint());
        // Same shape, one cell edited: the shape fingerprint aliases, the
        // content fingerprint must not.
        let edited = Table::from_rows(
            "olympics",
            &["Year", "Country", "City"],
            &[
                vec!["1896", "Greece", "Athens"],
                vec!["1900", "France", "Paris"],
                vec!["2004", "Greece", "Athens"],
                vec!["2008", "China", "Shanghai"],
                vec!["2012", "UK", "London"],
                vec!["2016", "Brazil", "Rio de Janeiro"],
            ],
        )
        .unwrap();
        assert_eq!(a.fingerprint(), edited.fingerprint());
        assert_ne!(a.content_fingerprint(), edited.content_fingerprint());
        // It survives the serde roundtrip (recomputed, never serialized).
        let restored = Table::from_value(&a.to_value()).unwrap();
        assert_eq!(restored.content_fingerprint(), a.content_fingerprint());
    }

    #[test]
    fn serde_omits_the_fingerprint_and_recomputes_it() {
        let table = olympics();
        let serialized = table.to_value();
        // The wire format carries only the real data — no derived state a
        // hand-edited file could get wrong.
        let entries = serialized.as_map().unwrap();
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["name", "columns", "rows"]);
        let restored = Table::from_value(&serialized).unwrap();
        assert_eq!(restored, table);
        assert_eq!(restored.fingerprint(), table.fingerprint());
        // A pre-fingerprint data file (same three fields) still loads, and
        // the fingerprint always reflects the deserialized shape.
        let mut tampered_rows: Vec<Vec<Value>> = restored
            .record_indices()
            .map(|r| restored.record_values(r).unwrap())
            .collect();
        tampered_rows.pop();
        let tampered = serde::Value::Map(vec![
            ("name".to_string(), table.name.to_value()),
            ("columns".to_string(), table.columns.to_value()),
            ("rows".to_string(), tampered_rows.to_value()),
        ]);
        let shorter = Table::from_value(&tampered).unwrap();
        assert_ne!(shorter.fingerprint(), table.fingerprint());
    }

    #[test]
    fn mixed_column_type_detected() {
        let t = Table::from_rows(
            "mixed",
            &["A"],
            &[vec!["1"], vec!["x"], vec!["2"], vec!["y"]],
        )
        .unwrap();
        assert_eq!(t.column_type(0), ColumnType::Mixed);
    }
}
