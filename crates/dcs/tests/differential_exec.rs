//! Differential suite: the indexed evaluator must produce denotations —
//! including provenance cell traces — identical to the scan-based reference
//! semantics (`wtq_dcs::reference`) on random tables and random formulas,
//! and a warm evaluator session (denotation cache populated) must agree with
//! a cold one.

use proptest::prelude::*;
use wtq_dcs::{eval_reference, AggregateOp, CompareOp, Evaluator, Formula, SuperlativeOp};
use wtq_table::{Table, TableBuilder, Value};

/// Cell text drawn from a small vocabulary (so joins hit repeated values)
/// plus numbers, dates and arbitrary short strings.
fn cell_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Greece".to_string()),
        Just("Athens".to_string()),
        Just("France".to_string()),
        Just("ab cd".to_string()),
        Just(String::new()),
        (0i32..40).prop_map(|n| n.to_string()),
        (0i32..40).prop_map(|n| n.to_string()),
        (1900i32..2020).prop_map(|y| format!("June {}, {}", (y % 27) + 1, y)),
        proptest::string::string_regex("[a-z]{0,6}")
            .expect("valid regex")
            .prop_map(|s| s),
        (0u32..4000).prop_map(|n| format!("{}.{:02}", n / 100, n % 100)),
    ]
}

/// Random tables: 1–5 columns, 0–16 rows, mixed cell types.
fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..=5, 0usize..=16).prop_flat_map(|(cols, rows)| {
        let header: Vec<String> = (0..cols).map(|i| format!("Col{i}")).collect();
        proptest::collection::vec(proptest::collection::vec(cell_text(), cols), rows).prop_map(
            move |rows| {
                let mut builder = TableBuilder::new("diff").columns(header.clone());
                for row in &rows {
                    builder = builder.row_text(row).expect("arity matches");
                }
                builder.build().expect("non-empty header")
            },
        )
    })
}

/// A column name valid for `num_columns`-wide tables, plus an occasionally
/// unknown one (both engines must report the same error).
fn column_name(num_columns: usize) -> impl Strategy<Value = String> {
    prop_oneof![
        (0..num_columns).prop_map(|i| format!("Col{i}")),
        (0..num_columns).prop_map(|i| format!("Col{i}")),
        (0..num_columns).prop_map(|i| format!("Col{i}")),
        Just("Missing".to_string()),
    ]
}

fn constant() -> impl Strategy<Value = Formula> {
    prop_oneof![
        cell_text().prop_map(|text| Formula::Const(Value::parse(&text))),
        (0i32..40).prop_map(|n| Formula::Const(Value::num(f64::from(n)))),
    ]
}

/// Record-denoting formulas over `cols`-wide tables.
fn records_formula(cols: usize) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::AllRecords),
        (column_name(cols), constant()).prop_map(|(column, values)| Formula::Join {
            column,
            values: Box::new(values)
        }),
        (column_name(cols), 0u8..5, -5f64..45f64).prop_map(|(column, op, threshold)| {
            let op = [
                CompareOp::Lt,
                CompareOp::Leq,
                CompareOp::Gt,
                CompareOp::Geq,
                CompareOp::Neq,
            ][op as usize];
            Formula::CompareJoin {
                column,
                op,
                value: Box::new(Formula::Const(Value::Num(threshold))),
            }
        }),
    ];
    leaf.prop_recursive(3, 24, 4, move |inner| {
        prop_oneof![
            inner.clone().prop_map(|r| Formula::Prev(Box::new(r))),
            inner.clone().prop_map(|r| Formula::Next(Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Intersect(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Union(Box::new(a), Box::new(b))),
            (inner.clone(), column_name(cols), any::<bool>()).prop_map(|(r, column, max)| {
                Formula::SuperlativeRecords {
                    op: if max {
                        SuperlativeOp::Argmax
                    } else {
                        SuperlativeOp::Argmin
                    },
                    records: Box::new(r),
                    column,
                }
            }),
            (inner, any::<bool>()).prop_map(|(r, max)| Formula::RecordIndexSuperlative {
                op: if max {
                    SuperlativeOp::Argmax
                } else {
                    SuperlativeOp::Argmin
                },
                records: Box::new(r),
            }),
        ]
    })
}

/// Any well-formed formula (records, values or numbers) over `cols`-wide
/// tables, including the value-level operators.
fn any_formula(cols: usize) -> impl Strategy<Value = Formula> {
    records_formula(cols).prop_flat_map(move |records| {
        let projected = records.clone();
        let counted = records.clone();
        let compared = records.clone();
        prop_oneof![
            Just(records),
            column_name(cols).prop_map(move |column| Formula::ColumnValues {
                column,
                records: Box::new(projected.clone()),
            }),
            (column_name(cols), 0u8..5).prop_map(move |(column, op)| {
                let op = [
                    AggregateOp::Count,
                    AggregateOp::Max,
                    AggregateOp::Min,
                    AggregateOp::Sum,
                    AggregateOp::Avg,
                ][op as usize];
                Formula::Aggregate {
                    op,
                    sub: Box::new(Formula::ColumnValues {
                        column,
                        records: Box::new(counted.clone()),
                    }),
                }
            }),
            (column_name(cols), column_name(cols), any::<bool>()).prop_map(
                move |(column, values_col, max)| {
                    let op = if max {
                        SuperlativeOp::Argmax
                    } else {
                        SuperlativeOp::Argmin
                    };
                    Formula::MostCommonValue {
                        op,
                        values: Box::new(Formula::ColumnValues {
                            column: values_col,
                            records: Box::new(Formula::AllRecords),
                        }),
                        column,
                    }
                }
            ),
            (
                column_name(cols),
                column_name(cols),
                constant(),
                any::<bool>()
            )
                .prop_map(move |(key_column, value_column, value, max)| {
                    Formula::CompareValues {
                        op: if max {
                            SuperlativeOp::Argmax
                        } else {
                            SuperlativeOp::Argmin
                        },
                        values: Box::new(Formula::Union(
                            Box::new(value),
                            Box::new(Formula::ColumnValues {
                                column: value_column.clone(),
                                records: Box::new(compared.clone()),
                            }),
                        )),
                        key_column,
                        value_column,
                    }
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Indexed execution equals the scan reference: same denotations (values
    /// in the same order with the same cell traces, identical record sets,
    /// identical numbers) and same errors.
    #[test]
    fn indexed_eval_matches_scan_reference(
        (table, formula) in table_strategy()
            .prop_flat_map(|t| {
                let cols = t.num_columns();
                (Just(t), any_formula(cols))
            })
    ) {
        let session = Evaluator::new(&table);
        prop_assert_eq!(session.eval(&formula), eval_reference(&formula, &table));
    }

    /// A warm session (memoized record denotations) agrees with the scan
    /// reference on every formula of a pool sharing subformulas — the
    /// cross-candidate cache must never change results.
    #[test]
    fn warm_session_matches_scan_reference(
        (table, base) in table_strategy()
            .prop_flat_map(|t| {
                let cols = t.num_columns();
                (Just(t), records_formula(cols))
            })
    ) {
        let session = Evaluator::new(&table);
        let pool: Vec<Formula> = (0..table.num_columns())
            .flat_map(|c| {
                let projection = Formula::ColumnValues {
                    column: format!("Col{c}"),
                    records: Box::new(base.clone()),
                };
                vec![
                    projection.clone(),
                    Formula::aggregate(AggregateOp::Count, base.clone()),
                    Formula::aggregate(AggregateOp::Max, projection),
                    Formula::SuperlativeRecords {
                        op: SuperlativeOp::Argmax,
                        records: Box::new(base.clone()),
                        column: format!("Col{c}"),
                    },
                ]
            })
            .collect();
        // Evaluate the pool twice: second pass is fully cache-backed.
        for formula in pool.iter().chain(pool.iter()) {
            prop_assert_eq!(session.eval(formula), eval_reference(formula, &table));
        }
    }

    /// Traced provenance cells always point at in-bounds cells that really
    /// hold the traced value.
    #[test]
    fn traces_point_at_matching_cells(
        (table, formula) in table_strategy()
            .prop_flat_map(|t| {
                let cols = t.num_columns();
                (Just(t), any_formula(cols))
            })
    ) {
        let session = Evaluator::new(&table);
        if let Ok(wtq_dcs::Denotation::Values(values)) = session.eval(&formula) {
            for tv in &values {
                for cell in &tv.cells {
                    let held = table.value_at(cell.record, cell.column);
                    prop_assert_eq!(held, Some(tv.value.clone()));
                }
            }
        }
    }
}
