//! Property-based tests for the lambda DCS language.

use proptest::prelude::*;
use wtq_dcs::{eval, parse_formula, typecheck, AggregateOp, CompareOp, Formula, SuperlativeOp};
use wtq_table::{samples, Value};

/// Strategy over column names of the Olympics sample table.
fn olympics_column() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Year".to_string()),
        Just("Country".to_string()),
        Just("City".to_string())
    ]
}

/// Strategy over constants likely (and unlikely) to appear in the table.
fn constant() -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::Const(Value::str("Greece"))),
        Just(Formula::Const(Value::str("Athens"))),
        Just(Formula::Const(Value::str("London"))),
        Just(Formula::Const(Value::str("Nowhere"))),
        (1890i32..2020).prop_map(|y| Formula::Const(Value::num(f64::from(y)))),
    ]
}

/// Record-denoting formulas over the Olympics table, recursively composed.
fn records_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::AllRecords),
        (olympics_column(), constant()).prop_map(|(column, values)| Formula::Join {
            column,
            values: Box::new(values)
        }),
        (any::<bool>(), 1890f64..2020f64).prop_map(|(gt, threshold)| Formula::CompareJoin {
            column: "Year".to_string(),
            op: if gt { CompareOp::Gt } else { CompareOp::Leq },
            value: Box::new(Formula::Const(Value::Num(threshold.round()))),
        }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|r| Formula::Prev(Box::new(r))),
            inner.clone().prop_map(|r| Formula::Next(Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Intersect(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Union(Box::new(a), Box::new(b))),
            (inner.clone(), olympics_column(), any::<bool>()).prop_map(|(r, column, max)| {
                Formula::SuperlativeRecords {
                    op: if max {
                        SuperlativeOp::Argmax
                    } else {
                        SuperlativeOp::Argmin
                    },
                    records: Box::new(r),
                    column,
                }
            }),
            (inner, any::<bool>()).prop_map(|(r, max)| Formula::RecordIndexSuperlative {
                op: if max {
                    SuperlativeOp::Argmax
                } else {
                    SuperlativeOp::Argmin
                },
                records: Box::new(r),
            }),
        ]
    })
}

/// Arbitrary well-typed formulas (records, values or numbers).
fn any_formula() -> impl Strategy<Value = Formula> {
    records_formula().prop_flat_map(|records| {
        let records2 = records.clone();
        prop_oneof![
            Just(records.clone()),
            olympics_column().prop_map(move |column| Formula::ColumnValues {
                column,
                records: Box::new(records.clone()),
            }),
            (olympics_column(), any::<u8>()).prop_map(move |(column, op)| {
                let op = match op % 3 {
                    0 => AggregateOp::Count,
                    1 => AggregateOp::Max,
                    _ => AggregateOp::Min,
                };
                Formula::Aggregate {
                    op,
                    sub: Box::new(Formula::ColumnValues {
                        column: column.clone(),
                        records: Box::new(records2.clone()),
                    }),
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The concrete syntax round-trips: display then parse gives back the
    /// same AST.
    #[test]
    fn display_parse_roundtrip(formula in any_formula()) {
        let text = formula.to_string();
        let reparsed = parse_formula(&text)
            .unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        prop_assert_eq!(formula, reparsed);
    }

    /// Well-typed formulas evaluate without type errors (only data-dependent
    /// errors such as aggregating an empty set are allowed), and when they do
    /// evaluate the denotation kind matches the static type.
    #[test]
    fn typecheck_predicts_evaluation(formula in any_formula()) {
        use wtq_dcs::{Denotation, DcsError, FormulaType};
        let table = samples::olympics();
        let static_type = typecheck(&formula).expect("generated formulas are well typed");
        match eval(&formula, &table) {
            Ok(denotation) => {
                let dynamic = match denotation {
                    Denotation::Records(_) => FormulaType::Records,
                    Denotation::Values(_) => FormulaType::Values,
                    Denotation::Number(_) => FormulaType::Number,
                };
                prop_assert_eq!(static_type, dynamic);
            }
            Err(DcsError::Cardinality { .. }) | Err(DcsError::NonNumeric { .. }) => {
                // Data-dependent failures (empty aggregates, text in numeric
                // aggregates) are acceptable; type errors are not.
            }
            Err(other) => prop_assert!(false, "unexpected evaluation error: {other}"),
        }
    }

    /// Record-denoting formulas always denote a subset of the table's records.
    #[test]
    fn record_denotations_stay_in_bounds(formula in records_formula()) {
        let table = samples::olympics();
        if let Ok(denotation) = eval(&formula, &table) {
            if let Some(records) = denotation.records() {
                for &r in records {
                    prop_assert!(r < table.num_records());
                }
            }
        }
    }

    /// Union is commutative and intersection is commutative on record sets.
    #[test]
    fn union_and_intersection_commute(a in records_formula(), b in records_formula()) {
        let table = samples::olympics();
        let ab = eval(&Formula::Union(Box::new(a.clone()), Box::new(b.clone())), &table);
        let ba = eval(&Formula::Union(Box::new(b.clone()), Box::new(a.clone())), &table);
        if let (Ok(x), Ok(y)) = (ab, ba) {
            prop_assert_eq!(x.records(), y.records());
        }
        let ab = eval(&Formula::Intersect(Box::new(a.clone()), Box::new(b.clone())), &table);
        let ba = eval(&Formula::Intersect(Box::new(b), Box::new(a)), &table);
        if let (Ok(x), Ok(y)) = (ab, ba) {
            prop_assert_eq!(x.records(), y.records());
        }
    }

    /// The superlative of a record set is always a non-strict subset of it.
    #[test]
    fn superlative_is_a_subset(records in records_formula(), max in any::<bool>()) {
        let table = samples::olympics();
        let op = if max { SuperlativeOp::Argmax } else { SuperlativeOp::Argmin };
        let sup = Formula::SuperlativeRecords {
            op,
            records: Box::new(records.clone()),
            column: "Year".to_string(),
        };
        if let (Ok(base), Ok(selected)) = (eval(&records, &table), eval(&sup, &table)) {
            let base = base.records().cloned().unwrap_or_default();
            let selected = selected.records().cloned().unwrap_or_default();
            prop_assert!(selected.is_subset(&base));
            if !base.is_empty() {
                prop_assert!(!selected.is_empty());
            }
        }
    }
}
