//! Scan-based reference evaluator (executable specification).
//!
//! This module preserves the pre-index, row-scanning execution semantics of
//! the lambda DCS evaluator: every join, comparison and superlative walks the
//! table rows directly, with no inverted indexes, no sorted projections and
//! no memoization. It exists for two reasons:
//!
//! 1. **Differential testing** — the proptest suites assert that the indexed
//!    [`crate::Evaluator`] produces denotations (including provenance cell
//!    traces) identical to this implementation on random tables and formulas.
//! 2. **Benchmark baseline** — the `operator_matrix` and `exec_layer`
//!    benches report indexed-vs-scan speedups against this implementation.
//!
//! Keep this module boring: clarity over speed, one pass per operator.

use std::collections::BTreeSet;

use wtq_table::{CellRef, RecordIdx, Table, Value};

use crate::ast::{AggregateOp, Formula, SuperlativeOp};
use crate::error::DcsError;
use crate::eval::{Denotation, TracedValue, MAX_EVAL_DEPTH};
use crate::Result;

/// Evaluate `formula` against `table` with the scan-based reference
/// semantics. The result must always equal `crate::eval(formula, table)`.
pub fn eval_reference(formula: &Formula, table: &Table) -> Result<Denotation> {
    eval_depth(formula, table, 0)
}

fn eval_depth(formula: &Formula, table: &Table, depth: usize) -> Result<Denotation> {
    if depth > MAX_EVAL_DEPTH {
        return Err(DcsError::DepthExceeded(MAX_EVAL_DEPTH));
    }
    match formula {
        Formula::Const(value) => Ok(eval_const(table, value)),
        Formula::AllRecords => Ok(Denotation::Records(table.record_indices().collect())),
        Formula::Join { column, values } => {
            let column_idx = column_of(table, column)?;
            let values = eval_depth(values, table, depth + 1)?;
            let wanted: Vec<Value> = match values {
                Denotation::Values(v) => v.into_iter().map(|tv| tv.value).collect(),
                Denotation::Number(n) => vec![Value::Num(n)],
                Denotation::Records(_) => {
                    return Err(DcsError::TypeMismatch {
                        operator: "join",
                        expected: "values",
                        found: "records",
                    })
                }
            };
            let mut records = BTreeSet::new();
            for value in &wanted {
                records.extend(table.filter_eq(column_idx, value));
            }
            Ok(Denotation::Records(records))
        }
        Formula::CompareJoin { column, op, value } => {
            let column_idx = column_of(table, column)?;
            let value = eval_depth(value, table, depth + 1)?;
            let threshold = value.as_single_number().ok_or(DcsError::Cardinality {
                operator: "comparison",
                expected: "a single numeric value",
                got: value.len(),
            })?;
            let mut records = BTreeSet::new();
            for record in table.record_indices() {
                if let Some(number) = table.number_at(record, column_idx) {
                    if op.compare(number, threshold) {
                        records.insert(record);
                    }
                }
            }
            Ok(Denotation::Records(records))
        }
        Formula::ColumnValues { column, records } => {
            let column_idx = column_of(table, column)?;
            let records = eval_depth(records, table, depth + 1)?;
            let records = expect_records("column projection", records)?;
            Ok(project_column(table, column_idx, &records))
        }
        Formula::Prev(sub) => {
            let records = expect_records("Prev", eval_depth(sub, table, depth + 1)?)?;
            Ok(Denotation::Records(
                records
                    .iter()
                    .filter_map(|&r| table.prev_record(r))
                    .collect(),
            ))
        }
        Formula::Next(sub) => {
            let records = expect_records("R[Prev]", eval_depth(sub, table, depth + 1)?)?;
            Ok(Denotation::Records(
                records
                    .iter()
                    .filter_map(|&r| table.next_record(r))
                    .collect(),
            ))
        }
        Formula::Intersect(a, b) => {
            let left = eval_depth(a, table, depth + 1)?;
            let right = eval_depth(b, table, depth + 1)?;
            match (left, right) {
                (Denotation::Records(a), Denotation::Records(b)) => {
                    Ok(Denotation::Records(a.intersection(&b).copied().collect()))
                }
                (Denotation::Values(a), Denotation::Values(b)) => Ok(Denotation::Values(
                    a.into_iter()
                        .filter(|tv| b.iter().any(|other| other.value == tv.value))
                        .collect(),
                )),
                (left, right) => Err(DcsError::TypeMismatch {
                    operator: "intersection",
                    expected: "two record sets or two value sets",
                    found: if matches!(left, Denotation::Number(_)) {
                        left.kind()
                    } else {
                        right.kind()
                    },
                }),
            }
        }
        Formula::Union(a, b) => {
            let left = eval_depth(a, table, depth + 1)?;
            let right = eval_depth(b, table, depth + 1)?;
            match (left, right) {
                (Denotation::Records(a), Denotation::Records(b)) => {
                    Ok(Denotation::Records(a.union(&b).copied().collect()))
                }
                (Denotation::Values(mut a), Denotation::Values(b)) => {
                    for tv in b {
                        if let Some(existing) = a.iter_mut().find(|e| e.value == tv.value) {
                            existing.cells.extend(tv.cells);
                            existing.cells.sort_unstable();
                            existing.cells.dedup();
                        } else {
                            a.push(tv);
                        }
                    }
                    Ok(Denotation::Values(a))
                }
                (left, right) => Err(DcsError::TypeMismatch {
                    operator: "union",
                    expected: "two record sets or two value sets",
                    found: if matches!(left, Denotation::Number(_)) {
                        left.kind()
                    } else {
                        right.kind()
                    },
                }),
            }
        }
        Formula::Aggregate { op, sub } => {
            let inner = eval_depth(sub, table, depth + 1)?;
            eval_aggregate(*op, inner)
        }
        Formula::SuperlativeRecords {
            op,
            records,
            column,
        } => {
            let column_idx = column_of(table, column)?;
            let records = expect_records("superlative", eval_depth(records, table, depth + 1)?)?;
            Ok(Denotation::Records(superlative_records(
                table, *op, &records, column_idx,
            )))
        }
        Formula::RecordIndexSuperlative { op, records } => {
            let records =
                expect_records("index superlative", eval_depth(records, table, depth + 1)?)?;
            let chosen = match op {
                SuperlativeOp::Argmax => records.iter().next_back().copied(),
                SuperlativeOp::Argmin => records.iter().next().copied(),
            };
            Ok(Denotation::Records(chosen.into_iter().collect()))
        }
        Formula::MostCommonValue { op, values, column } => {
            let column_idx = column_of(table, column)?;
            let values = eval_depth(values, table, depth + 1)?;
            let candidates = match values {
                Denotation::Values(v) => v,
                other => {
                    return Err(DcsError::TypeMismatch {
                        operator: "most_common",
                        expected: "values",
                        found: other.kind(),
                    })
                }
            };
            if candidates.is_empty() {
                return Ok(Denotation::Values(Vec::new()));
            }
            let counts: Vec<usize> = candidates
                .iter()
                .map(|tv| table.filter_eq(column_idx, &tv.value).len())
                .collect();
            let best = match op {
                SuperlativeOp::Argmax => counts.iter().copied().max().unwrap_or(0),
                SuperlativeOp::Argmin => counts.iter().copied().min().unwrap_or(0),
            };
            let out: Vec<TracedValue> = candidates
                .into_iter()
                .zip(counts)
                .filter(|(_, count)| *count == best)
                .map(|(tv, _)| {
                    let cells = table
                        .filter_eq(column_idx, &tv.value)
                        .into_iter()
                        .map(|record| CellRef::new(record, column_idx))
                        .collect();
                    TracedValue {
                        value: tv.value,
                        cells,
                    }
                })
                .collect();
            Ok(Denotation::Values(out))
        }
        Formula::CompareValues {
            op,
            values,
            key_column,
            value_column,
        } => {
            let key_idx = column_of(table, key_column)?;
            let value_idx = column_of(table, value_column)?;
            let values = eval_depth(values, table, depth + 1)?;
            let candidates = match values {
                Denotation::Values(v) => v,
                other => {
                    return Err(DcsError::TypeMismatch {
                        operator: "compare",
                        expected: "values",
                        found: other.kind(),
                    })
                }
            };
            let mut rows: Vec<RecordIdx> = Vec::new();
            for tv in &candidates {
                rows.extend(table.filter_eq(value_idx, &tv.value));
            }
            rows.sort_unstable();
            rows.dedup();
            let mut best: Option<Value> = None;
            for &record in &rows {
                let Some(key) = table.value_at(record, key_idx) else {
                    continue;
                };
                let better = match (&best, op) {
                    (None, _) => true,
                    (Some(current), SuperlativeOp::Argmax) => &key > current,
                    (Some(current), SuperlativeOp::Argmin) => &key < current,
                };
                if better {
                    best = Some(key);
                }
            }
            let Some(best) = best else {
                return Ok(Denotation::Values(Vec::new()));
            };
            let mut out: Vec<TracedValue> = Vec::new();
            for &record in &rows {
                if !table.eq_at(record, key_idx, &best) {
                    continue;
                }
                let Some(value) = table.value_at(record, value_idx) else {
                    continue;
                };
                let cell = CellRef::new(record, value_idx);
                if let Some(existing) = out.iter_mut().find(|tv| tv.value == value) {
                    existing.cells.push(cell);
                } else {
                    out.push(TracedValue {
                        value,
                        cells: vec![cell],
                    });
                }
            }
            Ok(Denotation::Values(out))
        }
        Formula::Sub(a, b) => {
            let left = eval_depth(a, table, depth + 1)?;
            let right = eval_depth(b, table, depth + 1)?;
            let left = expect_number("difference", &left)?;
            let right = expect_number("difference", &right)?;
            Ok(Denotation::Number(left - right))
        }
    }
}

fn column_of(table: &Table, name: &str) -> Result<usize> {
    table
        .column_index(name)
        .ok_or_else(|| DcsError::UnknownColumn(name.to_string()))
}

fn eval_const(table: &Table, value: &Value) -> Denotation {
    let mut cells = Vec::new();
    for column in 0..table.num_columns() {
        for record in table.record_indices() {
            if table.eq_at(record, column, value) {
                cells.push(CellRef::new(record, column));
            }
        }
    }
    cells.sort_unstable();
    Denotation::Values(vec![TracedValue {
        value: value.clone(),
        cells,
    }])
}

fn project_column(table: &Table, column: usize, records: &BTreeSet<RecordIdx>) -> Denotation {
    let mut out: Vec<TracedValue> = Vec::new();
    for &record in records {
        let Some(value) = table.value_at(record, column) else {
            continue;
        };
        let cell = CellRef::new(record, column);
        if let Some(existing) = out.iter_mut().find(|tv| tv.value == value) {
            existing.cells.push(cell);
        } else {
            out.push(TracedValue {
                value,
                cells: vec![cell],
            });
        }
    }
    Denotation::Values(out)
}

fn superlative_records(
    table: &Table,
    op: SuperlativeOp,
    records: &BTreeSet<RecordIdx>,
    column: usize,
) -> BTreeSet<RecordIdx> {
    let mut best: Option<Value> = None;
    for &record in records {
        let Some(value) = table.value_at(record, column) else {
            continue;
        };
        let better = match (&best, op) {
            (None, _) => true,
            (Some(current), SuperlativeOp::Argmax) => &value > current,
            (Some(current), SuperlativeOp::Argmin) => &value < current,
        };
        if better {
            best = Some(value);
        }
    }
    let Some(best) = best else {
        return BTreeSet::new();
    };
    records
        .iter()
        .copied()
        .filter(|&record| table.eq_at(record, column, &best))
        .collect()
}

fn expect_records(operator: &'static str, denotation: Denotation) -> Result<BTreeSet<RecordIdx>> {
    match denotation {
        Denotation::Records(r) => Ok(r),
        other => Err(DcsError::TypeMismatch {
            operator,
            expected: "records",
            found: other.kind(),
        }),
    }
}

fn expect_number(operator: &'static str, denotation: &Denotation) -> Result<f64> {
    denotation
        .as_single_number()
        .ok_or_else(|| match denotation {
            Denotation::Values(v) => DcsError::Cardinality {
                operator,
                expected: "a single numeric value",
                got: v.len(),
            },
            other => DcsError::TypeMismatch {
                operator,
                expected: "a number",
                found: other.kind(),
            },
        })
}

fn eval_aggregate(op: AggregateOp, inner: Denotation) -> Result<Denotation> {
    if op == AggregateOp::Count {
        return Ok(Denotation::Number(match &inner {
            Denotation::Records(r) => r.len() as f64,
            Denotation::Values(v) => v.iter().map(|tv| tv.cells.len().max(1)).sum::<usize>() as f64,
            Denotation::Number(_) => 1.0,
        }));
    }
    let numbers = match &inner {
        Denotation::Values(values) => {
            let mut numbers = Vec::with_capacity(values.len());
            for tv in values {
                let occurrences = tv.cells.len().max(1);
                let number = tv.value.as_number().ok_or_else(|| DcsError::NonNumeric {
                    operator: op.name(),
                    value: tv.value.to_string(),
                })?;
                numbers.extend(std::iter::repeat_n(number, occurrences));
            }
            numbers
        }
        Denotation::Number(n) => vec![*n],
        Denotation::Records(_) => {
            return Err(DcsError::TypeMismatch {
                operator: op.name(),
                expected: "values",
                found: "records",
            })
        }
    };
    if numbers.is_empty() {
        return Err(DcsError::Cardinality {
            operator: op.name(),
            expected: "a non-empty value set",
            got: 0,
        });
    }
    let result = match op {
        AggregateOp::Max => numbers.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggregateOp::Min => numbers.iter().copied().fold(f64::INFINITY, f64::min),
        AggregateOp::Sum => numbers.iter().sum(),
        AggregateOp::Avg => numbers.iter().sum::<f64>() / numbers.len() as f64,
        AggregateOp::Count => unreachable!("count handled above"),
    };
    Ok(Denotation::Number(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval, parse_formula};
    use wtq_table::samples;

    #[test]
    fn reference_agrees_with_indexed_on_paper_examples() {
        let olympics = samples::olympics();
        let wrecks = samples::shipwrecks();
        let squad = samples::squad();
        let cases: Vec<(&str, &Table)> = vec![
            ("City.Athens", &olympics),
            ("R[Year].City.Athens", &olympics),
            ("R[Year].Prev.City.Athens", &olympics),
            ("sum(R[Year].City.Athens)", &olympics),
            ("sub(R[Year].City.London, R[Year].City.Beijing)", &olympics),
            ("(City.London and Country.UK)", &olympics),
            ("(Country.China or Country.Greece)", &olympics),
            ("argmax(Rows, Year)", &olympics),
            ("R[Year].last(City.Athens)", &olympics),
            ("most_common((Athens or London), City)", &olympics),
            ("compare_max((London or Beijing), Year, City)", &olympics),
            ("most_common(R[Lake].Rows, Lake)", &wrecks),
            ("Games.(> 4)", &squad),
            ("(Games.(>= 5) and Games.(< 17))", &squad),
        ];
        for (text, table) in cases {
            let formula = parse_formula(text).expect("parses");
            // Compare full results: denotations (with cell traces) must match
            // and data-dependent errors must match too.
            assert_eq!(
                eval_reference(&formula, table),
                eval(&formula, table),
                "divergence on {text}"
            );
        }
    }

    #[test]
    fn reference_reports_same_errors() {
        let table = samples::olympics();
        let bad = parse_formula("R[Missing].City.Athens").unwrap();
        assert_eq!(
            eval_reference(&bad, &table).unwrap_err(),
            eval(&bad, &table).unwrap_err()
        );
    }
}
