//! Canonicalized query answers.
//!
//! The weak supervision of §6.2 compares a candidate query's execution result
//! `z(T)` against the gold answer `y` (the indicator `r(z|T, y)`). Execution
//! results are [`crate::Denotation`]s, which carry cell traces and record
//! indices; an [`Answer`] strips those down to the comparable core: a
//! multiset-free, order-free set of values, or a single number. A record-set
//! denotation is answered by itself only through projection, so records
//! canonicalize to their indices (useful in tests, never produced by the
//! dataset's gold queries).

use serde::{Deserialize, Serialize};

use wtq_table::value::numbers_equal;
use wtq_table::Value;

use crate::eval::Denotation;

/// A canonical query answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Answer {
    /// A set of values, sorted so comparison is order-insensitive.
    Values(Vec<Value>),
    /// A single number (aggregate / arithmetic result).
    Number(f64),
    /// A set of record indices (only used when a gold query denotes records).
    Records(Vec<usize>),
}

impl Answer {
    /// Canonicalize a denotation into an answer.
    pub fn from_denotation(denotation: &Denotation) -> Answer {
        match denotation {
            Denotation::Number(n) => Answer::Number(*n),
            Denotation::Values(values) => {
                let mut out: Vec<Value> = values.iter().map(|tv| tv.value.clone()).collect();
                out.sort();
                out.dedup();
                Answer::Values(out)
            }
            Denotation::Records(records) => Answer::Records(records.iter().copied().collect()),
        }
    }

    /// Build an answer from raw values (e.g. a gold answer in the dataset).
    pub fn values<I: IntoIterator<Item = Value>>(values: I) -> Answer {
        let mut out: Vec<Value> = values.into_iter().collect();
        out.sort();
        out.dedup();
        Answer::Values(out)
    }

    /// Build a numeric answer.
    pub fn number(n: f64) -> Answer {
        Answer::Number(n)
    }

    /// Whether the answer denotes nothing at all.
    pub fn is_empty(&self) -> bool {
        match self {
            Answer::Values(v) => v.is_empty(),
            Answer::Records(r) => r.is_empty(),
            Answer::Number(_) => false,
        }
    }

    /// Number of elements in the answer.
    pub fn len(&self) -> usize {
        match self {
            Answer::Values(v) => v.len(),
            Answer::Records(r) => r.len(),
            Answer::Number(_) => 1,
        }
    }
}

impl PartialEq for Answer {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Answer::Number(a), Answer::Number(b)) => numbers_equal(*a, *b),
            (Answer::Values(a), Answer::Values(b)) => a == b,
            (Answer::Records(a), Answer::Records(b)) => a == b,
            // A single numeric value and a number are the same answer: the
            // paper's Figure 1 treats "{2004}" and the max() result as
            // interchangeable.
            (Answer::Number(n), Answer::Values(v)) | (Answer::Values(v), Answer::Number(n)) => {
                v.len() == 1
                    && v[0]
                        .as_number()
                        .map(|m| numbers_equal(*n, m))
                        .unwrap_or(false)
            }
            _ => false,
        }
    }
}

impl Eq for Answer {}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::Number(n) => write!(f, "{}", Value::Num(*n)),
            Answer::Values(values) => {
                let joined: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                write!(f, "{{{}}}", joined.join(", "))
            }
            Answer::Records(records) => {
                let joined: Vec<String> = records.iter().map(|r| format!("row {r}")).collect();
                write!(f, "{{{}}}", joined.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parse_formula;
    use wtq_table::samples;

    #[test]
    fn number_equals_singleton_numeric_value() {
        let a = Answer::Number(2004.0);
        let b = Answer::values([Value::num(2004.0)]);
        assert_eq!(a, b);
        assert_eq!(b, a);
        let c = Answer::values([Value::num(2004.0), Value::num(1896.0)]);
        assert_ne!(a, c);
        let d = Answer::values([Value::str("Athens")]);
        assert_ne!(a, d);
    }

    #[test]
    fn value_sets_compare_order_insensitively() {
        let a = Answer::values([Value::str("Athens"), Value::str("London")]);
        let b = Answer::values([Value::str("london"), Value::str("ATHENS")]);
        assert_eq!(a, b);
    }

    #[test]
    fn figure_one_answer_matches_both_query_forms() {
        // Both the correct and the incorrect query of Figure 8 return 2004;
        // the Answer comparison cannot tell them apart (which is exactly the
        // paper's motivation for explanations).
        let table = samples::usl_league();
        let correct = parse_formula("max(R[Year].League.\"USL A-League\")").unwrap();
        let incorrect = parse_formula("min(R[Year].argmax(Rows, \"Open Cup\"))").unwrap();
        let gold = Answer::number(2004.0);
        let a = Answer::from_denotation(&eval(&correct, &table).unwrap());
        assert_eq!(a, gold);
        let b = Answer::from_denotation(&eval(&incorrect, &table).unwrap());
        // The incorrect query also evaluates successfully; whether it matches
        // the gold answer depends on the table contents, not on being the
        // right translation.
        assert!(b == gold || b != gold);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Answer::Number(110.0).to_string(), "110");
        assert_eq!(
            Answer::values([Value::str("Athens"), Value::str("Paris")]).to_string(),
            "{Athens, Paris}"
        );
        assert_eq!(Answer::Records(vec![0, 3]).to_string(), "{row 0, row 3}");
    }

    #[test]
    fn emptiness_and_len() {
        assert!(Answer::values([]).is_empty());
        assert!(!Answer::Number(0.0).is_empty());
        assert_eq!(Answer::values([Value::num(1.0), Value::num(1.0)]).len(), 1);
    }
}
