//! Static classification of formulas.
//!
//! Lambda DCS formulas denote records, values or a single number. The
//! semantic parser's candidate generation (and the SQL translation) needs to
//! know which kind a formula will produce *without* executing it; this module
//! derives that statically, rejecting formulas that can never evaluate
//! successfully (e.g. intersecting a number with records).

use crate::ast::{AggregateOp, Formula};
use crate::error::DcsError;
use crate::Result;

/// The static type of a formula's denotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormulaType {
    /// A set of table records.
    Records,
    /// A set of values.
    Values,
    /// A single number (aggregate or arithmetic result).
    Number,
}

impl FormulaType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            FormulaType::Records => "records",
            FormulaType::Values => "values",
            FormulaType::Number => "number",
        }
    }
}

/// Compute the static type of `formula`, or an error if the composition is
/// ill-typed regardless of the table it runs on.
pub fn typecheck(formula: &Formula) -> Result<FormulaType> {
    match formula {
        Formula::Const(_) => Ok(FormulaType::Values),
        Formula::AllRecords => Ok(FormulaType::Records),
        Formula::Join { values, .. } => {
            let inner = typecheck(values)?;
            match inner {
                FormulaType::Values | FormulaType::Number => Ok(FormulaType::Records),
                FormulaType::Records => Err(DcsError::TypeMismatch {
                    operator: "join",
                    expected: "values",
                    found: "records",
                }),
            }
        }
        Formula::CompareJoin { value, .. } => {
            let inner = typecheck(value)?;
            match inner {
                FormulaType::Values | FormulaType::Number => Ok(FormulaType::Records),
                FormulaType::Records => Err(DcsError::TypeMismatch {
                    operator: "comparison",
                    expected: "a numeric value",
                    found: "records",
                }),
            }
        }
        Formula::ColumnValues { records, .. } => {
            expect(records, FormulaType::Records, "column projection")?;
            Ok(FormulaType::Values)
        }
        Formula::Prev(sub) => {
            expect(sub, FormulaType::Records, "Prev")?;
            Ok(FormulaType::Records)
        }
        Formula::Next(sub) => {
            expect(sub, FormulaType::Records, "R[Prev]")?;
            Ok(FormulaType::Records)
        }
        Formula::Intersect(a, b) => {
            let left = typecheck(a)?;
            let right = typecheck(b)?;
            if left == right && left != FormulaType::Number {
                Ok(left)
            } else {
                Err(DcsError::TypeMismatch {
                    operator: "intersection",
                    expected: "two record sets or two value sets",
                    found: if left == FormulaType::Number {
                        left.name()
                    } else {
                        right.name()
                    },
                })
            }
        }
        Formula::Union(a, b) => {
            let left = typecheck(a)?;
            let right = typecheck(b)?;
            if left == right && left != FormulaType::Number {
                Ok(left)
            } else {
                Err(DcsError::TypeMismatch {
                    operator: "union",
                    expected: "two record sets or two value sets",
                    found: if left == FormulaType::Number {
                        left.name()
                    } else {
                        right.name()
                    },
                })
            }
        }
        Formula::Aggregate { op, sub } => {
            let inner = typecheck(sub)?;
            match (op, inner) {
                (AggregateOp::Count, _) => Ok(FormulaType::Number),
                (_, FormulaType::Values | FormulaType::Number) => Ok(FormulaType::Number),
                (_, FormulaType::Records) => Err(DcsError::TypeMismatch {
                    operator: op.name(),
                    expected: "values",
                    found: "records",
                }),
            }
        }
        Formula::SuperlativeRecords { records, .. } => {
            expect(records, FormulaType::Records, "superlative")?;
            Ok(FormulaType::Records)
        }
        Formula::RecordIndexSuperlative { records, .. } => {
            expect(records, FormulaType::Records, "index superlative")?;
            Ok(FormulaType::Records)
        }
        Formula::MostCommonValue { values, .. } => {
            expect(values, FormulaType::Values, "most_common")?;
            Ok(FormulaType::Values)
        }
        Formula::CompareValues { values, .. } => {
            expect(values, FormulaType::Values, "compare")?;
            Ok(FormulaType::Values)
        }
        Formula::Sub(a, b) => {
            for side in [a, b] {
                let t = typecheck(side)?;
                if t == FormulaType::Records {
                    return Err(DcsError::TypeMismatch {
                        operator: "difference",
                        expected: "a numeric value",
                        found: "records",
                    });
                }
            }
            Ok(FormulaType::Number)
        }
    }
}

fn expect(formula: &Formula, expected: FormulaType, operator: &'static str) -> Result<()> {
    let found = typecheck(formula)?;
    if found == expected {
        Ok(())
    } else {
        Err(DcsError::TypeMismatch {
            operator,
            expected: expected.name(),
            found: found.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula;

    fn type_of(text: &str) -> Result<FormulaType> {
        typecheck(&parse_formula(text).expect("test formula parses"))
    }

    #[test]
    fn classifies_paper_examples() {
        assert_eq!(type_of("Country.Greece").unwrap(), FormulaType::Records);
        assert_eq!(
            type_of("R[Year].Country.Greece").unwrap(),
            FormulaType::Values
        );
        assert_eq!(
            type_of("max(R[Year].Country.Greece)").unwrap(),
            FormulaType::Number
        );
        assert_eq!(type_of("count(City.Athens)").unwrap(), FormulaType::Number);
        assert_eq!(type_of("argmax(Rows, Year)").unwrap(), FormulaType::Records);
        assert_eq!(
            type_of("R[City].argmin(Rows, Year)").unwrap(),
            FormulaType::Values
        );
        assert_eq!(
            type_of("sub(R[Total].Nation.Fiji, R[Total].Nation.Tonga)").unwrap(),
            FormulaType::Number
        );
        assert_eq!(
            type_of("(City.London and Country.UK)").unwrap(),
            FormulaType::Records
        );
        assert_eq!(type_of("(Greece or China)").unwrap(), FormulaType::Values);
        assert_eq!(type_of("Games.(> 4)").unwrap(), FormulaType::Records);
        assert_eq!(
            type_of("compare_max((London or Beijing), Year, City)").unwrap(),
            FormulaType::Values
        );
        assert_eq!(
            type_of("most_common((Athens or London), City)").unwrap(),
            FormulaType::Values
        );
        assert_eq!(
            type_of("last(League.\"USL A-League\")").unwrap(),
            FormulaType::Records
        );
    }

    #[test]
    fn rejects_ill_typed_compositions() {
        // max over records.
        assert!(type_of("max(Rows)").is_err());
        // Intersection of a number with records.
        assert!(type_of("(count(Rows) and Rows)").is_err());
        // Union of values with records.
        assert!(type_of("(Greece or Country.Greece)").is_err());
        // Projection of a value set.
        assert!(type_of("R[Year].Greece").is_err());
        // Difference of record sets.
        assert!(type_of("sub(Rows, Rows)").is_err());
        // Prev over values.
        assert!(type_of("Prev.Greece").is_err());
        // Superlative over values.
        assert!(type_of("argmax(Greece, Year)").is_err());
        // most_common over records.
        assert!(type_of("most_common(Rows, City)").is_err());
    }

    #[test]
    fn count_accepts_both_records_and_values() {
        assert_eq!(type_of("count(Rows)").unwrap(), FormulaType::Number);
        assert_eq!(type_of("count(R[City].Rows)").unwrap(), FormulaType::Number);
    }

    #[test]
    fn join_of_number_result_is_allowed() {
        // Joining on an aggregate result, e.g. Year.(count of something), is
        // statically fine (the number coerces to a single value).
        assert_eq!(
            type_of("Year.(count(City.Athens))").unwrap(),
            FormulaType::Records
        );
    }

    #[test]
    fn typecheck_agrees_with_evaluation_kind() {
        use crate::eval::eval;
        use wtq_table::samples;
        let table = samples::olympics();
        for text in [
            "Country.Greece",
            "R[Year].Country.Greece",
            "max(R[Year].Country.Greece)",
            "count(City.Athens)",
            "R[City].argmin(Rows, Year)",
            "(City.London and Country.UK)",
            "(Country.Greece or Country.China)",
            "R[City].Prev.City.London",
        ] {
            let formula = parse_formula(text).unwrap();
            let static_type = typecheck(&formula).unwrap();
            let denotation = eval(&formula, &table).unwrap();
            let dynamic = match denotation {
                crate::eval::Denotation::Records(_) => FormulaType::Records,
                crate::eval::Denotation::Values(_) => FormulaType::Values,
                crate::eval::Denotation::Number(_) => FormulaType::Number,
            };
            assert_eq!(static_type, dynamic, "disagreement on {text}");
        }
    }
}
