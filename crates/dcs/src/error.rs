//! Error type for lambda DCS parsing, type checking and evaluation.

use std::fmt;

/// Errors produced while parsing, type-checking or executing lambda DCS
/// formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcsError {
    /// The textual formula could not be parsed; the message names the
    /// offending token and position.
    Parse { message: String, position: usize },
    /// A column name used by the formula does not exist in the target table.
    UnknownColumn(String),
    /// An operator was applied to a denotation of the wrong kind (e.g. `sum`
    /// over a set of records, or intersection of a value set with a number).
    TypeMismatch {
        operator: &'static str,
        expected: &'static str,
        found: &'static str,
    },
    /// A numeric aggregate (`sum`, `avg`, `max`, `min`) or arithmetic
    /// difference was applied to values that are not numbers.
    NonNumeric {
        operator: &'static str,
        value: String,
    },
    /// An operation that requires exactly one value (e.g. each side of
    /// `sub(...)`) received a different cardinality.
    Cardinality {
        operator: &'static str,
        expected: &'static str,
        got: usize,
    },
    /// Evaluation exceeded the configured recursion depth; guards against
    /// pathological machine-generated candidates.
    DepthExceeded(usize),
}

impl fmt::Display for DcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcsError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DcsError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            DcsError::TypeMismatch {
                operator,
                expected,
                found,
            } => {
                write!(f, "{operator} expects {expected} but found {found}")
            }
            DcsError::NonNumeric { operator, value } => {
                write!(f, "{operator} requires numeric values but found {value:?}")
            }
            DcsError::Cardinality {
                operator,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{operator} expects {expected} but its argument denoted {got} values"
                )
            }
            DcsError::DepthExceeded(depth) => {
                write!(
                    f,
                    "formula nesting exceeds the maximum evaluation depth of {depth}"
                )
            }
        }
    }
}

impl std::error::Error for DcsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_relevant_pieces() {
        let e = DcsError::UnknownColumn("Lake".into());
        assert!(e.to_string().contains("Lake"));
        let e = DcsError::TypeMismatch {
            operator: "intersection",
            expected: "records",
            found: "number",
        };
        assert!(e.to_string().contains("intersection"));
        let e = DcsError::Parse {
            message: "unexpected ')'".into(),
            position: 7,
        };
        assert!(e.to_string().contains("byte 7"));
    }
}
